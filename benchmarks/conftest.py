"""Shared benchmark configuration.

Every benchmark regenerates one figure/claim of the paper's evaluation.
``REPRO_BENCH_SCALE`` (default 1.0) scales transaction counts: set it to
0.25 for a quick smoke run or 4.0 for a closer-to-paper-scale run.

The simulated-time results (speedups, abort rates — the paper's actual
metrics) are attached to each benchmark's ``extra_info`` and printed, while
pytest-benchmark itself measures the wall-clock cost of executing one block
under each scheduler on this machine.
"""

from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 20) -> int:
    return max(minimum, int(n * SCALE))


# The paper's experiment parameters, scaled for a Python-speed substrate.
FIG7_BLOCKS = 2
FIG7_TXS_PER_BLOCK = scaled(600)
FIG7_THREADS = (1, 2, 4, 8, 16, 32)

FIG8_VALIDATORS = 2
FIG8_BLOCKS = 2
FIG8_TXS_PER_BLOCK = scaled(600)
FIG8_THREADS = (1, 8, 32)
# Calibrated so a serial block takes ~360 s of simulated time regardless of
# REPRO_BENCH_SCALE — the same execution-bound regime as the paper's
# 10,000-tx blocks on its testbed (~45k gas/tx · block / 360 s).
FIG8_GAS_PER_SECOND = FIG8_TXS_PER_BLOCK * 45_000 / 360.0

RQ1_BLOCKS = 4
RQ1_TXS_PER_BLOCK = scaled(200)

# Sized so per-contract contention approximates the paper's mainnet data
# (61k contracts for the full traffic; a 600-tx block there touches each
# popular contract a handful of times).
WORKLOAD_SIZE = dict(
    users=scaled(2000),
    erc20_tokens=25,
    dex_pools=10,
    nft_collections=8,
    icos=2,
)


def print_result(result) -> None:
    print()
    print(result.format_table())


@pytest.fixture(scope="session")
def bench_params():
    return {
        "scale": SCALE,
        "workload": WORKLOAD_SIZE,
    }


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp ``--benchmark-json`` output with schema version + git commit,
    so archived bench_results.json files carry their provenance."""
    from repro.bench.reporting import stamp_results

    stamp_results(output_json)
