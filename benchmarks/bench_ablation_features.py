"""Ablation: which DMVCC mechanism buys what, under high contention.

Variants: full DMVCC, without early-write visibility (-noEW), without
commutative writes (-noCW), write-versioning only (-wv), plus the DAG
baseline at both analysis granularities (how much of the win is just
slot-level precision?).
"""

import pytest

from repro.bench import ablation_executors, run_feature_ablation
from repro.workload import high_contention_config

from conftest import FIG7_TXS_PER_BLOCK, WORKLOAD_SIZE, print_result


@pytest.fixture(scope="module")
def ablation_result():
    result = run_feature_ablation(
        blocks=1,
        txs_per_block=FIG7_TXS_PER_BLOCK,
        thread_counts=(8, 32),
        config=high_contention_config(**WORKLOAD_SIZE),
    )
    print_result(result)
    assert result.correctness_ok
    return result


def bench_ablation(benchmark, ablation_result):
    """Timed portion: one full-featured DMVCC execution; the ablation table
    rides along in extra_info."""
    from repro.executors import DMVCCExecutor
    from repro.workload import Workload

    workload = Workload(high_contention_config(**WORKLOAD_SIZE))
    txs = workload.transactions(FIG7_TXS_PER_BLOCK)

    def execute():
        return DMVCCExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=32
        )

    benchmark.pedantic(execute, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["ablation_speedups_at_32"] = {
        label: round(ablation_result.at(label, 32).speedup, 2)
        for label in ablation_executors()
    }
    full = ablation_result.at("dmvcc", 32).speedup
    stripped = ablation_result.at("dmvcc-wv", 32).speedup
    assert full >= stripped
