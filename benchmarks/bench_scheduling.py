"""Conflict-aware lane planning and deterministic schedule replay.

Two claims, both archived as stamped JSON:

* **Planner A/B** — on the adversarial ``abort_storm`` preset (the
  abort-maximizer's ``setA``/``UpdateB`` dependency chains) at threads=8,
  executing the *planned* block (lane partition + prediction repair) must
  cut DMVCC aborts by >= 30% versus the unplanned packed order.  The
  ``mix`` preset is measured alongside as the representative-workload
  datapoint (recorded, not asserted — its abort rate is already low).
* **Replay-parity sweep** — for every scenario, the block's sealed
  :class:`Schedule` replays with zero aborts and zero speculation,
  byte-identical to the speculative execution (receipts, write sets,
  committed roots) on the sim and threads substrates.  Any divergence is
  dumped as a JSON artifact (``REPRO_SCHED_DIVERGENCE_DIR``) before the
  assertion fires, so CI failures ship the evidence.
"""

import json
import os

from conftest import scaled

from repro.analysis.csag import CSAGBuilder
from repro.bench.reporting import save_results_json
from repro.executors import DMVCCExecutor, ScheduleReplayExecutor
from repro.scheduling import LanePlanner, Schedule
from repro.substrate import get_substrate
from repro.verify.trace import TraceRecorder
from repro.workload import Workload
from repro.workload.scenarios import scenario_config

THREADS = 8
BENCH_TXS = scaled(64, minimum=32)
BENCH_WORKLOAD = dict(
    users=scaled(120, minimum=60), erc20_tokens=3, dex_pools=2,
    nft_collections=2, icos=1,
)
AB_SCENARIOS = ("abort_storm", "mix")
REPLAY_SCENARIOS = ("abort_storm", "mix", "mint_storm")
ABORT_REDUCTION_FLOOR = 0.30

_cases = {}


def _case(scenario):
    """(workload, txs, csags) for one scenario, built once per process."""
    if scenario not in _cases:
        workload = Workload(scenario_config(scenario, seed=7, **BENCH_WORKLOAD))
        txs = workload.transactions(BENCH_TXS)
        builder = CSAGBuilder(workload.db.codes.code_of)
        csags = [builder.build(tx, workload.db.latest) for tx in txs]
        _cases[scenario] = (workload, txs, csags, builder)
    return _cases[scenario]


def _receipt_digest(execution):
    return [
        (r.index, r.result.status.name, r.result.gas_used,
         r.result.return_data, r.result.error, r.result.steps)
        for r in execution.receipts
    ]


def bench_planner_abort_reduction():
    """Planned vs unplanned DMVCC aborts, threads=8, per scenario."""
    results = {}
    for scenario in AB_SCENARIOS:
        workload, txs, csags, builder = _case(scenario)
        snapshot = workload.db.latest

        unplanned = DMVCCExecutor().execute_block(
            txs, snapshot, workload.db.codes.code_of,
            threads=THREADS, csags=list(csags))

        planner = LanePlanner()
        planned_csags = list(csags)
        plan = planner.plan(txs, planned_csags, snapshot, builder)
        planned = DMVCCExecutor().execute_block(
            plan.apply(txs), snapshot, workload.db.codes.code_of,
            threads=THREADS, csags=plan.apply(planned_csags))

        before, after = unplanned.metrics.aborts, planned.metrics.aborts
        reduction = (before - after) / before if before else 0.0
        results[scenario] = {
            "txs": len(txs),
            "threads": THREADS,
            "aborts_unplanned": before,
            "aborts_planned": after,
            "abort_reduction": round(reduction, 4),
            "lanes": plan.lane_count,
            "repairs": plan.repairs,
            "reordered": plan.moved,
            "makespan_unplanned": round(unplanned.metrics.makespan, 2),
            "makespan_planned": round(planned.metrics.makespan, 2),
        }
        print(f"\n{scenario}: aborts {before} -> {after} "
              f"({reduction:.0%} reduction; {plan.lane_count} lane(s), "
              f"{plan.repairs} repair(s))")

    save_results_json(
        os.environ.get("REPRO_SCHED_BENCH_OUT", "scheduling_ab.json"),
        {
            "benchmark": "planner_abort_reduction",
            "threads": THREADS,
            "asserted_floor": ABORT_REDUCTION_FLOOR,
            "scenarios": results,
        },
    )
    storm = results["abort_storm"]
    assert storm["aborts_unplanned"] > 0, (
        "abort_storm produced no aborts to reduce — preset regressed")
    assert storm["abort_reduction"] >= ABORT_REDUCTION_FLOOR, (
        f"planner cut abort_storm aborts only "
        f"{storm['abort_reduction']:.0%} "
        f"({storm['aborts_unplanned']} -> {storm['aborts_planned']}), "
        f"need >= {ABORT_REDUCTION_FLOOR:.0%}")


def _dump_divergence(scenario, backend, reference, replay, schedule):
    """Write the divergence evidence before the assertion fires."""
    directory = os.environ.get("REPRO_SCHED_DIVERGENCE_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory,
                        f"replay_divergence_{scenario}_{backend}.json")
    with open(path, "w") as handle:
        json.dump({
            "scenario": scenario,
            "backend": backend,
            "schedule": schedule.to_json(),
            "reference_receipts": [list(map(repr, r))
                                   for r in _receipt_digest(reference)],
            "replay_receipts": [list(map(repr, r))
                                for r in _receipt_digest(replay)],
            "write_set_delta": {
                repr(k): {"reference": reference.writes.get(k),
                          "replay": replay.writes.get(k)}
                for k in (set(reference.writes) ^ set(replay.writes))
                | {k for k in set(reference.writes) & set(replay.writes)
                   if reference.writes[k] != replay.writes[k]}
            },
        }, handle, indent=2, default=str)
    return path


def bench_replay_parity_sweep():
    """Every scenario's schedule replays byte-identically, zero aborts."""
    failures = []
    summary = {}
    for scenario in REPLAY_SCENARIOS:
        workload, txs, _, _ = _case(scenario)
        recorder = TraceRecorder()
        reference = DMVCCExecutor().attach_recorder(recorder).execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=THREADS)
        schedule = Schedule.from_trace(recorder, len(txs), producer="dmvcc")

        for backend in ("sim", "threads"):
            substrate = None if backend == "sim" else get_substrate(
                backend, workers=min(THREADS, 4))
            try:
                executor = ScheduleReplayExecutor(schedule)
                if substrate is not None:
                    executor.attach_substrate(substrate)
                replay = executor.execute_block(
                    txs, workload.db.latest, workload.db.codes.code_of,
                    threads=THREADS)
            finally:
                if substrate is not None:
                    substrate.close()

            identical = (
                _receipt_digest(replay) == _receipt_digest(reference)
                and replay.writes == reference.writes
            )
            root = workload.db.fork().commit(replay.writes).root_hash
            ref_root = workload.db.fork().commit(reference.writes).root_hash
            ok = (identical and root == ref_root
                  and replay.metrics.aborts == 0)
            summary[f"{scenario}/{backend}"] = {
                "identical": identical,
                "roots_match": root == ref_root,
                "replay_aborts": replay.metrics.aborts,
                "schedule_depth": schedule.depth(),
            }
            if not ok:
                failures.append(_dump_divergence(
                    scenario, backend, reference, replay, schedule))

    save_results_json(
        os.environ.get("REPRO_SCHED_REPLAY_OUT", "scheduling_replay.json"),
        {"benchmark": "schedule_replay_parity", "sweep": summary},
    )
    print("\nreplay parity: " + ", ".join(
        f"{case}={'ok' if v['identical'] and v['roots_match'] else 'DIVERGED'}"
        for case, v in summary.items()))
    assert not failures, (
        f"schedule replay diverged; evidence: {failures}")
