"""RQ1: deterministic serializability via Merkle-root comparison.

The paper executed 121,210 blocks and found every DMVCC root equal to the
serial root.  We run a scaled version for each parallel scheduler and
benchmark the per-block verification cost (parallel execute + commit +
root compare).
"""

import pytest

from repro.bench import run_rq1_correctness

from conftest import RQ1_BLOCKS, RQ1_TXS_PER_BLOCK, WORKLOAD_SIZE


@pytest.mark.parametrize("scheduler", ["dmvcc", "occ", "dag"])
def bench_rq1(benchmark, scheduler):
    def check():
        result = run_rq1_correctness(
            blocks=RQ1_BLOCKS,
            txs_per_block=RQ1_TXS_PER_BLOCK,
            scheduler=scheduler,
            threads=8,
            **WORKLOAD_SIZE,
        )
        assert result.all_match, f"{scheduler}: Merkle root mismatch"
        return result

    result = benchmark.pedantic(check, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["claim"] = "RQ1: parallel roots == serial roots"
    benchmark.extra_info["blocks_checked"] = result.blocks_checked
    benchmark.extra_info["txs_checked"] = result.txs_checked
    benchmark.extra_info["matches"] = result.matches
    print(
        f"\nRQ1 [{scheduler}]: {result.matches}/{result.blocks_checked} block "
        f"roots match serial ({result.txs_checked} transactions)"
    )
