"""Adversarial scenario pack under each scheduler.

Not a paper figure: the scenario corpus (mint storms, airdrop floods,
flash-loan bundles, composition routes, re-entrancy, the abort-maximizer)
models the application-inherent hot-key traffic Garamvölgyi et al. show
dominates real Ethereum blocks.  Each benchmark executes one scenario
block under DMVCC and reports the abort rate next to wall-clock cost, so
regressions in either show up per scenario.
"""

import pytest

from repro.executors import DMVCCExecutor, SerialExecutor
from repro.workload import SCENARIO_NAMES, Workload, scenario_config

from conftest import scaled

SCENARIO_TXS = scaled(300)
SCENARIO_WORKLOAD = dict(
    users=scaled(400),
    erc20_tokens=6,
    dex_pools=4,
    nft_collections=4,
    icos=1,
)


@pytest.fixture(scope="module", params=sorted(SCENARIO_NAMES))
def scenario_block(request):
    name = request.param
    workload = Workload(scenario_config(name, **SCENARIO_WORKLOAD))
    txs = workload.transactions(SCENARIO_TXS)
    reference = SerialExecutor().execute_block(
        txs, workload.db.latest, workload.db.codes.code_of
    )
    return name, workload, txs, reference


def bench_scenario_dmvcc(benchmark, scenario_block):
    name, workload, txs, reference = scenario_block

    def execute():
        execution = DMVCCExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=16
        )
        assert execution.writes == reference.writes
        return execution

    execution = benchmark.pedantic(execute, rounds=2, iterations=1, warmup_rounds=0)
    metrics = execution.metrics
    benchmark.extra_info["scenario"] = name
    benchmark.extra_info["aborts"] = metrics.aborts
    benchmark.extra_info["abort_rate"] = round(metrics.abort_rate, 4)
    print(
        f"\n{name}: {metrics.aborts} aborts over {metrics.executions} "
        f"executions (abort rate {metrics.abort_rate:.2%})"
    )
