"""Wall-clock benchmarks of the substrates.

Two layers share this file:

* micro-benchmarks of the building blocks all experiments stand on (trie,
  EVM, compiler, analysis) — regression canaries;
* A/B benchmarks of the *execution* substrates (``repro.substrate``): the
  same DMVCC block on the discrete-event simulator, on real threads
  (GIL-bound baseline), and on real multiprocessing workers.  Every timed
  run is parity-checked against the sim output, and the A/B driver
  archives a stamped JSON (cpu_count, Python version, backend) asserting
  the ≥1.5× processes-over-threads speedup on a low-conflict block when
  the machine actually has ≥4 cores to show it on.
"""

import os
import random
from time import perf_counter

import pytest

from repro.analysis import build_psag
from repro.chain.transaction import Transaction
from repro.analysis.csag import CSAGBuilder
from repro.core import Address, StateKey
from repro.evm import EVM, Message, drive
from repro.lang import compile_source
from repro.state import StateDB, WriteJournal
from repro.trie import Trie
from repro.workload import ERC20_SOURCE


@pytest.fixture(scope="module")
def erc20():
    return compile_source(ERC20_SOURCE)


def bench_trie_insert_1k(benchmark):
    rng = random.Random(0)
    items = [
        (rng.getrandbits(160).to_bytes(20, "big"), rng.getrandbits(64).to_bytes(8, "big"))
        for _ in range(1_000)
    ]

    def build():
        trie = Trie()
        for key, value in items:
            trie.set(key, value)
        return trie.root_hash

    benchmark(build)


def bench_trie_lookup(benchmark):
    rng = random.Random(1)
    trie = Trie()
    keys = []
    for _ in range(2_000):
        key = rng.getrandbits(160).to_bytes(20, "big")
        trie.set(key, b"v")
        keys.append(key)

    def lookup():
        for key in keys[:500]:
            assert trie.get(key) == b"v"

    benchmark(lookup)


def bench_compile_erc20(benchmark):
    benchmark(lambda: compile_source(ERC20_SOURCE))


def bench_evm_transfer_execution(benchmark, erc20):
    token = Address.derive("bench-token")
    alice = Address.derive("bench-alice")
    bob = Address.derive("bench-bob")
    from repro.core import mapping_slot

    state = {
        StateKey(token, mapping_slot(alice.to_word(), erc20.slot_of("balanceOf"))): 10**9
    }
    data = erc20.encode_call("transfer", bob, 5)
    evm = EVM(lambda a: erc20.code if a == token else b"")

    def execute():
        journal = WriteJournal(lambda key: state.get(key, 0))
        outcome = drive(evm, Message(alice, token, 0, data, 1_000_000), journal)
        assert outcome.result.success

    benchmark(execute)


def bench_psag_construction(benchmark, erc20):
    # Bypass the cache: measure the real analysis cost.
    benchmark(lambda: build_psag(erc20.code))


def bench_csag_refinement(benchmark, erc20):
    token = Address.derive("bench-token2")
    alice = Address.derive("bench-alice2")
    bob = Address.derive("bench-bob2")
    from repro.core import mapping_slot

    db = StateDB()
    db.deploy_contract(token, erc20.code, "ERC20")
    db.seed_genesis(
        {alice: 10**18},
        {StateKey(token, mapping_slot(alice.to_word(), erc20.slot_of("balanceOf"))): 10**9},
    )
    builder = CSAGBuilder(db.codes.code_of)
    tx = Transaction(alice, token, 0, erc20.encode_call("transfer", bob, 5))
    builder.build(tx, db.latest)  # warm the P-SAG cache

    benchmark(lambda: builder.build(tx, db.latest))


def bench_statedb_commit(benchmark):
    contract = Address.derive("bench-commit")
    db = StateDB()
    counter = [0]

    def commit():
        counter[0] += 1
        writes = {
            StateKey(contract, slot): counter[0] for slot in range(200)
        }
        db.commit(writes)

    benchmark(commit)


# ---------------------------------------------------------------------------
# Execution-substrate A/B: sim vs threads vs processes
# ---------------------------------------------------------------------------

from conftest import scaled  # noqa: E402

from repro.bench.reporting import save_results_json  # noqa: E402
from repro.executors import DMVCCExecutor  # noqa: E402
from repro.substrate import get_substrate  # noqa: E402
from repro.workload import Workload, low_contention_config  # noqa: E402
from repro.workload.scenarios import scenario_config  # noqa: E402

AB_SCENARIOS = ("mint_storm", "airdrop_flood", "mix")
AB_TXS = scaled(64, minimum=32)
AB_WORKLOAD = dict(
    users=scaled(300, minimum=120), erc20_tokens=4, dex_pools=2,
    nft_collections=2, icos=1,
)
# Real workers: as many as the box offers, capped where IPC overhead would
# dominate.  One-core machines still run everything (parity is the point
# there); the speedup assertion below only engages at >= 4 cores.
AB_WORKERS = max(2, min(os.cpu_count() or 1, 8))

_ab_cases = {}


def _ab_case(scenario):
    """Workload + block for one scenario, built once per process."""
    if scenario not in _ab_cases:
        workload = Workload(scenario_config(scenario, seed=7, **AB_WORKLOAD))
        txs = workload.transactions(AB_TXS)
        reference = DMVCCExecutor().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=AB_WORKERS)
        _ab_cases[scenario] = (workload, txs, reference)
    return _ab_cases[scenario]


@pytest.mark.parametrize("backend", ["sim", "threads", "processes"])
@pytest.mark.parametrize("scenario", AB_SCENARIOS)
def bench_substrate_dmvcc(benchmark, scenario, backend):
    """One DMVCC block, same transactions, on each execution backend.

    The timed quantity is the full block execution (dispatch, worker
    round-trips, validation, commit); every timed run's output must equal
    the discrete-event simulator's, so a backend can never buy speed with
    divergence.
    """
    workload, txs, reference = _ab_case(scenario)
    substrate = None if backend == "sim" else get_substrate(
        backend, workers=AB_WORKERS)
    try:
        def run():
            executor = DMVCCExecutor()
            if substrate is not None:
                executor.attach_substrate(substrate)
            return executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of,
                threads=AB_WORKERS)

        execution = benchmark(run)
        assert execution.writes == reference.writes, (
            f"{scenario}/{backend}: output diverged from sim")
        benchmark.extra_info.update(
            backend=backend,
            workers=AB_WORKERS if backend != "sim" else 0,
            cpu_count=os.cpu_count() or 1,
            scenario=scenario,
            txs=len(txs),
            view_misses=execution.metrics.view_misses,
            aborts=execution.metrics.aborts,
        )
    finally:
        if substrate is not None:
            substrate.close()


def bench_occ_view_seeding():
    """Before/after: OCC dispatch views seeded from static P-SAG analysis.

    An unseeded OCC dispatch ships only the transaction's balance/nonce
    keys; every storage read outside that view costs a NeedKeys round-trip
    (a ``view_miss``) before the attempt can be redone with a wider view.
    Seeding the first dispatch with the statically-resolved access sites
    (``repro.analysis.csag._static_key_sets``) removes those round-trips
    without touching OCC's conflict semantics: outputs stay identical and
    the seeded run must never miss *more* than the unseeded one.
    """
    from repro.executors import OCCExecutor

    workload, txs, reference = _ab_case("mix")
    results = {}
    for label, seed in (("unseeded", False), ("seeded", True)):
        substrate = get_substrate("threads", workers=AB_WORKERS)
        try:
            executor = OCCExecutor(seed_views=seed)
            executor.attach_substrate(substrate)
            start = perf_counter()
            execution = executor.execute_block(
                txs, workload.db.latest, workload.db.codes.code_of,
                threads=AB_WORKERS)
            elapsed = perf_counter() - start
        finally:
            substrate.close()
        assert execution.writes == reference.writes, (
            f"occ/{label}: output diverged from the DMVCC reference")
        results[label] = {
            "wall_seconds": round(elapsed, 4),
            "view_misses": execution.metrics.view_misses,
            "seeded_views": execution.metrics.seeded_views,
            "aborts": execution.metrics.aborts,
        }

    save_results_json(
        os.environ.get("REPRO_OCC_SEED_OUT", "occ_view_seeding.json"),
        {
            "benchmark": "occ_view_seeding_ab",
            "scenario": "mix",
            "txs": len(txs),
            "workers": AB_WORKERS,
            "runs": results,
        },
        backend="threads",
    )
    print(f"\nOCC view seeding ({len(txs)} txs, {AB_WORKERS} workers): "
          f"unseeded misses={results['unseeded']['view_misses']} "
          f"seeded misses={results['seeded']['view_misses']} "
          f"(seeded {results['seeded']['seeded_views']} key(s) up front)")
    assert results["seeded"]["seeded_views"] > 0
    assert (results["seeded"]["view_misses"]
            <= results["unseeded"]["view_misses"])


def _timed_run(executor_factory, substrate, txs, workload, repeats=3):
    """Best-of-N wall-clock seconds for one block execution."""
    best = None
    execution = None
    for _ in range(repeats):
        executor = executor_factory()
        if substrate is not None:
            executor.attach_substrate(substrate)
        start = perf_counter()
        execution = executor.execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=AB_WORKERS)
        elapsed = perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, execution


def bench_substrate_ab_speedup():
    """Head-to-head: threads vs processes on a low-conflict DMVCC block.

    Threads share one GIL, so bytecode-bound EVM work cannot scale there;
    processes execute on real cores.  On a machine with >= 4 cores the
    processes backend must beat the threads backend by >= 1.5x; on smaller
    boxes the numbers are still measured and archived (with cpu_count
    stamped) but the ratio is reported, not asserted — a one-core
    container cannot exhibit multi-core speedup.
    """
    cpu = os.cpu_count() or 1
    workers = max(4, min(cpu, 8)) if cpu >= 4 else max(2, cpu)
    workload = Workload(low_contention_config(
        users=scaled(600, minimum=200), erc20_tokens=8, dex_pools=3,
        nft_collections=3, icos=1, seed=11))
    txs = workload.transactions(scaled(128, minimum=64))
    reference = DMVCCExecutor().execute_block(
        txs, workload.db.latest, workload.db.codes.code_of, threads=workers)

    results = {}
    for backend in ("threads", "processes"):
        substrate = get_substrate(backend, workers=workers)
        try:
            best, execution = _timed_run(
                DMVCCExecutor, substrate, txs, workload)
        finally:
            substrate.close()
        assert execution.writes == reference.writes, (
            f"{backend}: output diverged from sim")
        results[backend] = best
    sim_best, _ = _timed_run(DMVCCExecutor, None, txs, workload)
    results["sim"] = sim_best

    speedup = results["threads"] / results["processes"]
    document = save_results_json(
        os.environ.get("REPRO_SUBSTRATE_AB_OUT", "substrate_ab.json"),
        {
            "benchmark": "substrate_ab_dmvcc_low_conflict",
            "txs": len(txs),
            "workers": workers,
            "wall_seconds": results,
            "processes_over_threads_speedup": round(speedup, 3),
            "speedup_asserted": cpu >= 4,
        },
        backend="processes",
    )
    print(f"\nsubstrate A/B (DMVCC, low conflict, {len(txs)} txs, "
          f"{workers} workers, {cpu} cores): "
          f"sim={results['sim']:.3f}s threads={results['threads']:.3f}s "
          f"processes={results['processes']:.3f}s "
          f"speedup(processes/threads)={speedup:.2f}x")
    assert document["repro_meta"]["cpu_count"] == cpu
    if cpu >= 4:
        assert speedup >= 1.5, (
            f"processes backend only {speedup:.2f}x over threads with "
            f"{workers} workers on {cpu} cores (need >= 1.5x)")
