"""Micro-benchmarks of the substrates: trie, EVM, compiler, analysis.

These are genuine wall-clock benchmarks (pytest-benchmark's bread and
butter) and catch performance regressions in the building blocks that all
experiments stand on.
"""

import random

import pytest

from repro.analysis import build_psag
from repro.chain.transaction import Transaction
from repro.analysis.csag import CSAGBuilder
from repro.core import Address, StateKey
from repro.evm import EVM, Message, drive
from repro.lang import compile_source
from repro.state import StateDB, WriteJournal
from repro.trie import Trie
from repro.workload import ERC20_SOURCE


@pytest.fixture(scope="module")
def erc20():
    return compile_source(ERC20_SOURCE)


def bench_trie_insert_1k(benchmark):
    rng = random.Random(0)
    items = [
        (rng.getrandbits(160).to_bytes(20, "big"), rng.getrandbits(64).to_bytes(8, "big"))
        for _ in range(1_000)
    ]

    def build():
        trie = Trie()
        for key, value in items:
            trie.set(key, value)
        return trie.root_hash

    benchmark(build)


def bench_trie_lookup(benchmark):
    rng = random.Random(1)
    trie = Trie()
    keys = []
    for _ in range(2_000):
        key = rng.getrandbits(160).to_bytes(20, "big")
        trie.set(key, b"v")
        keys.append(key)

    def lookup():
        for key in keys[:500]:
            assert trie.get(key) == b"v"

    benchmark(lookup)


def bench_compile_erc20(benchmark):
    benchmark(lambda: compile_source(ERC20_SOURCE))


def bench_evm_transfer_execution(benchmark, erc20):
    token = Address.derive("bench-token")
    alice = Address.derive("bench-alice")
    bob = Address.derive("bench-bob")
    from repro.core import mapping_slot

    state = {
        StateKey(token, mapping_slot(alice.to_word(), erc20.slot_of("balanceOf"))): 10**9
    }
    data = erc20.encode_call("transfer", bob, 5)
    evm = EVM(lambda a: erc20.code if a == token else b"")

    def execute():
        journal = WriteJournal(lambda key: state.get(key, 0))
        outcome = drive(evm, Message(alice, token, 0, data, 1_000_000), journal)
        assert outcome.result.success

    benchmark(execute)


def bench_psag_construction(benchmark, erc20):
    # Bypass the cache: measure the real analysis cost.
    benchmark(lambda: build_psag(erc20.code))


def bench_csag_refinement(benchmark, erc20):
    token = Address.derive("bench-token2")
    alice = Address.derive("bench-alice2")
    bob = Address.derive("bench-bob2")
    from repro.core import mapping_slot

    db = StateDB()
    db.deploy_contract(token, erc20.code, "ERC20")
    db.seed_genesis(
        {alice: 10**18},
        {StateKey(token, mapping_slot(alice.to_word(), erc20.slot_of("balanceOf"))): 10**9},
    )
    builder = CSAGBuilder(db.codes.code_of)
    tx = Transaction(alice, token, 0, erc20.encode_call("transfer", bob, 5))
    builder.build(tx, db.latest)  # warm the P-SAG cache

    benchmark(lambda: builder.build(tx, db.latest))


def bench_statedb_commit(benchmark):
    contract = Address.derive("bench-commit")
    db = StateDB()
    counter = [0]

    def commit():
        counter[0] += 1
        writes = {
            StateKey(contract, slot): counter[0] for slot in range(200)
        }
        db.commit(writes)

    benchmark(commit)
