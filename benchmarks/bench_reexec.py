"""Incremental re-execution: replay savings on an abort-heavy workload.

DMVCC restarts an aborted transaction from scratch; with VM checkpointing
the scheduler instead resumes from the last checkpoint before the first
invalidated read, and read revalidation reinstates completed results whose
read set still holds.  This benchmark pits the two against each other on a
deliberately abort-heavy block — few users, scarce token funds (so
success/failure of a transfer flips on earlier transactions in the block)
and one hot contract — and records the replayed-instruction counts for
both, which the stamped bench JSON archives.
"""

import pytest

from repro.executors import DMVCCExecutor, SerialExecutor
from repro.workload import Workload, WorkloadConfig

from conftest import scaled

REEXEC_TXS_PER_BLOCK = scaled(120)
REEXEC_THREADS = 32


def _abort_heavy_workload():
    """Scarce funds + hot keys: data-dependent branches and mispredicted
    writes make DMVCC abort and re-execute far more often than usual."""
    return Workload(WorkloadConfig(
        users=6,
        erc20_tokens=2,
        dex_pools=1,
        nft_collections=1,
        icos=1,
        contract_fraction=0.9,
        hot_access_prob=0.8,
        hot_contract_count=1,
        capped_ico=True,
        exchange_deposit_prob=0.8,
        liquidity_prob=0.8,
        nft_mint_prob=0.5,
        zipf_alpha=1.1,
        token_funds=300,
        seed=1,
    ))


@pytest.fixture(scope="module")
def abort_heavy_block():
    workload = _abort_heavy_workload()
    txs = workload.transactions(REEXEC_TXS_PER_BLOCK)
    reference = SerialExecutor().execute_block(
        txs, workload.db.latest, workload.db.codes.code_of
    )
    return workload, txs, reference


def _run(workload, txs, reference, **executor_kwargs):
    execution = DMVCCExecutor(**executor_kwargs).execute_block(
        txs, workload.db.latest, workload.db.codes.code_of,
        threads=REEXEC_THREADS,
    )
    assert execution.writes == reference.writes
    return execution


@pytest.mark.parametrize(
    "label,kwargs",
    [
        ("restart", dict(enable_checkpoint_resume=False,
                         enable_revalidation=False)),
        ("resume", {}),
    ],
)
def bench_reexec(benchmark, abort_heavy_block, label, kwargs):
    workload, txs, reference = abort_heavy_block

    execution = benchmark.pedantic(
        lambda: _run(workload, txs, reference, **kwargs),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    metrics = execution.metrics
    benchmark.extra_info["claim"] = (
        "checkpoint/resume cuts replayed instructions >= 40% vs restart"
    )
    benchmark.extra_info["mode"] = label
    benchmark.extra_info["aborts"] = metrics.aborts
    benchmark.extra_info["replayed_instructions"] = metrics.replayed_instructions
    benchmark.extra_info["instructions_skipped"] = metrics.instructions_skipped
    benchmark.extra_info["resumes"] = metrics.resumes
    benchmark.extra_info["revalidation_hits"] = metrics.revalidation_hits
    benchmark.extra_info["makespan"] = metrics.makespan
    print(
        f"\n{label}: {metrics.aborts} aborts, "
        f"{metrics.replayed_instructions} instructions replayed, "
        f"{metrics.instructions_skipped} skipped "
        f"({metrics.resumes} resumes, {metrics.revalidation_hits} "
        f"revalidation hits), makespan {metrics.makespan:,.0f}"
    )


def bench_reexec_savings(benchmark, abort_heavy_block):
    """Both modes in one run so the savings ratio lands in one record."""
    workload, txs, reference = abort_heavy_block

    def both():
        restart = _run(workload, txs, reference,
                       enable_checkpoint_resume=False,
                       enable_revalidation=False)
        resume = _run(workload, txs, reference)
        return restart, resume

    restart, resume = benchmark.pedantic(
        both, rounds=2, iterations=1, warmup_rounds=0)
    replayed_restart = restart.metrics.replayed_instructions
    replayed_resume = resume.metrics.replayed_instructions
    saving = (1 - replayed_resume / replayed_restart) if replayed_restart else 0.0
    benchmark.extra_info["claim"] = (
        "checkpoint/resume cuts replayed instructions >= 40% vs restart"
    )
    benchmark.extra_info["replayed_restart"] = replayed_restart
    benchmark.extra_info["replayed_resume"] = replayed_resume
    benchmark.extra_info["replay_saving"] = round(saving, 4)
    benchmark.extra_info["makespan_restart"] = restart.metrics.makespan
    benchmark.extra_info["makespan_resume"] = resume.metrics.makespan
    print(
        f"\nreplayed: restart={replayed_restart} resume={replayed_resume} "
        f"(saving {saving:.1%}); makespan {restart.metrics.makespan:,.0f} -> "
        f"{resume.metrics.makespan:,.0f}"
    )
    if replayed_restart >= 500:
        # At tiny REPRO_BENCH_SCALE a handful of aborts dominates; only pin
        # the >= 40% saving once the baseline replays enough work.
        assert saving >= 0.40, (
            f"expected >=40% fewer replayed instructions, got {saving:.1%}"
        )
