"""Streaming pipeline benchmarks: pipelined vs strictly-sequential block
production on the adversarial scenario presets.

What the numbers mean:

* ``bench_pipeline_<scenario>`` — blocks/s streaming a scenario preset
  through the full mempool → analyse → pack → execute → seal → persist
  pipeline, once with the commit lane overlapped (``max_inflight=2``) and
  once strictly sequential (``max_inflight=0``, the identical code path
  with seal/persist inline).  The assertion is the PR's acceptance claim:
  pipelining the durable seal+fsync behind the next block's execution
  beats the sequential driver's blocks/s, and the measured execute∩commit
  wall-clock overlap is non-zero.

Why ``FSYNC_DELAY_MS``: this repro executes blocks in pure Python, ~100×
slower than a compiled client, while ``fsync`` runs at real-hardware speed
— which shrinks the persist stage to sub-1 % of a block and buries any
overlap win in scheduler noise.  The emulated extra fsync latency (a
``time.sleep`` *after* the real fsync — it releases the GIL, so the
overlap the pipeline claims against it is genuine) restores the
commodity-disk persist/execute ratio the paper's setting implies.  Set
``REPRO_BENCH_FSYNC_MS=0`` to measure against the raw disk.

Each measurement is the median of ``ROUNDS`` interleaved A/B runs (this
box's run-to-run variance is ±15 %); the speedup assertion allows a small
tolerance below 1.0× only for the raw-disk configuration.
"""

import os
import statistics

from repro.pipeline import run_serve

from conftest import scaled

BLOCKS = scaled(30, minimum=12)
TXS_PER_BLOCK = 16
THREADS = 4
ROUNDS = 3
FSYNC_DELAY_MS = float(os.environ.get("REPRO_BENCH_FSYNC_MS", "25"))
# Genesis seeding dominates wall-clock at full workload size and is run
# 2·ROUNDS+1 times per scenario; a compact population keeps the bench
# about the pipeline, not about minting.
WORKLOAD = dict(
    users=scaled(200, minimum=80), erc20_tokens=4, dex_pools=2,
    nft_collections=2, icos=2,
)

# ≥2 scenario presets, per the acceptance criteria.
SCENARIOS = ("mint_storm", "airdrop_flood", "mix")


def _stream(scenario: str, max_inflight: int):
    return run_serve(
        blocks=BLOCKS,
        txs_per_block=TXS_PER_BLOCK,
        scenario=scenario,
        scheduler="dmvcc",
        threads=THREADS,
        backend="durable",
        max_inflight=max_inflight,
        check=False,
        seed=7,
        fsync_delay=FSYNC_DELAY_MS / 1e3,
        workload_overrides=WORKLOAD,
    )


def _bench_scenario(benchmark, scenario: str) -> None:
    sequential = []
    pipelined = []
    last = {}
    for _ in range(ROUNDS):  # interleaved A/B to cancel machine drift
        sequential.append(_stream(scenario, 0).pipeline)
        last[2] = _stream(scenario, 2).pipeline
        pipelined.append(last[2])

    seq_bps = statistics.median(r.blocks_per_sec for r in sequential)
    pipe_bps = statistics.median(r.blocks_per_sec for r in pipelined)
    speedup = pipe_bps / seq_bps if seq_bps else 0.0
    overlap = statistics.median(r.overlap_seconds for r in pipelined)

    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["blocks"] = BLOCKS
    benchmark.extra_info["fsync_delay_ms"] = FSYNC_DELAY_MS
    benchmark.extra_info["sequential_blocks_per_sec"] = round(seq_bps, 3)
    benchmark.extra_info["pipelined_blocks_per_sec"] = round(pipe_bps, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["overlap_seconds"] = round(overlap, 4)
    benchmark.extra_info["backpressure_engagements"] = (
        last[2].backpressure_engagements
    )
    benchmark.extra_info["stage_occupancy"] = {
        name: round(stage.occupancy(last[2].elapsed), 4)
        for name, stage in last[2].stages.items()
    }

    # The acceptance claims: real overlap, and a throughput win whenever
    # the persist stage carries its commodity-disk weight.
    assert overlap > 0.0, "pipelined run produced no execute/commit overlap"
    assert all(r.blocks == BLOCKS for r in sequential + pipelined)
    floor = 1.0 if FSYNC_DELAY_MS > 0 else 0.85
    assert speedup > floor, (
        f"{scenario}: pipelined {pipe_bps:.2f} blocks/s vs sequential "
        f"{seq_bps:.2f} blocks/s (speedup {speedup:.2f}x, floor {floor}x)"
    )

    # What pytest-benchmark times: one pipelined streaming run.
    benchmark.pedantic(
        lambda: _stream(scenario, 2), rounds=1, iterations=1,
    )


def bench_pipeline_mint_storm(benchmark):
    """Mint-heavy traffic: hottest commit lane (many fresh trie nodes)."""
    _bench_scenario(benchmark, "mint_storm")


def bench_pipeline_airdrop_flood(benchmark):
    """Wide write sets: the largest per-block write batches to seal."""
    _bench_scenario(benchmark, "airdrop_flood")


def bench_pipeline_mix(benchmark):
    """The rotating adversarial mix, as served by ``repro serve``."""
    _bench_scenario(benchmark, "mix")
