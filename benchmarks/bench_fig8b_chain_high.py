"""Fig. 8(b): blockchain-environment throughput speedup, high contention.

Paper: under hot-contract skew DAG and OCC flatten (completing ~60% of
DMVCC's transactions per cycle) while DMVCC keeps scaling — the
ICO-launch scenario.
"""

import pytest

from repro.bench import run_fig8b

from conftest import (
    FIG8_BLOCKS,
    FIG8_GAS_PER_SECOND,
    FIG8_THREADS,
    FIG8_TXS_PER_BLOCK,
    FIG8_VALIDATORS,
    WORKLOAD_SIZE,
    print_result,
)


def bench_fig8b(benchmark):
    def run():
        result = run_fig8b(
            validators=FIG8_VALIDATORS,
            blocks=FIG8_BLOCKS,
            txs_per_block=FIG8_TXS_PER_BLOCK,
            thread_counts=FIG8_THREADS,
            gas_per_second=FIG8_GAS_PER_SECOND,
            config_overrides=WORKLOAD_SIZE,
        )
        assert all(row.roots_agree for row in result.rows)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_result(result)
    benchmark.extra_info["figure"] = "8b"
    benchmark.extra_info["throughput_speedups"] = {
        f"{row.scheduler}@{row.threads}": round(row.speedup, 2)
        for row in result.rows
    }
    top = max(FIG8_THREADS)
    dmvcc = result.at("dmvcc", top).speedup
    assert dmvcc > result.at("dag", top).speedup
    assert dmvcc > result.at("occ", top).speedup
