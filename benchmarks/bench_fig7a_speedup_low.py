"""Fig. 7(a): speedup over serial execution, mainnet mix (low contention).

Paper values at 32 threads: DMVCC 21.35x, OCC 13.86x, DAG 11.04x; at small
thread counts the three are similar.  The simulated-time speedups are
attached to ``extra_info`` and printed; the timed portion is the wall-clock
cost of one DMVCC/OCC/DAG/serial block execution on this machine.
"""

import pytest

from repro.bench import run_fig7a
from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.workload import Workload, low_contention_config

from conftest import (
    FIG7_BLOCKS,
    FIG7_THREADS,
    FIG7_TXS_PER_BLOCK,
    WORKLOAD_SIZE,
    print_result,
)


@pytest.fixture(scope="module")
def fig7a_result():
    result = run_fig7a(
        blocks=FIG7_BLOCKS,
        txs_per_block=FIG7_TXS_PER_BLOCK,
        thread_counts=FIG7_THREADS,
        **WORKLOAD_SIZE,
    )
    print_result(result)
    assert result.correctness_ok, "parallel execution diverged from serial"
    return result


@pytest.fixture(scope="module")
def block_under_test():
    workload = Workload(low_contention_config(**WORKLOAD_SIZE))
    txs = workload.transactions(FIG7_TXS_PER_BLOCK)
    return workload, txs


@pytest.mark.parametrize(
    "factory,label",
    [
        (SerialExecutor, "serial"),
        (DAGExecutor, "dag"),
        (OCCExecutor, "occ"),
        (DMVCCExecutor, "dmvcc"),
    ],
)
def bench_fig7a(benchmark, fig7a_result, block_under_test, factory, label):
    workload, txs = block_under_test

    def execute():
        return factory().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=32
        )

    execution = benchmark.pedantic(execute, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "7a"
    benchmark.extra_info["simulated_speedup_by_threads"] = {
        row.threads: round(row.speedup, 2)
        for row in fig7a_result.series(label)
    } if label != "serial" else {1: 1.0}
    benchmark.extra_info["wall_tx_per_second"] = round(
        len(txs) / max(benchmark.stats["mean"], 1e-9), 1
    )
    assert execution.metrics.tx_count == len(txs)
