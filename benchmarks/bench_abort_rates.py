"""RQ2 in-text claims: abort behaviour.

Paper: "the abort rate of DMVCC is less than 2% and DMVCC reduces 63%
unnecessary transaction aborts" relative to OCC.
"""

import pytest

from repro.executors import DMVCCExecutor, OCCExecutor, SerialExecutor
from repro.workload import Workload, high_contention_config

from conftest import FIG7_TXS_PER_BLOCK, WORKLOAD_SIZE, print_result


@pytest.fixture(scope="module")
def hot_block():
    workload = Workload(high_contention_config(**WORKLOAD_SIZE))
    txs = workload.transactions(FIG7_TXS_PER_BLOCK)
    reference = SerialExecutor().execute_block(
        txs, workload.db.latest, workload.db.codes.code_of
    )
    return workload, txs, reference


@pytest.mark.parametrize("factory,label", [(DMVCCExecutor, "dmvcc"), (OCCExecutor, "occ")])
def bench_abort_rates(benchmark, hot_block, factory, label):
    workload, txs, reference = hot_block

    def execute():
        execution = factory().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=32
        )
        assert execution.writes == reference.writes
        return execution

    execution = benchmark.pedantic(execute, rounds=2, iterations=1, warmup_rounds=0)
    metrics = execution.metrics
    benchmark.extra_info["claim"] = "RQ2: DMVCC abort rate < 2%, far below OCC"
    benchmark.extra_info["aborts"] = metrics.aborts
    benchmark.extra_info["abort_rate"] = round(metrics.abort_rate, 4)
    print(
        f"\n{label}: {metrics.aborts} aborts over {metrics.executions} "
        f"executions (abort rate {metrics.abort_rate:.2%})"
    )
    if label == "dmvcc" and len(txs) >= 300:
        # At small REPRO_BENCH_SCALE the rate is dominated by noise from a
        # handful of aborts; only pin the paper's <2% claim at real scale.
        assert metrics.abort_rate < 0.02, "paper claims DMVCC abort rate < 2%"
