"""State-commitment benchmarks: batched overlay vs per-key commits, and
flat-cache vs trie-walk reads, on an ERC20-shaped key distribution.

The keys mirror what a block of token traffic actually touches: a handful
of contracts, each with ``mapping(address => uint)`` balance slots derived
via ``mapping_slot`` — 256-bit keccak-spread keys, exactly the shape that
makes every trie path deep and disjoint.  The ≥3× hash-economy claim of
the overlay pipeline is asserted here (and the root equivalence is fuzzed
continuously by ``repro verify``).
"""

import random

import pytest

from repro.core import Address, StateKey, mapping_slot
from repro.state import StateDB
from repro.state.statedb import Snapshot

from conftest import scaled

TOKENS = [Address.derive(f"bench-commit-token-{i}") for i in range(4)]
USERS = scaled(400, minimum=100)
WRITES_PER_BLOCK = scaled(300, minimum=50)


def _erc20_writes(rng, count, value_floor=1):
    """One block's final write batch: token balance slots for random
    (token, holder) pairs, plus a few native balances."""
    writes = {}
    while len(writes) < count:
        token = rng.choice(TOKENS)
        holder = Address.derive(f"bench-holder-{rng.randrange(USERS)}")
        if rng.random() < 0.1:
            key = StateKey.balance(holder)
        else:
            key = StateKey(token, mapping_slot(holder.to_word(), 0))
        writes[key] = rng.randint(value_floor, 10**9)
    return writes


def _seeded_db(blocks=3):
    rng = random.Random(1234)
    db = StateDB()
    for _ in range(blocks):
        db.commit(_erc20_writes(rng, WRITES_PER_BLOCK))
    return db, rng


def bench_commit_batch_overlay(benchmark):
    """Trie batch-commit through the dirty-node overlay (the default)."""
    db, rng = _seeded_db()
    batches = [_erc20_writes(rng, WRITES_PER_BLOCK) for _ in range(64)]
    cursor = [0]

    def commit():
        db.commit(batches[cursor[0] % len(batches)])
        cursor[0] += 1

    benchmark(commit)
    report = db.last_commit
    benchmark.extra_info["nodes_sealed"] = report.nodes_sealed
    benchmark.extra_info["hashes_per_commit"] = report.hashes_computed


def bench_commit_per_key_legacy(benchmark):
    """The legacy baseline: one hashed trie insert per written key."""
    db, rng = _seeded_db()
    batches = [_erc20_writes(rng, WRITES_PER_BLOCK) for _ in range(64)]
    cursor = [0]

    def commit():
        db.commit(batches[cursor[0] % len(batches)], legacy=True)
        cursor[0] += 1

    benchmark(commit)
    benchmark.extra_info["hashes_per_commit"] = db.last_commit.hashes_computed


def bench_commit_hash_economy(benchmark):
    """Asserts the acceptance claim: the overlay spends ≥3× fewer hash
    invocations per block commit than the per-key baseline, sealing the
    byte-identical root."""
    rng = random.Random(99)
    batch = _erc20_writes(rng, WRITES_PER_BLOCK)
    # Two independently seeded dbs (identical contents, separate stores):
    # NodeStore.put memoises hashed nodes, so a shared store would hand
    # whichever path commits second free dedup hits and skew the ratio.
    overlay_db = _seeded_db()[0]
    legacy_db = _seeded_db()[0]
    overlay_fork, legacy_fork = overlay_db.fork(), legacy_db.fork()
    overlay_snap = overlay_fork.commit(batch)
    legacy_snap = legacy_fork.commit(batch, legacy=True)
    overlay_report = overlay_fork.last_commit
    legacy_report = legacy_fork.last_commit
    assert overlay_snap.root_hash == legacy_snap.root_hash
    assert overlay_report.hashes_computed * 3 <= legacy_report.hashes_computed
    benchmark.extra_info["claim"] = (
        "overlay commit hashes >= 3x fewer than per-key baseline, "
        "byte-identical root"
    )
    benchmark.extra_info["overlay_hashes"] = overlay_report.hashes_computed
    benchmark.extra_info["legacy_hashes"] = legacy_report.hashes_computed
    benchmark.extra_info["ratio"] = (
        legacy_report.hashes_computed / overlay_report.hashes_computed
    )
    benchmark(lambda: overlay_db.fork().commit(batch))


def bench_snapshot_reads_flat_cache(benchmark):
    """SLOAD hot path with the flat layer: O(1) dict hits."""
    db, rng = _seeded_db()
    keys = list(db.latest._flat)
    rng.shuffle(keys)
    keys = keys[:500]
    snap = db.latest

    def read():
        for key in keys:
            snap.get(key)

    benchmark(read)
    total = snap.flat_hits + snap.flat_misses
    benchmark.extra_info["flat_hit_rate"] = (
        snap.flat_hits / total if total else 0.0
    )


def bench_snapshot_reads_trie_walk(benchmark):
    """The replaced read path: a full nibble-walk node decode per SLOAD."""
    db, rng = _seeded_db()
    keys = list(db.latest._flat)
    rng.shuffle(keys)
    keys = keys[:500]
    snap = db.latest

    def read():
        for key in keys:
            snap.get_uncached(key)

    benchmark(read)


def bench_snapshot_reads_cold_lru(benchmark):
    """Cold reads against a flat-less snapshot: first touch walks the trie,
    repeats hit the bounded LRU."""
    db, rng = _seeded_db()
    keys = list(db.latest._flat)
    rng.shuffle(keys)
    keys = keys[:500]
    snap = Snapshot(db.latest._trie, db.height)

    def read():
        for key in keys:
            snap.get(key)

    benchmark(read)
