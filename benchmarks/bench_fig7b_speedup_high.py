"""Fig. 7(b): speedup under hot-contract skew (high contention).

Paper values at 32 threads: DMVCC 13.73x vs OCC 3.48x and DAG 3.05x —
commutative writes and early-write visibility keep DMVCC scaling where the
baselines flatten.
"""

import pytest

from repro.bench import run_fig7b
from repro.executors import DAGExecutor, DMVCCExecutor, OCCExecutor
from repro.workload import Workload, high_contention_config

from conftest import (
    FIG7_BLOCKS,
    FIG7_THREADS,
    FIG7_TXS_PER_BLOCK,
    WORKLOAD_SIZE,
    print_result,
)


@pytest.fixture(scope="module")
def fig7b_result():
    result = run_fig7b(
        blocks=FIG7_BLOCKS,
        txs_per_block=FIG7_TXS_PER_BLOCK,
        thread_counts=FIG7_THREADS,
        **WORKLOAD_SIZE,
    )
    print_result(result)
    assert result.correctness_ok
    # The paper's headline ordering must reproduce.
    top = max(FIG7_THREADS)
    assert result.at("dmvcc", top).speedup > result.at("dag", top).speedup
    assert result.at("dmvcc", top).speedup > result.at("occ", top).speedup
    return result


@pytest.fixture(scope="module")
def hot_block():
    workload = Workload(high_contention_config(**WORKLOAD_SIZE))
    txs = workload.transactions(FIG7_TXS_PER_BLOCK)
    return workload, txs


@pytest.mark.parametrize(
    "factory,label",
    [(DAGExecutor, "dag"), (OCCExecutor, "occ"), (DMVCCExecutor, "dmvcc")],
)
def bench_fig7b(benchmark, fig7b_result, hot_block, factory, label):
    workload, txs = hot_block

    def execute():
        return factory().execute_block(
            txs, workload.db.latest, workload.db.codes.code_of, threads=32
        )

    benchmark.pedantic(execute, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "7b"
    benchmark.extra_info["simulated_speedup_by_threads"] = {
        row.threads: round(row.speedup, 2) for row in fig7b_result.series(label)
    }
    benchmark.extra_info["aborts_at_32_threads"] = fig7b_result.at(label, 32).aborts
