"""Durable storage engine benchmarks: on-disk vs in-memory commit cost,
cold-cache read latency, and pruning reclaim, on the same ERC20-shaped key
distribution as ``bench_state_commit``.

What the numbers mean:

* ``bench_commit_*`` — the price of crash safety: the durable path adds a
  log append per fresh node plus one fsync per block over the in-memory
  overlay commit (which is the ``bench_commit_durable`` /
  ``bench_commit_memory`` gap);
* ``bench_read_*`` — node reads through the bounded LRU against reads
  from the in-memory dict, on a reopened (cold-cache) store;
* ``bench_compaction_reclaim`` — asserts the ``repro.db`` acceptance
  claim: retention-window pruning reclaims ≥50 % of the log bytes on a
  deep-churn chain without changing any retained root.
"""

import random
import shutil
import tempfile

import pytest

from repro.core import Address, StateKey, mapping_slot
from repro.state import StateDB

from conftest import scaled

TOKENS = [Address.derive(f"bench-db-token-{i}") for i in range(4)]
USERS = scaled(400, minimum=100)
WRITES_PER_BLOCK = scaled(300, minimum=50)
SEED_BLOCKS = 3


def _erc20_writes(rng, count):
    writes = {}
    while len(writes) < count:
        token = rng.choice(TOKENS)
        holder = Address.derive(f"bench-db-holder-{rng.randrange(USERS)}")
        if rng.random() < 0.1:
            key = StateKey.balance(holder)
        else:
            key = StateKey(token, mapping_slot(holder.to_word(), 0))
        writes[key] = rng.randint(1, 10**9)
    return writes


@pytest.fixture
def store_dir():
    path = tempfile.mkdtemp(prefix="repro-bench-db-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _seed(db, rng):
    for _ in range(SEED_BLOCKS):
        db.commit(_erc20_writes(rng, WRITES_PER_BLOCK))
    return db


def bench_commit_memory(benchmark):
    """Baseline: the overlay commit with no durability at all."""
    rng = random.Random(77)
    db = _seed(StateDB(), rng)
    batches = [_erc20_writes(rng, WRITES_PER_BLOCK) for _ in range(64)]
    cursor = [0]

    def commit():
        db.commit(batches[cursor[0] % len(batches)])
        cursor[0] += 1

    benchmark(commit)
    benchmark.extra_info["hashes_per_commit"] = db.last_commit.hashes_computed


def bench_commit_durable(benchmark, store_dir):
    """The same commits through the segmented log, fsync per block."""
    rng = random.Random(77)
    db = _seed(StateDB.open(store_dir), rng)
    batches = [_erc20_writes(rng, WRITES_PER_BLOCK) for _ in range(64)]
    cursor = [0]

    def commit():
        db.commit(batches[cursor[0] % len(batches)])
        cursor[0] += 1

    benchmark(commit)
    report = db.last_commit
    assert report.durable
    benchmark.extra_info["bytes_per_commit"] = report.bytes_appended
    benchmark.extra_info["fsync_ms"] = report.fsync_time * 1e3
    db.close()


def bench_read_memory(benchmark):
    """Trie-walk reads against the in-memory dict backend."""
    rng = random.Random(78)
    db = _seed(StateDB(), rng)
    keys = list(db.latest._flat)
    rng.shuffle(keys)
    keys = keys[:200]
    snap = db.latest

    def read():
        for key in keys:
            snap.get_uncached(key)

    benchmark(read)


def bench_read_durable_cold_cache(benchmark, store_dir):
    """The same trie-walk reads on a *reopened* durable store: every node
    first comes off disk, repeats hit the bounded LRU."""
    rng = random.Random(78)
    db = _seed(StateDB.open(store_dir), rng)
    keys = list(db.latest._flat)
    rng.shuffle(keys)
    keys = keys[:200]
    db.close()

    reopened = StateDB.open(store_dir)
    snap = reopened.latest

    def read():
        for key in keys:
            snap.get_uncached(key)

    benchmark(read)
    backend = reopened._store.backend
    reads = backend.cache_hits + backend.cache_misses
    benchmark.extra_info["node_cache_hit_rate"] = (
        backend.cache_hits / reads if reads else 0.0
    )
    reopened.close()


def bench_compaction_reclaim(benchmark, store_dir):
    """Asserts ≥50 % byte reclaim on deep churn, retained roots unchanged."""
    rng = random.Random(79)
    db = StateDB.open(store_dir, retention=2)
    for _ in range(20):
        db.commit(_erc20_writes(rng, WRITES_PER_BLOCK // 2))
    roots_before = list(db._store.backend.retained_roots())
    latest_root = db.latest.root_hash
    report = db.compact()
    assert report.reclaimed_fraction >= 0.5, report.render()
    assert db._store.backend.roots == roots_before
    assert db.latest.root_hash == latest_root
    assert db._store.backend.fsck().ok
    benchmark.extra_info["claim"] = (
        "compaction reclaims >= 50% of log bytes on deep churn without "
        "changing any retained root"
    )
    benchmark.extra_info["reclaimed_fraction"] = report.reclaimed_fraction
    benchmark.extra_info["bytes_before"] = report.bytes_before
    benchmark.extra_info["bytes_after"] = report.bytes_after
    db.close()

    # Benchmark the compaction walk itself on a freshly churned store.
    scratch = tempfile.mkdtemp(prefix="repro-bench-db-compact-")
    try:
        victim = StateDB.open(scratch, retention=2)
        for _ in range(10):
            victim.commit(_erc20_writes(rng, WRITES_PER_BLOCK // 2))

        def compact_once():
            victim.compact()

        benchmark(compact_once)
        victim.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
