"""RQ3 in-text: the fast-consensus regime (1-second blocks).

Paper: "we also adjusted the mining difficulty, allowing validators to
generate a block in every second.  Then, the transaction execution becomes
the main bottleneck, and the speedup achieved in throughput is closely
related to the execution [speedup]."

We run the same workload under a 12 s and a 1 s mining interval and check
that shrinking the interval pushes the chain from (partially) mining-bound
to fully execution-bound: the throughput ratio between DMVCC and serial
approaches the raw execution speedup.
"""

import pytest

from repro.bench import run_blockchain_throughput
from repro.workload import low_contention_config

from conftest import FIG8_TXS_PER_BLOCK, WORKLOAD_SIZE, print_result

# Calibrated so one serial block ≈ 30 s: longer than both intervals, but
# close enough to 12 s that the interval still matters there.
GAS_PER_SECOND = FIG8_TXS_PER_BLOCK * 45_000 / 30.0


@pytest.mark.parametrize("interval", [12.0, 1.0])
def bench_fast_consensus(benchmark, interval):
    def run():
        return run_blockchain_throughput(
            low_contention_config(**WORKLOAD_SIZE),
            f"RQ3 fast consensus: {interval:.0f}s mining interval",
            validators=2,
            blocks=2,
            txs_per_block=FIG8_TXS_PER_BLOCK,
            block_interval=interval,
            thread_counts=(32,),
            schedulers=("dmvcc",),
            gas_per_second=GAS_PER_SECOND,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_result(result)
    dmvcc = result.at("dmvcc", 32)
    benchmark.extra_info["interval_seconds"] = interval
    benchmark.extra_info["throughput_speedup"] = round(dmvcc.speedup, 2)
    assert dmvcc.roots_agree
    # Execution-bound at both intervals (serial ~30s >> interval), but the
    # 1 s chain lets the parallel executor's headroom show fully: its cycle
    # floor is the interval, so the shorter interval yields the higher
    # throughput speedup.
    if interval == 1.0:
        assert dmvcc.speedup > 10.0
