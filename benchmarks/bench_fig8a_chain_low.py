"""Fig. 8(a): blockchain-environment throughput speedup, low contention.

Paper: with big blocks and fast consensus, execution becomes the
bottleneck; DMVCC reaches ~19.79x throughput speedup at 32 threads, with
near-linear scaling and the schedulers close to each other under low
contention.  Simulated gas-per-second is calibrated so the serial block
execution dominates the mining interval (the paper's 10,000-tx regime).
"""

import pytest

from repro.bench import run_fig8a

from conftest import (
    FIG8_BLOCKS,
    FIG8_GAS_PER_SECOND,
    FIG8_THREADS,
    FIG8_TXS_PER_BLOCK,
    FIG8_VALIDATORS,
    WORKLOAD_SIZE,
    print_result,
)


def bench_fig8a(benchmark):
    def run():
        result = run_fig8a(
            validators=FIG8_VALIDATORS,
            blocks=FIG8_BLOCKS,
            txs_per_block=FIG8_TXS_PER_BLOCK,
            thread_counts=FIG8_THREADS,
            gas_per_second=FIG8_GAS_PER_SECOND,
            config_overrides=WORKLOAD_SIZE,
        )
        assert all(row.roots_agree for row in result.rows)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_result(result)
    benchmark.extra_info["figure"] = "8a"
    benchmark.extra_info["throughput_speedups"] = {
        f"{row.scheduler}@{row.threads}": round(row.speedup, 2)
        for row in result.rows
    }
    top = max(FIG8_THREADS)
    assert result.at("dmvcc", top).speedup > 4.0
