"""Sharded execution A/B: partition throughput and merge-declared aborts.

Two claims ride this file, each parity-checked and archived as stamped
JSON (``shards``/``merge_ops`` provenance included, schema v3):

* **Sharded throughput** — the same cross-shard-storm block, unsharded
  DMVCC vs ``ShardedDMVCCExecutor`` over 4 hash partitions.  Sharding's
  win is *real-core* parallelism (each shard is its own process with its
  own interpreter), so the 1.5x sharded-over-unsharded wall-clock
  assertion only fires on machines with >= 4 cores; everywhere else the
  measurement is archived without judgment.  The box-independent claim —
  the sharded schedule still beats serial by >= 2x despite the ordered
  phase-2 tail — is asserted unconditionally.
* **Merge abort drop** — a hot-ERC20-balance block whose exchange payouts
  are mispredicted (the C-SAG sees an empty balance; in-block credits make
  them succeed), so their late-inserted writes cascade aborts through
  every reader of the hot key.  Declaring the balances/supplies as
  bounded SUB merges must cut DMVCC aborts by >= 50%: guard-outcome
  stability tolerates the drift instead of re-executing.
"""

import os
import random
from time import perf_counter

from conftest import scaled

from repro.bench.reporting import save_results_json
from repro.chain.transaction import Transaction
from repro.executors import DMVCCExecutor, SerialExecutor
from repro.shard import ShardedDMVCCExecutor
from repro.substrate import get_substrate
from repro.workload import Workload, WorkloadConfig
from repro.workload.scenarios import scenario_config

SHARDS = 4
WORKERS = max(2, min(os.cpu_count() or 1, SHARDS))


def _timed(factory, substrate, txs, workload, threads=8, repeats=3):
    best = None
    execution = None
    for _ in range(repeats):
        executor = factory()
        if substrate is not None:
            executor.attach_substrate(substrate)
        start = perf_counter()
        execution = executor.execute_block(
            txs, workload.db.latest, workload.db.codes.code_of,
            threads=threads)
        elapsed = perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, execution


def bench_sharded_throughput():
    """Unsharded vs 4-shard DMVCC on the shardable storm preset."""
    cpu = os.cpu_count() or 1
    txs_count = scaled(192, minimum=48)
    workload = Workload(scenario_config(
        "cross_shard_storm", seed=11, users=scaled(400, minimum=160),
        erc20_tokens=16, dex_pools=4, nft_collections=2, icos=1))
    txs = workload.transactions(txs_count)
    reference = SerialExecutor().execute_block(
        txs, workload.db.latest, workload.db.codes.code_of)

    unsharded_wall, unsharded = _timed(DMVCCExecutor, None, txs, workload)
    assert unsharded.writes == reference.writes

    substrate = get_substrate("processes", workers=WORKERS)
    try:
        sharded_wall, sharded = _timed(
            lambda: ShardedDMVCCExecutor(shards=SHARDS), substrate,
            txs, workload)
    finally:
        substrate.close()
    assert sharded.writes == reference.writes, "sharded output diverged"

    wall_speedup = unsharded_wall / sharded_wall
    document = save_results_json(
        os.environ.get("REPRO_SHARD_BENCH_OUT", "sharding_throughput.json"),
        {
            "benchmark": "sharded_dmvcc_throughput",
            "scenario": "cross_shard_storm",
            "txs": len(txs),
            "workers": WORKERS,
            "cross_shard_txs": sharded.metrics.cross_shard_txs,
            "handoff_requeues": sharded.metrics.handoff_requeues,
            "shard_fallbacks": sharded.metrics.shard_fallbacks,
            "makespan": {"unsharded": unsharded.metrics.makespan,
                         "sharded": sharded.metrics.makespan},
            "speedup_vs_serial": {
                "unsharded": round(unsharded.metrics.speedup, 3),
                "sharded": round(sharded.metrics.speedup, 3)},
            "wall_seconds": {"unsharded": unsharded_wall,
                             "sharded": sharded_wall},
            "wall_speedup": round(wall_speedup, 3),
            "wall_speedup_asserted": cpu >= SHARDS,
        },
        backend="processes", shards=SHARDS,
    )
    print(f"\nsharded throughput ({len(txs)} txs, {SHARDS} shards, {cpu} "
          f"cores): vs-serial {sharded.metrics.speedup:.2f}x, wall "
          f"{wall_speedup:.2f}x, cross={sharded.metrics.cross_shard_txs} "
          f"fallbacks={sharded.metrics.shard_fallbacks}")
    assert document["repro_meta"]["shards"] == SHARDS
    assert sharded.metrics.shard_fallbacks == 0, (
        "storm preset should shard cleanly")
    assert sharded.metrics.speedup >= 2.0, (
        f"sharded schedule only {sharded.metrics.speedup:.2f}x over serial "
        f"(need >= 2x on the storm preset)")
    if cpu >= SHARDS:
        assert wall_speedup >= 1.5, (
            f"sharded wall-clock only {wall_speedup:.2f}x over unsharded "
            f"with {WORKERS} workers on {cpu} cores (need >= 1.5x)")


def _hot_balance_case(seed=5):
    """The misprediction workload: exchange payouts whose C-SAG predicted
    failure (empty snapshot balance) succeed in-block once credits land —
    their late-inserted hot-balance writes abort other readers."""
    pull_count = scaled(40, minimum=24)
    credit_count = scaled(40, minimum=24)
    workload = Workload(WorkloadConfig(
        users=max(200, pull_count + credit_count), erc20_tokens=1,
        dex_pools=1, nft_collections=1, icos=1, seed=seed))
    erc20 = workload.contracts.compiled["ERC20"]
    token = workload.contracts.erc20[0]
    exchange = workload.contracts.exchange
    resolver = workload.db.codes.code_of
    rng = random.Random(seed ^ 0x51AD)

    pullers = workload.users[:pull_count]
    creditors = workload.users[pull_count:pull_count + credit_count]
    setup = [Transaction(exchange, token, 0,
                         erc20.encode_call("approve", u, 10**9),
                         nonce=i, label="setup:approve")
             for i, u in enumerate(pullers)]
    setup += [Transaction(exchange, token, 0,
                          erc20.encode_call("mint", u, 50_000),
                          nonce=pull_count + j, label="setup:mint")
              for j, u in enumerate(creditors)]
    seeded = SerialExecutor().execute_block(
        setup, workload.db.latest, resolver)
    assert all(r.result.status.name == "SUCCESS" for r in seeded.receipts)
    workload.db.commit(seeded.writes)

    txs = [Transaction(u, token, 0,
                       erc20.encode_call("transfer", exchange, 10_000),
                       label="credit")
           for u in creditors]
    txs += [Transaction(u, token, 0,
                        erc20.encode_call("transferFrom", exchange, u,
                                          rng.randint(10, 50)),
                        label="pull")
            for u in pullers]
    return workload, txs


def bench_merge_abort_drop():
    """Declared SUB merges vs plain DMVCC on the hot-balance block."""
    workload, txs = _hot_balance_case()
    snapshot = workload.db.latest
    resolver = workload.db.codes.code_of
    reference = SerialExecutor().execute_block(txs, snapshot, resolver)

    plain = DMVCCExecutor().execute_block(
        txs, snapshot, resolver, threads=16)
    assert plain.writes == reference.writes

    declared = DMVCCExecutor()
    registry = workload.declared_merges()
    declared.attach_merges(registry)
    merged = declared.execute_block(txs, snapshot, resolver, threads=16)
    assert merged.writes == reference.writes, "merge-declared run diverged"

    drop = 1.0 - merged.metrics.aborts / max(plain.metrics.aborts, 1)
    document = save_results_json(
        os.environ.get("REPRO_MERGE_BENCH_OUT", "sharding_merge_drop.json"),
        {
            "benchmark": "merge_declared_abort_drop",
            "txs": len(txs),
            "aborts": {"plain": plain.metrics.aborts,
                       "declared": merged.metrics.aborts},
            "merge_intents": merged.metrics.merge_intents,
            "merge_tolerated": merged.metrics.merge_tolerated,
            "speedup": {"plain": round(plain.metrics.speedup, 3),
                        "declared": round(merged.metrics.speedup, 3)},
            "abort_drop": round(drop, 3),
        },
        shards=0, merge_ops=[spec.op.value for _k, spec in registry],
    )
    print(f"\nmerge abort drop ({len(txs)} txs): plain="
          f"{plain.metrics.aborts} declared={merged.metrics.aborts} "
          f"tolerated={merged.metrics.merge_tolerated} "
          f"drop={drop:.0%}")
    assert document["repro_meta"]["merge_ops"] == ["sub"]
    assert plain.metrics.aborts > 0, (
        "misprediction workload produced no plain-DMVCC aborts to cut")
    assert merged.metrics.aborts <= plain.metrics.aborts * 0.5, (
        f"declared merges only cut aborts {drop:.0%} (need >= 50%)")


def bench_sharded_parity_smoke():
    """Every scenario × merge-mode parity on one shard count — the quick
    in-bench version of ``repro verify --shards`` (sim backend only)."""
    from repro.verify.shard import run_shard_verify

    report = run_shard_verify(
        shards=SHARDS, backends=("sim",),
        txs_per_block=scaled(32, minimum=24), seed=13)
    print("\n" + report.render())
    assert report.ok, report.render()
