"""DAG-based parallel executor (the ParBlockchain-style baseline).

Conflicts between transactions are computed up front from the C-SAG
read/write sets and recorded as a dependency DAG; a transaction starts only
after every conflicting predecessor finished.  Two properties distinguish it
from DMVCC, exactly as the paper describes:

* **write-write conflicts are edges** — no write versioning;
* **writes become visible only at transaction completion** — no early-write
  visibility — and commutativity is not exploited (ω̄ counts as a plain ω).

The approach tolerates no analysis error: if the predicted sets miss a real
access, the execution may diverge from serial (the paper's stated weakness);
the RQ1 benchmark quantifies how often that occurs.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.csag import CSAG, CSAGBuilder
from ..core.types import StateKey
from ..evm.environment import BlockContext
from ..evm.events import (
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
)
from ..sim.clock import EventLoop
from ..sim.metrics import TxMetrics
from ..sim.threadpool import ThreadPool
from ..state.journal import WriteJournal
from ..state.statedb import Snapshot
from .base import BlockExecution, Executor, Receipt
from .txprogram import StorageIncrement, TxResult, transaction_program


def build_conflict_dag(
    csags: List[CSAG], granularity: str = "variable"
) -> List[Set[int]]:
    """Predecessor sets: ``deps[j]`` = indices i<j conflicting with j.

    Conflict = read-write, write-read, or write-write overlap (Definition 3
    *without* DMVCC's write-versioning relaxation).

    ``granularity`` selects the conflict unit:

    * ``"variable"`` (default) — whole storage variables, as the coarse
      static analyses of prior DAG-based systems produce (two transfers on
      one token always conflict);
    * ``"slot"`` — DMVCC-grade slot-level sets, for the ablation that asks
      how much of DMVCC's win is just analysis precision.
    """
    deps: List[Set[int]] = [set() for _ in csags]
    # Conflict unit -> list of (index, reads?, writes?) in block order.
    touched: Dict[object, List[Tuple[int, bool, bool]]] = {}
    for j, csag in enumerate(csags):
        if granularity == "variable":
            reads = set(csag.coarse_read_units)
            writes = set(csag.coarse_write_units)
        else:
            # Pre-executed path unioned with every symbolically-resolved
            # potential access of the called function.
            reads = csag.read_keys | csag.static_read_keys
            writes = csag.write_keys | csag.static_write_keys
        # DAG treats commutative writes as plain writes.
        for key in reads | writes:
            r = key in reads
            w = key in writes
            for i, ri, wi in touched.get(key, ()):
                if (r and wi) or (w and ri) or (w and wi):
                    deps[j].add(i)
            touched.setdefault(key, []).append((j, r, w))
    return deps


class DAGExecutor(Executor):
    """Topological parallel execution over the conflict DAG."""

    name = "dag"

    def __init__(self, gas_time_scale: float = 1.0, granularity: str = "variable") -> None:
        super().__init__(gas_time_scale)
        self.granularity = granularity
        if granularity != "variable":
            self.name = f"dag-{granularity}"

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
        csags: Optional[List[CSAG]] = None,
    ) -> BlockExecution:
        """Execute ``txs`` respecting the conflict DAG; see Executor."""
        pool = self._substrate_pool(threads)
        if pool is not None:
            from ..substrate.coordinator import run_dag_real
            return run_dag_real(self, pool, txs, snapshot, code_resolver,
                                block, csags, threads=threads)
        wall_start = perf_counter()
        if csags is None:
            builder = CSAGBuilder(code_resolver, block=block)
            csags = [builder.build(tx, snapshot) for tx in txs]
        deps = build_conflict_dag(csags, self.granularity)
        dependents: List[List[int]] = [[] for _ in txs]
        remaining = [len(d) for d in deps]
        for j, dset in enumerate(deps):
            for i in dset:
                dependents[i].append(j)

        obs = self.obs
        loop = EventLoop()
        pool = ThreadPool(threads, obs=obs)
        if obs is not None:
            obs.block_start(0.0, scheduler=self.name, threads=threads,
                            tx_count=len(txs))
        # Published versions per key: (tx_index, value), appended in
        # completion order; reads take the latest finished writer < self.
        versions: Dict[StateKey, List[Tuple[int, int]]] = {}
        ready: List[int] = []  # min-heap: deterministic index order
        receipts: List[Optional[Receipt]] = [None] * len(txs)
        per_tx: List[TxMetrics] = [TxMetrics(index=i) for i in range(len(txs))]

        def resolver_for(index: int):
            def resolve(key: StateKey) -> Tuple[int, int]:
                """(value, writer) of the latest finished writer < index."""
                best: Optional[Tuple[int, int]] = None
                for writer, value in versions.get(key, ()):
                    if writer < index and (best is None or writer > best[0]):
                        best = (writer, value)
                if best is not None:
                    return best[1], best[0]
                return snapshot.get(key), -1

            return resolve

        def dispatch() -> None:
            while ready and pool.idle_count:
                index = heapq.heappop(ready)
                thread = pool.try_occupy(loop.now, label=f"T{index}")
                assert thread is not None
                start = loop.now
                if obs is not None:
                    obs.tx_start(start, index, thread=thread)
                result, writes = _run_to_completion(
                    txs[index], resolver_for(index), code_resolver, block,
                    recorder=self.recorder, index=index,
                )
                end = start + result.gas_used * self.gas_time_scale
                per_tx[index].start_time = start
                per_tx[index].gas_used = result.gas_used
                per_tx[index].succeeded = result.success

                def complete(index=index, thread=thread, result=result,
                             writes=writes, end=end) -> None:
                    if result.success:
                        for key, value in writes.items():
                            versions.setdefault(key, []).append((index, value))
                            if self.recorder is not None:
                                self.recorder.publish(index, key, "abs", value)
                    if self.recorder is not None:
                        self.recorder.complete(index, success=result.success,
                                               gas_used=result.gas_used)
                    receipts[index] = Receipt(index=index, result=result)
                    per_tx[index].end_time = end
                    if obs is not None:
                        obs.tx_end(loop.now, index, success=result.success,
                                   gas_used=result.gas_used)
                    pool.release(thread, loop.now)
                    for dep in dependents[index]:
                        remaining[dep] -= 1
                        if remaining[dep] == 0:
                            if obs is not None:
                                obs.lock_wait_end(loop.now, dep)
                                obs.tx_ready(loop.now, dep)
                            heapq.heappush(ready, dep)
                    dispatch()

                loop.schedule(end, complete)

        for index in range(len(txs)):
            if remaining[index] == 0:
                if obs is not None:
                    obs.tx_ready(0.0, index)
                heapq.heappush(ready, index)
            elif obs is not None:
                obs.lock_wait_begin(0.0, index,
                                    holders=tuple(sorted(deps[index])))
        loop.schedule_now(dispatch)
        makespan = loop.run()
        if obs is not None:
            obs.block_end(makespan, makespan=makespan)

        final_receipts = [r for r in receipts if r is not None]
        if len(final_receipts) != len(txs):
            missing = [i for i, r in enumerate(receipts) if r is None]
            raise RuntimeError(f"DAG executor deadlocked; unfinished: {missing}")

        writes: Dict[StateKey, int] = {}
        for key, entries in versions.items():
            writes[key] = max(entries, key=lambda e: e[0])[1]

        metrics = self._base_metrics(threads, final_receipts)
        metrics.makespan = makespan
        metrics.utilisation = pool.utilisation(makespan)
        metrics.per_tx = per_tx
        metrics.wall_time = perf_counter() - wall_start
        return BlockExecution(writes=writes, receipts=final_receipts, metrics=metrics)


def _run_to_completion(
    tx, resolve, code_resolver, block, recorder=None, index: int = 0
) -> Tuple[TxResult, Dict[StateKey, int]]:
    """Drive one transaction program against a point-in-time resolver.

    ``resolve(key)`` returns (value, writer index); foreign reads are logged
    to ``recorder`` with the writer version they observed.
    """
    last_version: Dict[StateKey, int] = {}

    def reader(key: StateKey) -> int:
        value, writer = resolve(key)
        last_version[key] = writer
        return value

    journal = WriteJournal(reader)
    program = transaction_program(tx, code_resolver, block=block)
    to_send: object = None
    while True:
        try:
            event = program.send(to_send)
        except StopIteration as stop:
            result: TxResult = stop.value
            break
        to_send = None
        if isinstance(event, StorageRead):
            own = journal.written(event.key)
            to_send = journal.read(event.key)
            if recorder is not None and not own:
                recorder.read(index, event.key,
                              last_version.get(event.key, -1), to_send)
        elif isinstance(event, StorageWrite):
            journal.write(event.key, event.value)
            if recorder is not None:
                recorder.write(index, event.key, value=event.value)
        elif isinstance(event, StorageIncrement):
            own = journal.written(event.key)
            base = journal.read(event.key)
            if recorder is not None and not own:
                recorder.read(index, event.key,
                              last_version.get(event.key, -1), base, blind=True)
            journal.write(event.key, base + event.delta)
            if recorder is not None:
                recorder.write(index, event.key, delta=event.delta)
        elif isinstance(event, FrameCheckpoint):
            to_send = journal.checkpoint()
        elif isinstance(event, FrameCommit):
            journal.commit_checkpoint(event.token)
        elif isinstance(event, FrameRevert):
            journal.revert_to(event.token)
    return result, (journal.write_set if result.success else {})
