"""The transaction program: a uniform event stream for every executor.

A transaction is more than its EVM run: intrinsic gas, the sender-balance
check, and the value transfer all touch state.  ``transaction_program``
wraps everything into one generator speaking the VM's event protocol, with
``gas_used`` made *transaction-cumulative* (intrinsic gas included), so an
executor can treat plain Ether transfers and contract calls identically —
exactly how the paper folds non-contract transactions into scheduling.

The recipient credit of a value transfer is emitted as a
:class:`StorageIncrement` — a blind ``+= value`` that commutes with other
credits.  Executors without commutativity support lower it to a
read-modify-write.

``resume_transaction_program`` is the incremental-re-execution counterpart:
given a :class:`~repro.evm.vm.VMCheckpoint` captured by the driver mid-run,
it rebuilds the event stream from that storage-read boundary onward.  The
funding prologue is *not* replayed — it ran before the EVM started and its
effects live in the driver's checkpointed bookkeeping.  An
:class:`ExecutionMeter` gives the driver a live handle onto the VM for
taking checkpoints and for counting the instructions each attempt actually
dispatched (the replayed-work metric the re-execution benchmarks report).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Generator, Optional

from ..core.types import Address, StateKey
from ..evm.environment import BlockContext, HaltReason, Message
from ..evm.events import StorageRead, StorageWrite, VMEvent
from ..evm.opcodes import intrinsic_gas
from ..evm.vm import EVM, VMCheckpoint, WatchMap


@dataclass(frozen=True)
class StorageIncrement(VMEvent):
    """Blind commutative increment: ``key += delta`` without observing the
    current value.  The driver ``send``s None."""

    key: StateKey
    delta: int


class TxStatus(Enum):
    SUCCESS = "success"
    REVERTED = "reverted"
    OUT_OF_GAS = "out_of_gas"
    ASSERT_FAIL = "assert_fail"
    INVALID = "invalid"
    INSUFFICIENT_FUNDS = "insufficient_funds"

    @property
    def is_success(self) -> bool:
        return self is TxStatus.SUCCESS


_HALT_TO_STATUS = {
    HaltReason.SUCCESS: TxStatus.SUCCESS,
    HaltReason.REVERT: TxStatus.REVERTED,
    HaltReason.OUT_OF_GAS: TxStatus.OUT_OF_GAS,
    HaltReason.ASSERT_FAIL: TxStatus.ASSERT_FAIL,
    HaltReason.INVALID: TxStatus.INVALID,
    HaltReason.STACK_ERROR: TxStatus.INVALID,
    HaltReason.BAD_JUMP: TxStatus.INVALID,
}


@dataclass
class TxResult:
    """Final outcome of one transaction attempt."""

    status: TxStatus
    gas_used: int            # transaction-total, intrinsic gas included
    return_data: bytes = b""
    error: Optional[str] = None
    steps: int = 0           # EVM instructions on the final execution path

    @property
    def success(self) -> bool:
        return self.status.is_success


class ExecutionMeter:
    """Driver-side handle onto the live EVM of one transaction attempt.

    ``checkpoint()`` snapshots the VM while its generator is suspended at a
    storage read; ``steps_executed`` counts only the instructions *this*
    attempt dispatched (a resumed attempt does not re-pay the prefix it
    inherited from its checkpoint).
    """

    __slots__ = ("vm", "base_steps")

    def __init__(self) -> None:
        self.vm: Optional[EVM] = None
        self.base_steps = 0

    @property
    def steps_executed(self) -> int:
        if self.vm is None:
            return 0
        return self.vm.steps - self.base_steps

    def checkpoint(self) -> Optional[VMCheckpoint]:
        if self.vm is None:
            return None
        return self.vm.checkpoint()


TxProgram = Generator[VMEvent, object, TxResult]


def _pump_vm(gen, base: int):
    """Re-yield a VM generator's events with ``gas_used`` offset by the
    transaction's intrinsic gas; returns the VM's ExecutionResult."""
    to_send: object = None
    while True:
        try:
            event = gen.send(to_send)
        except StopIteration as stop:
            return stop.value
        to_send = yield replace(event, gas_used=event.gas_used + base)


def transaction_program(
    tx,
    code_resolver: Callable[[Address], bytes],
    block: Optional[BlockContext] = None,
    watchpoints: Optional[WatchMap] = None,
    meter: Optional[ExecutionMeter] = None,
) -> TxProgram:
    """Build the full event stream of one transaction.

    Yields events whose ``gas_used`` is cumulative over the *transaction*
    (intrinsic gas first, then execution gas on top).  Returns a
    :class:`TxResult`.  The driver must discard buffered writes when the
    result is unsuccessful.
    """
    base = intrinsic_gas(tx.data)
    if base > tx.gas_limit:
        return TxResult(TxStatus.OUT_OF_GAS, tx.gas_limit, error="intrinsic gas exceeds limit")

    if tx.value > 0:
        # The funding check reads the sender balance only when value moves:
        # with value == 0 the branch cannot fire (balances are unsigned), so
        # emitting the read would create a state access no analysis predicts
        # and no outcome depends on.
        sender_key = StateKey.balance(tx.sender)
        sender_balance = yield StorageRead(0, sender_key)
        sender_balance = int(sender_balance)  # type: ignore[arg-type]
        if sender_balance < tx.value:
            return TxResult(TxStatus.INSUFFICIENT_FUNDS, base, error="insufficient balance")
        yield StorageWrite(base, sender_key, sender_balance - tx.value)
        yield StorageIncrement(base, StateKey.balance(tx.to), tx.value)

    code = code_resolver(tx.to)
    if not code:
        return TxResult(TxStatus.SUCCESS, base)

    evm = EVM(code_resolver, block=block, watchpoints=watchpoints)
    if meter is not None:
        meter.vm = evm
        meter.base_steps = 0
    message = Message(
        sender=tx.sender,
        to=tx.to,
        value=tx.value,
        data=tx.data,
        gas=tx.gas_limit - base,
    )
    result = yield from _pump_vm(evm.run(message), base)
    return TxResult(
        _HALT_TO_STATUS[result.status],
        base + result.gas_used,
        result.return_data,
        result.error,
        result.steps,
    )


def resume_transaction_program(
    tx,
    checkpoint: VMCheckpoint,
    code_resolver: Callable[[Address], bytes],
    block: Optional[BlockContext] = None,
    watchpoints: Optional[WatchMap] = None,
    meter: Optional[ExecutionMeter] = None,
) -> TxProgram:
    """Rebuild a transaction's event stream from a VM checkpoint.

    The first yielded event is the checkpoint's pending storage read
    (gas-offset like every other event); the intrinsic-gas and funding
    prologue are not replayed.  Only meaningful for transactions that
    reached EVM execution — plain transfers never produce checkpoints.
    """
    base = intrinsic_gas(tx.data)
    evm = EVM(code_resolver, block=block, watchpoints=watchpoints)
    if meter is not None:
        meter.vm = evm
        meter.base_steps = checkpoint.steps
    result = yield from _pump_vm(evm.resume(checkpoint), base)
    return TxResult(
        _HALT_TO_STATUS[result.status],
        base + result.gas_used,
        result.return_data,
        result.error,
        result.steps,
    )
