"""The transaction program: a uniform event stream for every executor.

A transaction is more than its EVM run: intrinsic gas, the sender-balance
check, and the value transfer all touch state.  ``transaction_program``
wraps everything into one generator speaking the VM's event protocol, with
``gas_used`` made *transaction-cumulative* (intrinsic gas included), so an
executor can treat plain Ether transfers and contract calls identically —
exactly how the paper folds non-contract transactions into scheduling.

The recipient credit of a value transfer is emitted as a
:class:`StorageIncrement` — a blind ``+= value`` that commutes with other
credits.  Executors without commutativity support lower it to a
read-modify-write.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Callable, Generator, Optional

from ..core.types import Address, StateKey
from ..evm.environment import BlockContext, HaltReason, Message
from ..evm.events import StorageRead, StorageWrite, VMEvent
from ..evm.opcodes import intrinsic_gas
from ..evm.vm import EVM, WatchMap


@dataclass(frozen=True)
class StorageIncrement(VMEvent):
    """Blind commutative increment: ``key += delta`` without observing the
    current value.  The driver ``send``s None."""

    key: StateKey
    delta: int


class TxStatus(Enum):
    SUCCESS = "success"
    REVERTED = "reverted"
    OUT_OF_GAS = "out_of_gas"
    ASSERT_FAIL = "assert_fail"
    INVALID = "invalid"
    INSUFFICIENT_FUNDS = "insufficient_funds"

    @property
    def is_success(self) -> bool:
        return self is TxStatus.SUCCESS


_HALT_TO_STATUS = {
    HaltReason.SUCCESS: TxStatus.SUCCESS,
    HaltReason.REVERT: TxStatus.REVERTED,
    HaltReason.OUT_OF_GAS: TxStatus.OUT_OF_GAS,
    HaltReason.ASSERT_FAIL: TxStatus.ASSERT_FAIL,
    HaltReason.INVALID: TxStatus.INVALID,
    HaltReason.STACK_ERROR: TxStatus.INVALID,
    HaltReason.BAD_JUMP: TxStatus.INVALID,
}


@dataclass
class TxResult:
    """Final outcome of one transaction attempt."""

    status: TxStatus
    gas_used: int            # transaction-total, intrinsic gas included
    return_data: bytes = b""
    error: Optional[str] = None

    @property
    def success(self) -> bool:
        return self.status.is_success


TxProgram = Generator[VMEvent, object, TxResult]


def transaction_program(
    tx,
    code_resolver: Callable[[Address], bytes],
    block: Optional[BlockContext] = None,
    watchpoints: Optional[WatchMap] = None,
) -> TxProgram:
    """Build the full event stream of one transaction.

    Yields events whose ``gas_used`` is cumulative over the *transaction*
    (intrinsic gas first, then execution gas on top).  Returns a
    :class:`TxResult`.  The driver must discard buffered writes when the
    result is unsuccessful.
    """
    base = intrinsic_gas(tx.data)
    if base > tx.gas_limit:
        return TxResult(TxStatus.OUT_OF_GAS, tx.gas_limit, error="intrinsic gas exceeds limit")

    if tx.value > 0:
        # The funding check reads the sender balance only when value moves:
        # with value == 0 the branch cannot fire (balances are unsigned), so
        # emitting the read would create a state access no analysis predicts
        # and no outcome depends on.
        sender_key = StateKey.balance(tx.sender)
        sender_balance = yield StorageRead(0, sender_key)
        sender_balance = int(sender_balance)  # type: ignore[arg-type]
        if sender_balance < tx.value:
            return TxResult(TxStatus.INSUFFICIENT_FUNDS, base, error="insufficient balance")
        yield StorageWrite(base, sender_key, sender_balance - tx.value)
        yield StorageIncrement(base, StateKey.balance(tx.to), tx.value)

    code = code_resolver(tx.to)
    if not code:
        return TxResult(TxStatus.SUCCESS, base)

    evm = EVM(code_resolver, block=block, watchpoints=watchpoints)
    message = Message(
        sender=tx.sender,
        to=tx.to,
        value=tx.value,
        data=tx.data,
        gas=tx.gas_limit - base,
    )
    gen = evm.run(message)
    to_send: object = None
    while True:
        try:
            event = gen.send(to_send)
        except StopIteration as stop:
            result = stop.value
            break
        to_send = yield replace(event, gas_used=event.gas_used + base)
    return TxResult(
        _HALT_TO_STATUS[result.status],
        base + result.gas_used,
        result.return_data,
        result.error,
    )
