"""The DMVCC executor: deterministic multi-version concurrency control.

Implements the paper's Algorithms 1–4 over the discrete-event simulator:

* **schedule generation** (Alg. 1) — access sequences are seeded from the
  C-SAGs; a transaction joins ``Q_ready`` once every state item it reads is
  resolvable; ready transactions bind to simulated threads FIFO;
* **early-write visibility** (Alg. 2) — when execution crosses a release
  point with enough remaining gas, buffered writes whose keys have no
  further predicted writes are published into the access sequences, waking
  (or aborting) dependants *mid-transaction*;
* **write versioning** (Alg. 3) — every write is its own version; writes
  the analysis missed are inserted on the fly, aborting any reader that
  already consumed an older version;
* **abort** (Alg. 4) — aborted transactions release locks, retract their
  published versions (cascading), and re-enter the scheduler.

Feature flags ``enable_early_write`` and ``enable_commutative`` support the
paper's design-choice ablations; with both off, DMVCC degenerates to pure
write-versioned scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.csag import AccessType, CSAG, CSAGBuilder, CSAGCache
from ..analysis.sag import PSAGCache
from ..core.errors import SchedulingError
from ..core.types import Address, StateKey
from ..core.words import WORD_MOD
from ..evm.environment import BlockContext
from ..evm.events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from ..scheduling.access_sequence import AccessSequenceSet
from ..scheduling.locks import LockTable, ReadyQueue
from ..sim.clock import EventLoop
from ..sim.metrics import TxMetrics
from ..sim.threadpool import ThreadPool
from ..state.merge import MergeOp
from ..state.statedb import Snapshot
from .base import BlockExecution, Executor, Receipt
from .txprogram import (
    ExecutionMeter,
    StorageIncrement,
    TxResult,
    resume_transaction_program,
    transaction_program,
)


class _Status(Enum):
    WAITING = "waiting"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"


@dataclass
class _ReadRecord:
    """One resolved read of the current attempt, in program order.

    The log is what makes aborts cheap: revalidation re-resolves every
    record against the live access sequences, and resume finds the first
    record whose resolution changed.  ``base`` is the value the resolution
    produced (before any own-delta fold), which is exactly what a
    re-resolution must reproduce for the read to still be valid.

    Blind increment reads are logged for completeness but are always valid:
    the static increment-site analysis guarantees their value feeds only the
    paired ``+=`` (the driver stores the delta, not the absolute), so no
    later version change can invalidate them.

    Merge-declared reads (``merge_spec`` set) sit in between: the value
    feeds only the declared bounds guard plus the declared operation, so a
    base drift is tolerable as long as the guard's *verdict* is unchanged.
    ``merge_operand`` is the operand of the operation the read fed (filled
    when the paired write arrives; None means the guard failed or never
    ran, degrading the record to strict value equality), and ``merge_own``
    is the transaction's own pending delta at read time, needed to rebuild
    the observed value from a re-resolved base.
    """

    key: StateKey
    base: int
    version_from: int
    registered: bool
    blind: bool = False
    from_own_delta: bool = False
    consumed_as_delta: bool = False
    speculative: bool = False
    merge_spec: Optional[object] = None
    merge_operand: Optional[int] = None
    merge_own: int = 0
    # Read-log length when the operand was attached: operands attached by
    # writes past a resume checkpoint are cleared on resume (the write
    # re-executes and re-derives its delta).
    merge_attached_at: int = 0
    # An abort was skipped while this record had no operand yet (the
    # transaction was still running): the paired write and the completion
    # hook must re-validate it against the live view.
    merge_recheck: bool = False


@dataclass
class _AttemptCheckpoint:
    """Driver-side image of one VM checkpoint.

    ``read_index`` counts the read-log records already applied; resuming
    from here replays nothing before record ``read_index`` and re-answers
    that read first.  The dict copies freeze the attempt's buffered-write /
    read bookkeeping at the same boundary.  ``gas_offset`` is the
    transaction-cumulative gas at the suspended read, used to backdate the
    resumed attempt's start time so simulated completion lands exactly
    where a restart-free execution would.
    """

    read_index: int
    vm: object  # repro.evm.vm.VMCheckpoint
    gas_offset: int
    w_abs: Dict[StateKey, int]
    w_delta: Dict[StateKey, int]
    pending_blind: Dict[StateKey, Tuple[int, int, int]]
    registered_reads: Dict[StateKey, int]
    frame_stack: List[Tuple[Dict, Dict, Dict]]
    published: Dict[StateKey, Tuple[str, int]]
    release_mode: bool
    speculative_reads: int


@dataclass
class _ResumePlan:
    """A pending resume decision: the checkpoint to restart from and the
    re-validated versions of the kept read prefix."""

    checkpoint: _AttemptCheckpoint
    first_invalid: int
    prefix_versions: List[int] = field(default_factory=list)


@dataclass
class _TxState:
    """Mutable per-transaction execution state."""

    index: int
    tx: object
    csag: CSAG
    needed_keys: Set[StateKey]
    status: _Status = _Status.WAITING
    attempts: int = 0
    result: Optional[TxResult] = None
    # Running-attempt state:
    generator: Optional[object] = None
    thread: Optional[int] = None
    start_time: float = 0.0
    pending_entry: Optional[object] = None
    w_abs: Dict[StateKey, int] = field(default_factory=dict)
    w_delta: Dict[StateKey, int] = field(default_factory=dict)
    pending_blind: Dict[StateKey, Tuple[int, int, int]] = field(default_factory=dict)
    registered_reads: Dict[StateKey, int] = field(default_factory=dict)
    published: Dict[StateKey, Tuple[str, int]] = field(default_factory=dict)
    frame_stack: List[Tuple[Dict, Dict, Dict]] = field(default_factory=list)
    speculative_reads: int = 0
    release_mode: bool = False  # past a release point with enough gas
    # Incremental re-execution state:
    read_log: List[_ReadRecord] = field(default_factory=list)
    checkpoints: List[_AttemptCheckpoint] = field(default_factory=list)
    checkpoint_stride: int = 1
    meter: Optional[ExecutionMeter] = None
    resume_from: Optional[_ResumePlan] = None
    aborting: bool = False        # guards re-entrant abort cascades
    abort_reentered: bool = False
    # Set by the merge attach-time recheck when a deferred guard's verdict
    # flipped: _process aborts the transaction once the generator suspends.
    merge_self_abort: Optional[StateKey] = None

    def reset_attempt(self) -> None:
        self.release_mode = False
        self.generator = None
        self.thread = None
        self.pending_entry = None
        self.w_abs = {}
        self.w_delta = {}
        self.pending_blind = {}
        self.registered_reads = {}
        self.published = {}
        self.frame_stack = []
        self.read_log = []
        self.checkpoints = []
        self.checkpoint_stride = 1
        self.meter = None
        self.resume_from = None
        self.merge_self_abort = None


class DMVCCExecutor(Executor):
    """Deterministic multi-version concurrency control."""

    name = "dmvcc"

    def __init__(
        self,
        gas_time_scale: float = 1.0,
        enable_early_write: bool = True,
        enable_commutative: bool = True,
        psag_cache: Optional[PSAGCache] = None,
        enable_checkpoint_resume: bool = True,
        enable_revalidation: bool = True,
        checkpoint_limit: int = 8,
        csag_cache: Optional[CSAGCache] = None,
    ) -> None:
        super().__init__(gas_time_scale)
        self.enable_early_write = enable_early_write
        self.enable_commutative = enable_commutative
        self.enable_checkpoint_resume = enable_checkpoint_resume
        self.enable_revalidation = enable_revalidation
        self.checkpoint_limit = max(checkpoint_limit, 1)
        self._psag_cache = psag_cache if psag_cache is not None else PSAGCache()
        self._csag_cache = csag_cache if csag_cache is not None else CSAGCache()
        # Side channel for the sharded executor: the last block's declared
        # merge activity (guarded reads + intents), see _BlockRun.execute.
        self.last_merge_activity = None
        if not enable_early_write and not enable_commutative:
            self.name = "dmvcc-wv"  # write-versioning only
        elif not enable_early_write:
            self.name = "dmvcc-noEW"
        elif not enable_commutative:
            self.name = "dmvcc-noCW"

    def release_gas_check(self, csag: CSAG, event, static_bound: Optional[int]) -> bool:
        """Algorithm 2's release guard: may this transaction publish its
        buffered writes now, mid-execution?

        Publishing is only safe when the transaction is certain to reach a
        successful completion — a later out-of-gas would force a retraction
        cascade.  Two sources of certainty, in order of strength:

        * ``static_bound`` — the worst-case gas of any path from this
          release point to termination (``ReleasePoint.gas_bound``); when
          the analysis produced one, it is sound on its own: remaining gas
          at or above it rules out OOG on *every* path.
        * the C-SAG's predicted remaining gas — a heuristic for release
          points whose tail contains loops (unbounded worst case); correct
          whenever pre-execution predicted the path actually taken.

        Either way a transaction whose pre-execution already failed never
        releases: its writes would be retracted at completion regardless.

        Tests may override this (e.g. ``return True``) to inject the
        "skipped gas check" bug the serializability oracle must catch.
        """
        if not csag.predicted_success:
            return False
        if static_bound is not None:
            return event.gas_remaining >= static_bound
        predicted_remaining = max(csag.predicted_gas - event.gas_used, 0)
        return event.gas_remaining >= predicted_remaining

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
        csags: Optional[List[CSAG]] = None,
    ) -> BlockExecution:
        """Execute ``txs`` under the DMVCC protocol; see Executor.

        ``csags`` supplies pre-built analyses (the validator's pool path);
        when omitted they are refined here against ``snapshot``.
        """
        # Declared-merge interception lives in the simulator driver; with a
        # non-empty registry attached the real-substrate coordinator (which
        # knows nothing about merge specs) is bypassed for correctness.
        pool = None if self.merges else self._substrate_pool(threads)
        if pool is not None:
            from ..substrate.coordinator import run_dmvcc_real
            return run_dmvcc_real(self, pool, txs, snapshot, code_resolver,
                                  block, csags, threads=threads)
        run = _BlockRun(self, txs, snapshot, code_resolver, threads, block, csags)
        return run.execute()


class _BlockRun:
    """One block execution; all protocol state lives here."""

    def __init__(self, executor, txs, snapshot, code_resolver, threads, block, csags):
        self.ex = executor
        self.txs = txs
        self.snapshot = snapshot
        self.resolve_code = code_resolver
        self.block = block if block is not None else BlockContext()
        self.builder = CSAGBuilder(code_resolver, executor._psag_cache, self.block,
                                   executor._csag_cache)
        if csags is None:
            csags = [self.builder.build(tx, snapshot) for tx in txs]
        self.csags = csags
        self.obs = executor.obs
        self.loop = EventLoop()
        clock = lambda: self.loop.now  # noqa: E731 — shared simulated clock
        self.sequences = AccessSequenceSet(obs=self.obs, clock=clock)
        self.locks = LockTable(obs=self.obs, clock=clock)
        self.queue = ReadyQueue()
        self.pool = ThreadPool(threads, obs=self.obs)
        self.states: List[_TxState] = []
        self.per_tx = [TxMetrics(index=i) for i in range(len(txs))]
        # Every key a transaction has ever published to, across attempts:
        # needed at completion to skip-mark writes that a *re-execution's*
        # different path no longer performs (predictions alone cannot know
        # about on-the-fly inserted entries).
        self.ever_written: List[Set[StateKey]] = [set() for _ in txs]
        self.rescues = 0
        self._dispatch_scheduled = False
        self.recorder = executor.recorder
        # Declared-operation merge registry (None ≡ paper semantics).  The
        # noCW ablation disables it together with blind increments.
        merges = executor.merges if executor.enable_commutative else None
        self.merges = merges if merges else None
        self.merge_tolerated = 0
        # Per-contract static analysis lookups.
        self._blind_pcs: Dict[Address, FrozenSet[int]] = {}
        self._increment_map: Dict[Address, Dict[int, int]] = {}
        self._release_pcs: Dict[Address, FrozenSet[int]] = {}
        self._release_bounds: Dict[Address, Dict[int, Optional[int]]] = {}

    # ------------------------------------------------------------------
    # Setup: Algorithm 1, pre-execution part
    # ------------------------------------------------------------------

    def _declared(self, access_type: AccessType) -> AccessType:
        if access_type is AccessType.COMMUTATIVE and not self.ex.enable_commutative:
            return AccessType.READ_WRITE
        return access_type

    def _setup(self) -> None:
        for i, (tx, csag) in enumerate(zip(self.txs, self.csags)):
            needed: Set[StateKey] = set()
            per_key = dict(csag.per_key)
            if not csag.predicted_success and not csag.missing:
                # The pre-execution took the failure branch; if earlier
                # transactions flip the branch, the success path's accesses
                # would all be surprises.  Seed them conservatively (θ) from
                # the symbolically-resolved static sets instead.
                for key in csag.static_write_keys:
                    if key not in per_key:
                        per_key[key] = AccessType.READ_WRITE
                for key in csag.static_read_keys:
                    if key not in per_key:
                        per_key[key] = AccessType.READ
            for key, access_type in per_key.items():
                declared = self._declared(access_type)
                self.sequences.sequence(key).insert_predicted(i, declared)
                if declared in (AccessType.READ, AccessType.READ_WRITE):
                    if (self.merges is not None
                            and self.merges.lookup(key) is not None):
                        # Merge-declared keys never gate the start: their
                        # reads are answered from any available fold and
                        # validated by guard outcome, not exact value.
                        continue
                    needed.add(key)
            state = _TxState(index=i, tx=tx, csag=csag, needed_keys=needed)
            self.states.append(state)
            self.locks.register(i, needed)
        # Initial grants: items readable straight from the snapshot.
        for state in self.states:
            if self.locks.refresh(state.index, self.sequences):
                state.status = _Status.READY
                self.queue.push(state.index)
                if self.obs is not None:
                    self.obs.tx_ready(0.0, state.index)
            elif self.obs is not None:
                keys, blockers = self._wait_info(state.index)
                self.obs.version_wait_begin(0.0, state.index,
                                            keys=keys, blockers=blockers)

    def _wait_info(self, index: int):
        """The unresolvable keys (and their unfinished writers) stalling
        ``index`` — the payload of a VersionWaitBegin event."""
        missing = sorted(self.locks.state(index).missing())
        blockers: Set[int] = set()
        for key in missing:
            seq = self.sequences.get(key)
            if seq is not None:
                resolution = seq.resolve_read(index)
                if not resolution.ready:
                    blockers.update(resolution.blockers)
        return tuple(missing), tuple(sorted(blockers))

    def _contract_info(self, address: Address):
        if address not in self._blind_pcs:
            code = self.resolve_code(address)
            if code:
                psag = self.builder.psag_for(code)
                increments = dict(psag.analysis.increment_sites)
                self._increment_map[address] = increments
                self._blind_pcs[address] = frozenset(increments.values())
                self._release_pcs[address] = frozenset(psag.release_pcs())
                self._release_bounds[address] = {
                    rp.pc: rp.gas_bound for rp in psag.release.release_points
                }
            else:
                self._increment_map[address] = {}
                self._blind_pcs[address] = frozenset()
                self._release_pcs[address] = frozenset()
                self._release_bounds[address] = {}
        return (
            self._blind_pcs[address],
            self._increment_map[address],
            self._release_pcs[address],
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def execute(self) -> BlockExecution:
        wall_start = perf_counter()
        if self.obs is not None:
            self.obs.block_start(0.0, scheduler=self.ex.name,
                                 threads=self.pool.size,
                                 tx_count=len(self.txs))
        self._setup()
        self._schedule_dispatch()
        makespan = self.loop.run()
        # Rescue pass: recover from any lost wake-up (counted; tests pin 0).
        guard = 0
        while not all(s.status is _Status.DONE for s in self.states):
            guard += 1
            if guard > 3 * len(self.states) + 10:
                stuck = [s.index for s in self.states if s.status is not _Status.DONE]
                raise SchedulingError(f"DMVCC deadlock; stuck transactions: {stuck}")
            progressed = False
            for state in self.states:
                if state.status is _Status.WAITING:
                    self.rescues += 1
                    state.status = _Status.READY
                    self.queue.push(state.index)
                    if self.obs is not None:
                        self.obs.version_wait_end(self.loop.now, state.index)
                        self.obs.tx_ready(self.loop.now, state.index,
                                          attempt=state.attempts + 1)
                    progressed = True
            if not progressed:
                stuck = [s.index for s in self.states if s.status is not _Status.DONE]
                raise SchedulingError(f"DMVCC deadlock; stuck transactions: {stuck}")
            self._schedule_dispatch()
            makespan = max(makespan, self.loop.run())

        if self.obs is not None:
            self.obs.block_end(makespan, makespan=makespan)

        receipts = [
            Receipt(index=s.index, result=s.result, attempts=max(s.attempts, 1))
            for s in self.states
        ]
        writes = self.sequences.final_writes(self.snapshot.get)
        metrics = self.ex._base_metrics(self.pool.size, receipts)
        metrics.makespan = makespan
        metrics.utilisation = self.pool.utilisation(makespan)
        metrics.per_tx = self.per_tx
        metrics.rescues = self.rescues
        metrics.replayed_instructions = sum(t.replayed_instructions for t in self.per_tx)
        metrics.instructions_skipped = sum(t.instructions_skipped for t in self.per_tx)
        metrics.resumes = sum(t.resumes for t in self.per_tx)
        metrics.revalidation_hits = sum(t.revalidation_hits for t in self.per_tx)
        metrics.wall_time = perf_counter() - wall_start
        self.ex.last_merge_activity = self._merge_activity()
        if self.merges is not None:
            metrics.merge_tolerated = self.merge_tolerated
            metrics.merge_intents = len(self.ex.last_merge_activity["intents"])
        return BlockExecution(writes=writes, receipts=receipts, metrics=metrics)

    def _merge_activity(self):
        """Side channel for the sharded executor's seal validation.

        ``reads`` lists every registered read of a declared key as
        ``(index, key, observed, own_delta, operand, outcome)`` — operand
        and outcome are None for records demanding strict value equality —
        and ``intents`` lists each successful transaction's net delta per
        declared key.  The cross-shard reducer replays the global-order
        fold through these to prove (or refute) that sharded guard verdicts
        match the serial reference.
        """
        if self.merges is None:
            return None
        reads = []
        intents = []
        for s in self.states:
            for rec in s.read_log:
                if not rec.registered or self.merges.lookup(rec.key) is None:
                    continue
                observed = (rec.base + rec.merge_own) % WORD_MOD
                if rec.merge_spec is not None and rec.merge_operand is not None:
                    outcome = rec.merge_spec.outcome(observed, rec.merge_operand)
                    reads.append((s.index, rec.key, observed, rec.merge_own,
                                  rec.merge_operand, outcome))
                else:
                    reads.append((s.index, rec.key, observed, rec.merge_own,
                                  None, None))
            if s.result is not None and s.result.success:
                for key, delta in s.w_delta.items():
                    if self.merges.lookup(key) is not None:
                        intents.append((s.index, key, delta))
        return {"reads": reads, "intents": intents}

    # ------------------------------------------------------------------
    # Dispatch / stepping
    # ------------------------------------------------------------------

    def _schedule_dispatch(self) -> None:
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.loop.schedule_now(self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        while self.pool.idle_count:
            index = self.queue.pop()
            if index is None:
                return
            self._start(self.states[index])

    def _watchpoints_for(self, state: _TxState):
        code = self.resolve_code(state.tx.to)
        if code and self.ex.enable_early_write:
            _blind, _incs, release_pcs = self._contract_info(state.tx.to)
            if release_pcs:
                return {state.tx.to: release_pcs}
        return None

    def _start(self, state: _TxState) -> None:
        now = self.loop.now
        if state.resume_from is not None and self._begin_resume(state, now):
            return
        state.reset_attempt()
        state.status = _Status.RUNNING
        state.attempts += 1
        state.thread = self.pool.try_occupy(now, label=f"T{state.index}")
        state.start_time = now
        state.meter = ExecutionMeter()
        state.generator = transaction_program(
            state.tx, self.resolve_code, block=self.block,
            watchpoints=self._watchpoints_for(state), meter=state.meter,
        )
        if state.attempts == 1:
            self.per_tx[state.index].start_time = now
        if self.obs is not None:
            if state.attempts > 1:
                self.obs.tx_reexecute(now, state.index, attempt=state.attempts)
            self.obs.tx_start(now, state.index, attempt=state.attempts,
                              thread=state.thread if state.thread is not None else -1)
        self._advance(state, None)

    def _begin_resume(self, state: _TxState, now: float) -> bool:
        """Restart an aborted attempt from its armed checkpoint.  Returns
        False (after cleaning up) when the kept prefix went stale while the
        transaction was parked, sending the caller down the fresh path."""
        plan = state.resume_from
        state.resume_from = None
        ck = plan.checkpoint
        first_invalid, versions = self._validate_reads(state, ck.read_index)
        if first_invalid is not None:
            self._retract_published(state)
            for key in state.registered_reads:
                seq = self.sequences.get(key)
                if seq is not None:
                    entry = seq.entry(state.index)
                    if entry is not None:
                        entry.reset_read()
            state.reset_attempt()
            return False
        prefix = state.read_log[: ck.read_index]
        self._rerecord_reads(state, prefix, versions)
        state.status = _Status.RUNNING
        state.attempts += 1
        state.thread = self.pool.try_occupy(now, label=f"T{state.index}")
        # Backdate the start so the resumed attempt's events land exactly
        # where a restart-free execution's would (gas is simulated time).
        state.start_time = now - ck.gas_offset * self.ex.gas_time_scale
        state.meter = ExecutionMeter()
        state.generator = resume_transaction_program(
            state.tx, ck.vm, self.resolve_code, block=self.block,
            watchpoints=self._watchpoints_for(state), meter=state.meter,
        )
        per = self.per_tx[state.index]
        per.resumes += 1
        per.instructions_skipped += ck.vm.steps
        if self.obs is not None:
            self.obs.tx_reexecute(now, state.index, attempt=state.attempts)
            self.obs.tx_resume(now, state.index, attempt=state.attempts,
                               read_index=ck.read_index,
                               instructions_skipped=ck.vm.steps)
            self.obs.tx_start(now, state.index, attempt=state.attempts,
                              thread=state.thread if state.thread is not None else -1)
        self._reemit_reads(state, prefix, versions)
        self._advance(state, None)
        return True

    def _advance(self, state: _TxState, to_send: object) -> None:
        """Pull the next event from the generator and schedule its effect at
        its gas-derived timestamp."""
        try:
            event = state.generator.send(to_send)
        except StopIteration as stop:
            result: TxResult = stop.value
            finish = state.start_time + result.gas_used * self.ex.gas_time_scale
            state.pending_entry = self.loop.schedule(
                finish, lambda: self._complete(state, result)
            )
            return
        when = state.start_time + event.gas_used * self.ex.gas_time_scale
        state.pending_entry = self.loop.schedule(
            when, lambda: self._process(state, event)
        )

    def _process(self, state: _TxState, event) -> None:
        state.pending_entry = None
        to_send: object = None
        if isinstance(event, StorageRead):
            to_send = self._on_read(state, event)
        elif isinstance(event, StorageWrite):
            self._on_write(state, event)
            self._maybe_publish_now(state, event.key, event.gas_used)
        elif isinstance(event, StorageIncrement):
            self._on_increment(state, event)
            self._maybe_publish_now(state, event.key, event.gas_used)
        elif isinstance(event, Watchpoint):
            self._on_release_point(state, event)
        elif isinstance(event, FrameCheckpoint):
            state.frame_stack.append(
                (dict(state.w_abs), dict(state.w_delta), dict(state.registered_reads))
            )
            to_send = len(state.frame_stack)
        elif isinstance(event, FrameCommit):
            state.frame_stack.pop()
        elif isinstance(event, FrameRevert):
            w_abs, w_delta, reads = state.frame_stack.pop()
            if self.merges is not None:
                # A revert throws away operations the merge records already
                # absorbed operands for; those guards' verdicts no longer
                # describe the surviving behaviour, so degrade every record
                # of a rolled-back declared key to strict value equality.
                for key in set(state.w_delta) | set(w_delta) | \
                        set(state.registered_reads) | set(reads):
                    if (state.w_delta.get(key) == w_delta.get(key)
                            and state.registered_reads.get(key) == reads.get(key)):
                        continue
                    if self.merges.lookup(key) is None:
                        continue
                    for rec in state.read_log:
                        if rec.key == key:
                            rec.merge_spec = None
            state.w_abs, state.w_delta = w_abs, w_delta
            state.registered_reads = reads
        elif isinstance(event, EmittedLog):
            pass
        else:  # pragma: no cover
            raise SchedulingError(f"unexpected event {event!r}")
        if state.merge_self_abort is not None and state.status is _Status.RUNNING:
            key = state.merge_self_abort
            state.merge_self_abort = None
            self._abort(state.index, key)
        # The event handler may have aborted this very transaction through a
        # cascade; never advance a dead generator.
        if state.status is _Status.RUNNING and state.generator is not None:
            self._advance(state, to_send)

    # ------------------------------------------------------------------
    # Reads (Execute_Read)
    # ------------------------------------------------------------------

    def _on_read(self, state: _TxState, event: StorageRead) -> int:
        key = event.key
        if key in state.w_abs:
            return state.w_abs[key]
        blind_pcs, _incs, _rel = self._contract_info(state.tx.to)
        seq = self.sequences.get(key)
        if (
            self.ex.enable_commutative
            and event.pc in blind_pcs
            and key not in state.registered_reads
        ):
            # Blind increment read: the value feeds only the paired +=, so
            # it needs no lock, registers no dependency, and cannot abort.
            version = -1
            from_own = False
            if key in state.w_delta:
                answer = 0
                from_own = True
            elif seq is not None:
                res = seq.best_available_read(state.index)
                answer = res.resolve_with_snapshot(self.snapshot.get(key))
                version = res.version_from
            else:
                answer = self.snapshot.get(key)
            state.pending_blind[key] = (answer, event.pc, len(state.read_log))
            state.read_log.append(_ReadRecord(
                key=key, base=answer, version_from=version,
                registered=False, blind=True, from_own_delta=from_own,
            ))
            if self.recorder is not None:
                self.recorder.read(state.index, key, version, answer,
                                   attempt=state.attempts, blind=True)
            return answer

        if self.merges is not None:
            spec = self.merges.lookup(key)
            if spec is not None and spec.op.delta_encodable:
                return self._on_merge_read(state, event, seq, spec)

        # Registered read: resolve the proper version (blocking resolution
        # degraded to best-available for accesses the analysis missed).
        if seq is None:
            seq = self.sequences.sequence(key)
        if self.ex.enable_checkpoint_resume:
            self._maybe_checkpoint(state, event)
        speculative = False
        resolution = seq.resolve_read(state.index)
        if not resolution.ready:
            resolution = seq.best_available_read(state.index)
            state.speculative_reads += 1
            speculative = True
        base = resolution.resolve_with_snapshot(self.snapshot.get(key))
        if key in state.w_delta:
            # Own pending increments fold in; the write becomes absolute.
            value = (base + state.w_delta.pop(key)) % WORD_MOD
            state.w_abs[key] = value
        else:
            value = base
        seq.record_read(state.index, resolution.version_from)
        state.registered_reads[key] = value
        state.read_log.append(_ReadRecord(
            key=key, base=base, version_from=resolution.version_from,
            registered=True, speculative=speculative,
        ))
        if self.obs is not None:
            writer = resolution.version_from
            if writer >= 0 and self.states[writer].status is not _Status.DONE:
                self.obs.early_read(self.loop.now, state.index, key, writer)
        if self.recorder is not None:
            self._record_read(state, key, resolution, base, speculative)
        return value

    def _on_merge_read(self, state: _TxState, event: StorageRead, seq, spec) -> int:
        """Read of a declared ADD/SUB merge key: never blocks.

        The declaration promises the value feeds only the declared guard and
        operation, so the read is answered from the best fold available right
        now and validated later by guard *outcome* instead of exact value
        (see _validate_reads / _merge_skip_abort).  The read is still
        registered in the access sequence so on-the-fly version insertions
        find it and trigger the outcome recheck.
        """
        key = event.key
        if seq is None:
            seq = self.sequences.sequence(key)
        if self.ex.enable_checkpoint_resume:
            self._maybe_checkpoint(state, event)
        speculative = False
        resolution = seq.resolve_read(state.index)
        if not resolution.ready:
            resolution = seq.best_available_read(state.index)
            state.speculative_reads += 1
            speculative = True
        base = resolution.resolve_with_snapshot(self.snapshot.get(key))
        own = state.w_delta.get(key, 0)
        value = (base + own) % WORD_MOD
        seq.record_read(state.index, resolution.version_from)
        state.registered_reads[key] = value
        state.read_log.append(_ReadRecord(
            key=key, base=base, version_from=resolution.version_from,
            registered=True, speculative=speculative,
            merge_spec=spec, merge_own=own,
        ))
        if self.recorder is not None:
            self._record_read(state, key, resolution, base, speculative)
        return value

    def _record_read(self, state, key, resolution, base, speculative) -> None:
        writer = resolution.version_from
        early = writer >= 0 and self.states[writer].status is not _Status.DONE
        self.recorder.read(state.index, key, writer, base,
                           attempt=state.attempts, early=early,
                           speculative=speculative)

    def _maybe_checkpoint(self, state: _TxState, event: StorageRead) -> None:
        """Capture a resume point at this read boundary, if due.

        Checkpoints are taken every ``checkpoint_stride`` registered reads;
        when the retained count would exceed ``checkpoint_limit`` the list is
        thinned to every other entry and the stride doubles, so memory stays
        bounded while coverage stays geometric over the attempt's lifetime.
        """
        if state.meter is None:
            return
        read_index = len(state.read_log)
        if read_index % state.checkpoint_stride != 0:
            return
        vm_ck = state.meter.checkpoint()
        if vm_ck is None:
            return  # suspended outside the VM (e.g. the funding prologue)
        state.checkpoints.append(_AttemptCheckpoint(
            read_index=read_index,
            vm=vm_ck,
            gas_offset=event.gas_used,
            w_abs=dict(state.w_abs),
            w_delta=dict(state.w_delta),
            pending_blind=dict(state.pending_blind),
            registered_reads=dict(state.registered_reads),
            frame_stack=[(dict(a), dict(d), dict(r))
                         for a, d, r in state.frame_stack],
            published=dict(state.published),
            release_mode=state.release_mode,
            speculative_reads=state.speculative_reads,
        ))
        if len(state.checkpoints) > self.ex.checkpoint_limit:
            del state.checkpoints[1::2]
            state.checkpoint_stride *= 2
        if self.obs is not None:
            self.obs.checkpoint_taken(self.loop.now, state.index,
                                      read_index=read_index,
                                      retained=len(state.checkpoints))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _on_write(self, state: _TxState, event: StorageWrite) -> None:
        key = event.key
        pending = state.pending_blind.pop(key, None)
        if pending is not None and self.ex.enable_commutative and key not in state.w_abs:
            answer, read_pc, log_index = pending
            _blind, increments, _rel = self._contract_info(state.tx.to)
            if increments.get(event.pc) == read_pc:
                delta = (event.value - answer) % WORD_MOD
                state.w_delta[key] = (state.w_delta.get(key, 0) + delta) % WORD_MOD
                if 0 <= log_index < len(state.read_log):
                    state.read_log[log_index].consumed_as_delta = True
                if self.recorder is not None:
                    self.recorder.write(state.index, key, delta=delta,
                                        attempt=state.attempts)
                return
        if self.merges is not None and key not in state.w_abs:
            spec = self.merges.lookup(key)
            if (spec is not None and spec.op.delta_encodable
                    and self._merge_write(state, key, spec, event.value)):
                return
        if self.merges is not None and self.merges.lookup(key) is not None:
            # A declared key degrading to an absolute write (no preceding
            # merge read, repeated op per read, …): its published value now
            # depends on the exact bases read, so every merge record of the
            # key loses outcome tolerance and reverts to strict equality.
            for rec in state.read_log:
                if rec.key == key:
                    rec.merge_spec = None
        state.w_abs[key] = event.value
        state.w_delta.pop(key, None)
        if self.recorder is not None:
            self.recorder.write(state.index, key, value=event.value,
                                attempt=state.attempts)

    def _merge_write(self, state: _TxState, key: StateKey, spec, value: int) -> bool:
        """Convert an absolute write of a declared ADD/SUB key into a delta
        intent against the value the program believes the key holds.  Returns
        False (caller falls back to an absolute write) when there is no
        believed value or the last merge read already fed an operation."""
        believed = state.registered_reads.get(key)
        if believed is None:
            return False
        # The operand covers the whole guarded-op instance: every merge
        # read of the key since the last write fed either the guard or the
        # operation itself, and under the declaration both share the
        # operand.  An empty group means a write without a fresh read
        # (a second op reusing one read) — not the declared shape.
        group: List[_ReadRecord] = []
        for rec in reversed(state.read_log):
            if rec.key != key or rec.merge_spec is None:
                continue
            if rec.merge_operand is not None:
                break
            group.append(rec)
        if not group:
            return False
        delta = (value - believed) % WORD_MOD
        operand = (-delta) % WORD_MOD if spec.op is MergeOp.SUB else delta
        recheck = False
        for rec in group:
            rec.merge_operand = operand
            rec.merge_attached_at = len(state.read_log)
            recheck = recheck or rec.merge_recheck
        state.w_delta[key] = (state.w_delta.get(key, 0) + delta) % WORD_MOD
        state.registered_reads[key] = value
        if recheck:
            # An abort was deferred while the operand was unknown; now that
            # the guard's operand exists, settle the verdict against the
            # live view.  An unresolvable view stays flagged for the
            # completion hook; a flipped verdict aborts once the generator
            # suspends (_process checks merge_self_abort).
            seq = self.sequences.get(key)
            view = (seq.current_read_view(state.index, self.snapshot.get(key))
                    if seq is not None else None)
            if view is not None:
                for rec in group:
                    if not rec.merge_recheck:
                        continue
                    if view[0] == rec.base or self._merge_outcome_stable(rec, view[0]):
                        rec.merge_recheck = False
                    else:
                        state.merge_self_abort = key
                        break
        if self.recorder is not None:
            self.recorder.write(state.index, key, delta=delta,
                                attempt=state.attempts)
        return True

    def _on_increment(self, state: _TxState, event: StorageIncrement) -> None:
        key = event.key
        if self.recorder is not None:
            self.recorder.write(state.index, key, delta=event.delta,
                                attempt=state.attempts)
        if key in state.w_abs:
            state.w_abs[key] = (state.w_abs[key] + event.delta) % WORD_MOD
        elif self.ex.enable_commutative:
            state.w_delta[key] = (state.w_delta.get(key, 0) + event.delta) % WORD_MOD
        else:
            seq = self.sequences.sequence(key)
            speculative = False
            resolution = seq.resolve_read(state.index)
            if not resolution.ready:
                resolution = seq.best_available_read(state.index)
                state.speculative_reads += 1
                speculative = True
            base = resolution.resolve_with_snapshot(self.snapshot.get(key))
            seq.record_read(state.index, resolution.version_from)
            state.registered_reads[key] = base
            state.read_log.append(_ReadRecord(
                key=key, base=base, version_from=resolution.version_from,
                registered=True, speculative=speculative,
            ))
            state.w_abs[key] = (base + event.delta) % WORD_MOD
            if self.recorder is not None:
                self._record_read(state, key, resolution, base, speculative)

    # ------------------------------------------------------------------
    # Early write visibility (Algorithm 2)
    # ------------------------------------------------------------------

    def _on_release_point(self, state: _TxState, event: Watchpoint) -> None:
        if not self.ex.enable_early_write:
            return
        self._contract_info(state.tx.to)  # ensure bounds cache is populated
        bound = self._release_bounds[state.tx.to].get(event.pc)
        released = self.ex.release_gas_check(state.csag, event, bound)
        if self.obs is not None:
            self.obs.release_point(self.loop.now, state.index, event.pc,
                                   released, gas_remaining=event.gas_remaining)
        if not released:
            return  # might still fail past this point: do not release
        # From here on every buffered or future write whose key sees no
        # further predicted write is published as soon as it exists
        # (Algorithm 1 line 15 checks AfterReleasePoint after every op).
        state.release_mode = True
        self._flush_released(state, event.gas_used)

    def _flush_released(self, state: _TxState, gas_now: int) -> None:
        future_writes = {
            access.key
            for access in state.csag.accesses
            if access.kind == "write" and access.gas_offset > gas_now
        }
        for key, value in list(state.w_abs.items()):
            if key in future_writes:
                continue
            if state.published.get(key) != ("abs", value):
                self._publish(state, key, "abs", value)
        for key, delta in list(state.w_delta.items()):
            if key in future_writes:
                continue
            if state.published.get(key) != ("delta", delta):
                self._publish(state, key, "delta", delta)

    def _maybe_publish_now(self, state: _TxState, key: StateKey, gas_now: int) -> None:
        """Publish one just-performed write immediately when running past a
        release point and no later write to the key is predicted."""
        if not state.release_mode:
            return
        for access in state.csag.accesses:
            if access.kind == "write" and access.key == key and access.gas_offset > gas_now:
                return
        if key in state.w_abs:
            if state.published.get(key) != ("abs", state.w_abs[key]):
                self._publish(state, key, "abs", state.w_abs[key])
        elif key in state.w_delta:
            if state.published.get(key) != ("delta", state.w_delta[key]):
                self._publish(state, key, "delta", state.w_delta[key])

    def _publish(self, state: _TxState, key: StateKey, kind: str, value: int) -> None:
        seq = self.sequences.sequence(key)
        if self.recorder is not None:
            # _complete flips status to DONE before publishing leftovers, so
            # RUNNING here means mid-transaction (release-point) visibility.
            self.recorder.publish(state.index, key, kind, value,
                                  early=state.status is _Status.RUNNING)
        if kind == "abs":
            allowed, aborted = seq.version_write(state.index, value=value)
        else:
            allowed, aborted = seq.version_write(state.index, delta=value)
        state.published[key] = (kind, value)
        self.ever_written[state.index].add(key)
        self._handle_wake_and_abort(key, allowed, aborted, writer=state.index)

    def _handle_wake_and_abort(
        self, key: StateKey, allowed: List[int], aborted: List[int],
        writer: int = -1,
    ) -> None:
        for victim in aborted:
            if self._merge_skip_abort(victim, key):
                continue
            self._abort(victim, key, writer=writer)
        seq = self.sequences.sequence(key)
        for index in sorted(set(allowed) | set(aborted)):
            target = self.states[index]
            if target.status in (_Status.WAITING,):
                if seq.resolve_read(index).ready:
                    became_ready = self.locks.grant(index, key)
                    if became_ready or self.locks.is_ready(index):
                        if target.status is _Status.WAITING:
                            target.status = _Status.READY
                            self.queue.push(index)
                            if self.obs is not None:
                                now = self.loop.now
                                self.obs.version_wait_end(
                                    now, index, key=key, granted_by=writer)
                                self.obs.tx_ready(
                                    now, index, attempt=target.attempts + 1)
                            self._schedule_dispatch()
            else:
                self.locks.grant(index, key)

    def _merge_deferred_invalid(self, state: _TxState) -> Optional[StateKey]:
        """Settle any merge records whose abort was deferred while their
        operand was unknown; returns the first key that fails (outcome drift
        with an operand, strict drift without, or a still-unresolvable
        view) or None when the attempt may commit."""
        for rec in state.read_log:
            if not rec.merge_recheck:
                continue
            rec.merge_recheck = False
            seq = self.sequences.get(rec.key)
            view = (seq.current_read_view(state.index, self.snapshot.get(rec.key))
                    if seq is not None else None)
            if view is None:
                return rec.key
            if view[0] == rec.base:
                continue
            if not self._merge_outcome_stable(rec, view[0]):
                return rec.key
        return None

    def _merge_skip_abort(self, victim: int, key: StateKey) -> bool:
        """Outcome-stable abort tolerance (the merge algebra's payoff).

        When a late-arriving version of a declared merge key would abort a
        reader, re-evaluate every guard that reader ran on the key against
        the drifted base: if all verdicts are unchanged the reader's
        behaviour is byte-identical (the value feeds nothing else under the
        declaration), so the abort is skipped outright — no re-execution,
        no attempt bump.  Any unfinished earlier writer (view is None) or
        operand-less record falls back to the normal abort path.
        """
        if self.merges is None:
            return False
        spec = self.merges.lookup(key)
        if spec is None or not spec.op.delta_encodable:
            return False
        state = self.states[victim]
        records = [r for r in state.read_log if r.key == key and r.registered]
        if not records:
            return False
        seq = self.sequences.get(key)
        if seq is None:
            return False
        running = state.status is _Status.RUNNING
        view = seq.current_read_view(victim, self.snapshot.get(key))
        deferred: List[_ReadRecord] = []
        for rec in records:
            if rec.merge_operand is None:
                if running:
                    # The paired write hasn't happened yet, so the operand
                    # is unknown; defer the verdict check to the write's
                    # attach hook (or the completion hook).
                    deferred.append(rec)
                    continue
                return False
            if view is None:
                return False
            if view[0] != rec.base and not self._merge_outcome_stable(rec, view[0]):
                return False
        for rec in deferred:
            rec.merge_recheck = True
        self.merge_tolerated += 1
        if self.obs is not None:
            self.obs.merge_tolerated(self.loop.now, victim, key)
        return True

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _complete(self, state: _TxState, result: TxResult) -> None:
        now = self.loop.now
        state.pending_entry = None
        if self.merges is not None:
            stale = self._merge_deferred_invalid(state)
            if stale is not None:
                # A deferred merge recheck never settled (or settled stale):
                # this attempt must not commit.  Abort it like any other
                # conflict; the generator is already exhausted.
                self._abort(state.index, stale)
                return
        self.pool.release(state.thread, now)
        state.thread = None
        state.status = _Status.DONE
        state.result = result
        self.per_tx[state.index].end_time = now
        self.per_tx[state.index].gas_used = result.gas_used
        self.per_tx[state.index].succeeded = result.success
        self.per_tx[state.index].attempts = state.attempts
        if state.meter is not None:
            self.per_tx[state.index].instructions_executed += state.meter.steps_executed
            state.meter = None
        self.per_tx[state.index].instructions_final = result.steps

        if result.success:
            for key, value in state.w_abs.items():
                if state.published.get(key) != ("abs", value):
                    self._publish(state, key, "abs", value)
            for key, delta in state.w_delta.items():
                if state.published.get(key) != ("delta", delta):
                    self._publish(state, key, "delta", delta)
        else:
            self._retract_published(state)
        if self.obs is not None:
            self.obs.tx_end(now, state.index, attempt=state.attempts,
                            success=result.success,
                            gas_used=result.gas_used)
        if self.recorder is not None:
            self.recorder.complete(state.index, attempt=state.attempts,
                                   success=result.success,
                                   gas_used=result.gas_used)

        # Predicted writes that never materialised are marked skipped so
        # transactions waiting on them unblock (divergent path / failure).
        # The same applies to keys this transaction published in *earlier
        # attempts*: an entry inserted on the fly back then may now be a
        # write the current path never performs.
        pending_write_keys = set(self.ever_written[state.index])
        for key, access_type in state.csag.per_key.items():
            if self._declared(access_type) is not AccessType.READ:
                pending_write_keys.add(key)
        for key in pending_write_keys:
            if key in state.published:
                continue
            seq = self.sequences.sequence(key)
            entry = seq.entry(state.index)
            if entry is not None and entry.has_write_part and not entry.write_finished:
                allowed, _ = seq.version_write(state.index, skipped=True)
                self._handle_wake_and_abort(key, allowed, [], writer=state.index)
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Abort (Algorithm 4)
    # ------------------------------------------------------------------

    def _abort(self, index: int, trigger_key: StateKey, writer: int = -1) -> None:
        state = self.states[index]
        now = self.loop.now
        if state.aborting:
            # A suffix-retraction cascade circled back to the transaction
            # being aborted.  Flag it — the outer call checks the flag and
            # degrades to a full restart — and let that call finish.
            state.abort_reentered = True
            return
        if self.recorder is not None:
            self.recorder.abort(index, attempt=max(state.attempts, 1),
                                key=trigger_key)
        if self.obs is not None:
            self.obs.tx_abort(now, index, attempt=max(state.attempts, 1),
                              key=trigger_key, writer=writer)

        # Revalidation fast path: a completed successful attempt whose whole
        # read log still resolves to the same values remains serializable —
        # reinstate its result as a fresh attempt with zero re-execution.
        if (
            self.ex.enable_revalidation
            and state.status is _Status.DONE
            and state.result is not None
            and state.result.success
            and self._try_revalidate(state)
        ):
            return

        if state.resume_from is not None:
            # Aborted again while parked for a resume: the plan below is
            # recomputed against the (already truncated) log, so just drop
            # the stale one.
            state.resume_from = None

        state.aborting = True
        state.abort_reentered = False
        try:
            if state.status is _Status.READY:
                self.queue.remove(index)
            elif state.status is _Status.RUNNING:
                if state.pending_entry is not None:
                    self.loop.cancel(state.pending_entry)
                    state.pending_entry = None
                if state.generator is not None:
                    state.generator.close()
                    state.generator = None
                if state.meter is not None:
                    self.per_tx[index].instructions_executed += state.meter.steps_executed
                    state.meter = None
                self.pool.release(state.thread, now)
                state.thread = None
            elif state.status is _Status.DONE:
                state.result = None
            elif state.status is _Status.WAITING:
                # Nothing consumed yet in the *current* attempt; but a previous
                # attempt's reads may still be recorded — fall through to reset.
                pass

            state.status = _Status.WAITING
            self.per_tx[index].aborted_times += 1

            plan = None
            if self.ex.enable_checkpoint_resume and state.checkpoints:
                plan = self._plan_resume(state)
            if plan is not None:
                # Retract only what came after the checkpoint; if the
                # cascade came back to bite us, or shifted the kept prefix,
                # fall back to retracting everything.
                self._retract_suffix(state, plan)
                if state.abort_reentered or self._prefix_invalid(state, plan):
                    plan = None
            if plan is not None:
                self._arm_resume(state, plan)
            else:
                # Full restart: retract whatever this transaction made
                # visible (cascades) and clear its recorded reads so future
                # writes don't re-abort a transaction already re-executing.
                self._retract_published(state)
                for key in state.registered_reads:
                    seq = self.sequences.get(key)
                    if seq is not None:
                        entry = seq.entry(index)
                        if entry is not None:
                            entry.reset_read()
                state.reset_attempt()
        finally:
            state.aborting = False

        self.locks.release_all(index)
        if self.locks.refresh(index, self.sequences):
            state.status = _Status.READY
            self.queue.push(index)
            if self.obs is not None:
                self.obs.tx_ready(now, index, attempt=state.attempts + 1)
            self._schedule_dispatch()
        elif self.obs is not None:
            keys, blockers = self._wait_info(index)
            self.obs.version_wait_begin(now, index, keys=keys,
                                        blockers=blockers)

    # ------------------------------------------------------------------
    # Incremental re-execution: validation, revalidation, resume
    # ------------------------------------------------------------------

    def _validate_reads(
        self, state: _TxState, limit: int
    ) -> Tuple[Optional[int], List[int]]:
        """Re-resolve the first ``limit`` read-log records against the live
        access sequences.  Returns the index of the first record whose value
        changed (or None when every record still holds) plus the re-resolved
        version for each record of the valid prefix."""
        versions: List[int] = []
        for i, rec in enumerate(state.read_log[:limit]):
            if rec.blind:
                # Blind increment reads are value-insensitive (_ReadRecord):
                # the driver publishes the delta, not the absolute.
                versions.append(rec.version_from)
                continue
            seq = self.sequences.get(rec.key)
            if seq is None:
                return i, versions
            view = seq.current_read_view(state.index, self.snapshot.get(rec.key))
            if view is None:
                return i, versions
            if view[0] != rec.base and not self._merge_outcome_stable(rec, view[0]):
                return i, versions
            versions.append(view[1])
        return None, versions

    @staticmethod
    def _merge_outcome_stable(rec: _ReadRecord, new_base: int) -> bool:
        """Whether a merge record tolerates its base drifting to
        ``new_base``: the declared guard must reach the same verdict on the
        observed value it would now see.  Records without an operand (the
        guard failed, or the op never ran) demand exact equality."""
        if rec.merge_spec is None or rec.merge_operand is None:
            return False
        old_value = (rec.base + rec.merge_own) % WORD_MOD
        new_value = (new_base + rec.merge_own) % WORD_MOD
        return (rec.merge_spec.outcome(old_value, rec.merge_operand)
                == rec.merge_spec.outcome(new_value, rec.merge_operand))

    def _rerecord_reads(
        self, state: _TxState, records: List[_ReadRecord], versions: List[int]
    ) -> None:
        """Re-anchor the recorded read dependencies to the versions they
        resolve to *now* (record_read keeps the oldest version, so the stale
        registration must be reset first)."""
        for key in {r.key for r in records if r.registered}:
            seq = self.sequences.get(key)
            if seq is not None:
                entry = seq.entry(state.index)
                if entry is not None:
                    entry.reset_read()
        for rec, version in zip(records, versions):
            if rec.registered:
                self.sequences.sequence(rec.key).record_read(state.index, version)
                rec.version_from = version

    def _reemit_reads(
        self, state: _TxState, records: List[_ReadRecord], versions: List[int]
    ) -> None:
        """Emit the kept reads into the trace under the new attempt number so
        the serializability oracle sees the attempt's true dependencies."""
        if self.recorder is None:
            return
        for rec, version in zip(records, versions):
            if rec.blind:
                self.recorder.read(state.index, rec.key, version, rec.base,
                                   attempt=state.attempts, blind=True)
            else:
                early = (version >= 0
                         and self.states[version].status is not _Status.DONE)
                self.recorder.read(state.index, rec.key, version, rec.base,
                                   attempt=state.attempts, early=early,
                                   speculative=rec.speculative)

    def _try_revalidate(self, state: _TxState) -> bool:
        first_invalid, versions = self._validate_reads(state, len(state.read_log))
        if first_invalid is not None:
            return False
        state.attempts += 1
        per = self.per_tx[state.index]
        per.attempts = state.attempts
        per.aborted_times += 1
        per.revalidation_hits += 1
        skipped = state.result.steps
        per.instructions_skipped += skipped
        self._rerecord_reads(state, state.read_log, versions)
        if self.obs is not None:
            self.obs.revalidation_hit(self.loop.now, state.index,
                                      attempt=state.attempts,
                                      instructions_skipped=skipped)
        self._reemit_reads(state, state.read_log, versions)
        if self.recorder is not None:
            self.recorder.complete(state.index, attempt=state.attempts,
                                   success=True,
                                   gas_used=state.result.gas_used)
        return True

    def _plan_resume(self, state: _TxState) -> Optional[_ResumePlan]:
        """Find the newest checkpoint at or before the first invalidated
        read; everything up to it is salvageable."""
        first_invalid, _ = self._validate_reads(state, len(state.read_log))
        j = first_invalid if first_invalid is not None else len(state.read_log)
        usable = [ck for ck in state.checkpoints if ck.read_index <= j]
        if not usable:
            return None
        return _ResumePlan(checkpoint=usable[-1], first_invalid=j)

    def _prefix_invalid(self, state: _TxState, plan: _ResumePlan) -> bool:
        first_invalid, versions = self._validate_reads(
            state, plan.checkpoint.read_index)
        if first_invalid is not None:
            return True
        plan.prefix_versions = versions
        return False

    def _retract_suffix(self, state: _TxState, plan: _ResumePlan) -> None:
        """Retract only the writes published after ``plan.checkpoint``.

        A key the kept prefix had already published (with an older value)
        gets that value reinstated — retract then republish — so prefix
        readers can revalidate against the identical value instead of
        cascading into full restarts.
        """
        keep = plan.checkpoint.published
        published = list(state.published.items())
        state.published = dict(keep)
        for key, current in published:
            kept = keep.get(key)
            if kept == current:
                continue  # unchanged since the checkpoint: leave it in place
            seq = self.sequences.get(key)
            if seq is None:
                continue
            victims = seq.retract(state.index)
            if self.recorder is not None:
                self.recorder.retract(
                    state.index, key,
                    tuple(v for v in victims if v != state.index),
                )
            allowed: List[int] = []
            aborted: List[int] = []
            if kept is not None:
                kind, value = kept
                if self.recorder is not None:
                    self.recorder.publish(state.index, key, kind, value,
                                          early=True)
                if kind == "abs":
                    allowed, aborted = seq.version_write(state.index, value=value)
                else:
                    allowed, aborted = seq.version_write(state.index, delta=value)
            for victim in victims:
                if victim != state.index and not self._merge_skip_abort(victim, key):
                    self._abort(victim, key, writer=state.index)
            if kept is not None:
                self._handle_wake_and_abort(key, allowed, aborted,
                                            writer=state.index)

    def _arm_resume(self, state: _TxState, plan: _ResumePlan) -> None:
        """Park the transaction with a restored checkpoint image; the next
        _start resumes the VM instead of re-executing from scratch."""
        ck = plan.checkpoint
        index = state.index
        # Reads that exist only in the discarded suffix lose their recorded
        # dependency; keys also read in the kept prefix keep their entry
        # (the prefix re-record at start refreshes its version).
        prefix_keys = {r.key for r in state.read_log[: ck.read_index]
                       if r.registered}
        for rec in state.read_log[ck.read_index:]:
            if rec.registered and rec.key not in prefix_keys:
                seq = self.sequences.get(rec.key)
                if seq is not None:
                    entry = seq.entry(index)
                    if entry is not None:
                        entry.reset_read()
        del state.read_log[ck.read_index:]
        for rec in state.read_log:
            if rec.merge_operand is not None and rec.merge_attached_at > ck.read_index:
                rec.merge_operand = None
        state.checkpoints = [c for c in state.checkpoints
                             if c.read_index <= ck.read_index]
        # Restore the driver-side attempt image; the VM side is rebuilt by
        # resume_transaction_program when the transaction next starts.
        state.w_abs = dict(ck.w_abs)
        state.w_delta = dict(ck.w_delta)
        state.pending_blind = dict(ck.pending_blind)
        state.registered_reads = dict(ck.registered_reads)
        state.frame_stack = [(dict(a), dict(d), dict(r))
                             for a, d, r in ck.frame_stack]
        state.release_mode = ck.release_mode
        state.speculative_reads = ck.speculative_reads
        state.generator = None
        state.meter = None
        state.pending_entry = None
        state.resume_from = plan

    def _retract_published(self, state: _TxState) -> None:
        published = list(state.published)
        state.published = {}
        for key in published:
            seq = self.sequences.get(key)
            if seq is None:
                continue
            victims = seq.retract(state.index)
            if self.recorder is not None:
                self.recorder.retract(
                    state.index, key,
                    tuple(v for v in victims if v != state.index),
                )
            for victim in victims:
                if victim != state.index and not self._merge_skip_abort(victim, key):
                    self._abort(victim, key, writer=state.index)
