"""Deterministic schedule replay: execution with conflict discovery off.

A validator holding a block's :class:`~repro.scheduling.schedule.Schedule`
sidecar does not need access sequences, validation rounds, or a conflict
DAG of its own — the miner already discovered the happens-before order.
This executor runs the fork-join plan directly: a transaction dispatches
once every gating predecessor committed, reads resolve to the latest
committed writer below the reader's index (exactly the version the
artifact's per-key writer chains guarantee is present), and nothing ever
aborts or speculates.  The output must be byte-identical to the fresh
speculative execution — ``Validator.import_block(..., schedule=...)``
still verifies the sealed state root.

On real substrates the schedule's realized read/write key sets double as
the dispatch views, so workers replay with zero view misses (see
``run_replay_real`` in :mod:`repro.substrate.coordinator`).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..core.types import StateKey
from ..evm.environment import BlockContext
from ..scheduling.schedule import Schedule
from ..sim.clock import EventLoop
from ..sim.metrics import TxMetrics
from ..sim.threadpool import ThreadPool
from ..state.statedb import Snapshot
from .base import BlockExecution, Executor, Receipt
from .dag import _run_to_completion


class ScheduleReplayExecutor(Executor):
    """Fork-join replay of a sealed schedule artifact."""

    name = "replay"

    def __init__(self, schedule: Schedule,
                 gas_time_scale: float = 1.0) -> None:
        super().__init__(gas_time_scale)
        self.schedule = schedule

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
    ) -> BlockExecution:
        """Execute ``txs`` along the sealed schedule; see Executor."""
        schedule = self.schedule
        if schedule.tx_count != len(txs):
            raise ValueError(
                f"schedule covers {schedule.tx_count} transactions, "
                f"block has {len(txs)}"
            )
        pool = self._substrate_pool(threads)
        if pool is not None:
            from ..substrate.coordinator import run_replay_real
            return run_replay_real(self, pool, txs, snapshot, code_resolver,
                                   block, schedule, threads=threads)
        wall_start = perf_counter()
        deps = [set(e.preds) for e in schedule.entries]
        dependents: List[List[int]] = [[] for _ in txs]
        remaining = [len(d) for d in deps]
        for j, dset in enumerate(deps):
            for i in dset:
                dependents[i].append(j)

        obs = self.obs
        loop = EventLoop()
        sim_pool = ThreadPool(threads, obs=obs)
        if obs is not None:
            obs.block_start(0.0, scheduler=self.name, threads=threads,
                            tx_count=len(txs))
        versions: Dict[StateKey, List[Tuple[int, int]]] = {}
        ready: List[int] = []
        receipts: List[Optional[Receipt]] = [None] * len(txs)
        per_tx: List[TxMetrics] = [TxMetrics(index=i) for i in range(len(txs))]

        def resolver_for(index: int):
            def resolve(key: StateKey) -> Tuple[int, int]:
                best: Optional[Tuple[int, int]] = None
                for writer, value in versions.get(key, ()):
                    if writer < index and (best is None or writer > best[0]):
                        best = (writer, value)
                if best is not None:
                    return best[1], best[0]
                return snapshot.get(key), -1

            return resolve

        def dispatch() -> None:
            while ready and sim_pool.idle_count:
                index = heapq.heappop(ready)
                thread = sim_pool.try_occupy(loop.now, label=f"T{index}")
                assert thread is not None
                start = loop.now
                if obs is not None:
                    obs.tx_start(start, index, thread=thread)
                result, writes = _run_to_completion(
                    txs[index], resolver_for(index), code_resolver, block,
                    recorder=self.recorder, index=index,
                )
                end = start + result.gas_used * self.gas_time_scale
                per_tx[index].start_time = start
                per_tx[index].gas_used = result.gas_used
                per_tx[index].succeeded = result.success

                def complete(index=index, thread=thread, result=result,
                             writes=writes, end=end) -> None:
                    if result.success:
                        for key, value in writes.items():
                            versions.setdefault(key, []).append((index, value))
                            if self.recorder is not None:
                                self.recorder.publish(index, key, "abs", value)
                    if self.recorder is not None:
                        self.recorder.complete(index, success=result.success,
                                               gas_used=result.gas_used)
                    receipts[index] = Receipt(index=index, result=result)
                    per_tx[index].end_time = end
                    if obs is not None:
                        obs.tx_end(loop.now, index, success=result.success,
                                   gas_used=result.gas_used)
                    sim_pool.release(thread, loop.now)
                    for dep in dependents[index]:
                        remaining[dep] -= 1
                        if remaining[dep] == 0:
                            if obs is not None:
                                obs.tx_ready(loop.now, dep)
                            heapq.heappush(ready, dep)
                    dispatch()

                loop.schedule(end, complete)

        for index in range(len(txs)):
            if remaining[index] == 0:
                if obs is not None:
                    obs.tx_ready(0.0, index)
                heapq.heappush(ready, index)
        loop.schedule_now(dispatch)
        makespan = loop.run()
        if obs is not None:
            obs.block_end(makespan, makespan=makespan)

        final_receipts = [r for r in receipts if r is not None]
        if len(final_receipts) != len(txs):
            missing = [i for i, r in enumerate(receipts) if r is None]
            raise RuntimeError(
                f"schedule replay deadlocked; unfinished: {missing}"
            )

        writes: Dict[StateKey, int] = {}
        for key, entries in versions.items():
            writes[key] = max(entries, key=lambda e: e[0])[1]

        metrics = self._base_metrics(threads, final_receipts)
        metrics.makespan = makespan
        metrics.utilisation = sim_pool.utilisation(makespan)
        metrics.per_tx = per_tx
        metrics.wall_time = perf_counter() - wall_start
        metrics.replayed = True
        return BlockExecution(writes=writes, receipts=final_receipts,
                              metrics=metrics)
