"""Executor interface and shared result types.

An executor takes a block's transactions plus the latest committed snapshot
and produces the block's final write set, per-transaction receipts, and the
scheduling metrics the benchmarks report.  All four schedulers from the
paper's evaluation implement this interface:

* ``SerialExecutor``   — the original-EVM baseline,
* ``DAGExecutor``      — conflict-DAG parallelism (ParBlockchain-style),
* ``OCCExecutor``      — optimistic execute-validate rounds,
* ``DMVCCExecutor``    — this paper's protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.types import StateKey
from ..evm.environment import BlockContext
from ..sim.clock import GAS_TIME_SCALE
from ..sim.metrics import BlockMetrics
from ..state.statedb import Snapshot
from .txprogram import TxResult


@dataclass
class Receipt:
    """Per-transaction outcome within a block execution."""

    index: int
    result: TxResult
    attempts: int = 1

    @property
    def aborted_attempts(self) -> int:
        return self.attempts - 1


@dataclass
class BlockExecution:
    """Everything produced by executing one block."""

    writes: Dict[StateKey, int]
    receipts: List[Receipt]
    metrics: BlockMetrics
    # Realized happens-before order (repro.scheduling.schedule.Schedule),
    # filled only when the producing validator emits schedule artifacts.
    schedule: Optional[object] = None

    @property
    def success_count(self) -> int:
        return sum(1 for r in self.receipts if r.result.success)


class Executor(ABC):
    """Deterministic block executor over a simulated thread pool."""

    name: str = "base"

    def __init__(self, gas_time_scale: float = GAS_TIME_SCALE) -> None:
        self.gas_time_scale = gas_time_scale
        # Optional execution-trace recorder (repro.verify.trace).  Every
        # hook site guards with ``is not None``, so the disabled path costs
        # one attribute load per state access.
        self.recorder = None
        # Optional observability event bus (repro.obs.events.EventBus).
        # Same contract as the recorder: hook sites guard with
        # ``is not None``, so disabled tracing costs one branch per hook.
        self.obs = None
        # Optional execution substrate (repro.substrate).  None defers to
        # the environment-selected default (REPRO_SUBSTRATE), which is in
        # turn None ≡ the sim backend.
        self.substrate = None
        # Optional declared-operation merge registry
        # (repro.state.merge.MergeRegistry).  None or empty keeps the
        # paper's original blind-increment-only semantics.
        self.merges = None

    def attach_recorder(self, recorder) -> "Executor":
        """Attach a :class:`repro.verify.trace.TraceRecorder`; chainable."""
        self.recorder = recorder
        return self

    def attach_obs(self, obs) -> "Executor":
        """Attach a :class:`repro.obs.events.EventBus`; chainable."""
        self.obs = obs
        return self

    def attach_substrate(self, substrate) -> "Executor":
        """Attach a :class:`repro.substrate.Substrate`; chainable."""
        self.substrate = substrate
        return self

    def attach_merges(self, merges) -> "Executor":
        """Attach a :class:`repro.state.merge.MergeRegistry`; chainable."""
        self.merges = merges
        return self

    def _effective_substrate(self):
        """The substrate this executor runs on: the attached one, else the
        environment-selected default, else None (≡ sim)."""
        if self.substrate is not None:
            return self.substrate
        from ..substrate.base import default_substrate  # lazy: avoids cycle
        return default_substrate()

    def _substrate_pool(self, threads: int):
        """The real worker pool to run on, or None for the simulator path."""
        substrate = self._effective_substrate()
        if substrate is None:
            return None
        return substrate.acquire(threads)

    @abstractmethod
    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
    ) -> BlockExecution:
        """Execute ``txs`` against ``snapshot`` on ``threads`` simulated
        threads; must satisfy deterministic serializability (Definition 2)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _serial_time(self, receipts: List[Receipt]) -> float:
        """Reference serial duration: the sum of final-attempt gas."""
        return sum(r.result.gas_used for r in receipts) * self.gas_time_scale

    def _base_metrics(self, threads: int, receipts: List[Receipt]) -> BlockMetrics:
        metrics = BlockMetrics(scheduler=self.name, threads=threads)
        metrics.tx_count = len(receipts)
        metrics.total_gas = sum(r.result.gas_used for r in receipts)
        metrics.serial_time = self._serial_time(receipts)
        metrics.executions = sum(r.attempts for r in receipts)
        metrics.aborts = sum(r.aborted_attempts for r in receipts)
        metrics.deterministic_failures = sum(
            1 for r in receipts if not r.result.success
        )
        return metrics
