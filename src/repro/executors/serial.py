"""Serial executor: the original-EVM baseline.

Transactions run one after another; each sees every effect of its
predecessors.  Its output *defines* correctness for every parallel
scheduler (deterministic serializability, Definition 2), and its summed gas
defines the time baseline for speedups.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

from ..core.types import StateKey
from ..evm.environment import BlockContext
from ..evm.events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from ..state.journal import OverlayReader, WriteJournal
from ..state.statedb import Snapshot
from .base import BlockExecution, Executor, Receipt
from .txprogram import StorageIncrement, TxResult, transaction_program


def run_tx_serially(
    tx, reader, code_resolver, block=None,
    recorder=None, index: int = 0, versions=None,
) -> "tuple[TxResult, Dict[StateKey, int]]":
    """Execute one transaction against ``reader``; returns the result and
    the write set to apply (empty unless successful).

    When a trace ``recorder`` is given, foreign reads are logged with the
    version they observed — the index of the last committed writer per
    ``versions`` (snapshot when absent) — establishing the reference
    version order the oracle compares parallel traces against.
    """
    journal = WriteJournal(reader)
    program = transaction_program(tx, code_resolver, block=block)
    to_send: object = None
    while True:
        try:
            event = program.send(to_send)
        except StopIteration as stop:
            result: TxResult = stop.value
            break
        to_send = None
        if isinstance(event, StorageRead):
            own = journal.written(event.key)
            to_send = journal.read(event.key)
            if recorder is not None and not own:
                version = versions.get(event.key, -1) if versions else -1
                recorder.read(index, event.key, version, to_send)
        elif isinstance(event, StorageWrite):
            journal.write(event.key, event.value)
            if recorder is not None:
                recorder.write(index, event.key, value=event.value)
        elif isinstance(event, StorageIncrement):
            own = journal.written(event.key)
            base = journal.read(event.key)
            if recorder is not None and not own:
                version = versions.get(event.key, -1) if versions else -1
                recorder.read(index, event.key, version, base, blind=True)
            journal.write(event.key, base + event.delta)
            if recorder is not None:
                recorder.write(index, event.key, delta=event.delta)
        elif isinstance(event, FrameCheckpoint):
            to_send = journal.checkpoint()
        elif isinstance(event, FrameCommit):
            journal.commit_checkpoint(event.token)
        elif isinstance(event, FrameRevert):
            journal.revert_to(event.token)
        elif isinstance(event, (Watchpoint, EmittedLog)):
            pass
    writes = journal.write_set if result.success else {}
    return result, writes


class SerialExecutor(Executor):
    """Execute the block in order on a single simulated thread."""

    name = "serial"

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
    ) -> BlockExecution:
        """Execute ``txs`` one-by-one on a single simulated thread.

        Serial execution never ships work to substrate workers — one
        in-order stream gains nothing from them — but it still stamps the
        effective backend so wall-vs-gas comparisons line up."""
        wall_start = perf_counter()
        overlay = OverlayReader(snapshot.get)
        receipts: List[Receipt] = []
        clock = 0.0
        recorder = self.recorder
        obs = self.obs
        versions: Dict[StateKey, int] = {}  # key -> last committed writer
        if obs is not None:
            obs.block_start(0.0, scheduler=self.name, threads=1,
                            tx_count=len(txs))
        for index, tx in enumerate(txs):
            if obs is not None:
                obs.tx_ready(clock, index)
                obs.tx_start(clock, index, thread=0)
            result, writes = run_tx_serially(
                tx, overlay, code_resolver, block,
                recorder=recorder, index=index, versions=versions,
            )
            overlay.apply(writes)
            clock += result.gas_used * self.gas_time_scale
            receipts.append(Receipt(index=index, result=result))
            if obs is not None:
                obs.tx_end(clock, index, success=result.success,
                           gas_used=result.gas_used)
            if recorder is not None:
                for key, value in writes.items():
                    recorder.publish(index, key, "abs", value)
                recorder.complete(index, success=result.success,
                                  gas_used=result.gas_used)
                versions.update((key, index) for key in writes)
        if obs is not None:
            obs.block_end(clock, makespan=clock)

        metrics = self._base_metrics(threads=1, receipts=receipts)
        metrics.makespan = clock
        metrics.utilisation = 1.0 if clock else 0.0
        metrics.wall_time = perf_counter() - wall_start
        substrate = self._effective_substrate()
        if substrate is not None and substrate.kind != "sim":
            metrics.backend = substrate.kind
            metrics.workers = 1
        return BlockExecution(writes=overlay.pending, receipts=receipts, metrics=metrics)
