"""Serial executor: the original-EVM baseline.

Transactions run one after another; each sees every effect of its
predecessors.  Its output *defines* correctness for every parallel
scheduler (deterministic serializability, Definition 2), and its summed gas
defines the time baseline for speedups.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.types import StateKey
from ..evm.environment import BlockContext
from ..evm.events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from ..state.journal import OverlayReader, WriteJournal
from ..state.statedb import Snapshot
from .base import BlockExecution, Executor, Receipt
from .txprogram import StorageIncrement, TxResult, transaction_program


def run_tx_serially(tx, reader, code_resolver, block=None) -> "tuple[TxResult, Dict[StateKey, int]]":
    """Execute one transaction against ``reader``; returns the result and
    the write set to apply (empty unless successful)."""
    journal = WriteJournal(reader)
    program = transaction_program(tx, code_resolver, block=block)
    to_send: object = None
    while True:
        try:
            event = program.send(to_send)
        except StopIteration as stop:
            result: TxResult = stop.value
            break
        to_send = None
        if isinstance(event, StorageRead):
            to_send = journal.read(event.key)
        elif isinstance(event, StorageWrite):
            journal.write(event.key, event.value)
        elif isinstance(event, StorageIncrement):
            journal.write(event.key, journal.read(event.key) + event.delta)
        elif isinstance(event, FrameCheckpoint):
            to_send = journal.checkpoint()
        elif isinstance(event, FrameCommit):
            journal.commit_checkpoint(event.token)
        elif isinstance(event, FrameRevert):
            journal.revert_to(event.token)
        elif isinstance(event, (Watchpoint, EmittedLog)):
            pass
    writes = journal.write_set if result.success else {}
    return result, writes


class SerialExecutor(Executor):
    """Execute the block in order on a single simulated thread."""

    name = "serial"

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
    ) -> BlockExecution:
        """Execute ``txs`` one-by-one on a single simulated thread."""
        overlay = OverlayReader(snapshot.get)
        receipts: List[Receipt] = []
        clock = 0.0
        for index, tx in enumerate(txs):
            result, writes = run_tx_serially(tx, overlay, code_resolver, block)
            overlay.apply(writes)
            clock += result.gas_used * self.gas_time_scale
            receipts.append(Receipt(index=index, result=result))

        metrics = self._base_metrics(threads=1, receipts=receipts)
        metrics.makespan = clock
        metrics.utilisation = 1.0 if clock else 0.0
        return BlockExecution(writes=overlay.pending, receipts=receipts, metrics=metrics)
