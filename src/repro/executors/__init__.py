"""Block executors: serial baseline, DAG, OCC, and DMVCC."""

from .base import BlockExecution, Executor, Receipt
from .serial import SerialExecutor, run_tx_serially
from .txprogram import (
    StorageIncrement,
    TxProgram,
    TxResult,
    TxStatus,
    transaction_program,
)

__all__ = [
    "BlockExecution",
    "Executor",
    "Receipt",
    "SerialExecutor",
    "StorageIncrement",
    "TxProgram",
    "TxResult",
    "TxStatus",
    "run_tx_serially",
    "transaction_program",
]

from .dag import DAGExecutor, build_conflict_dag
from .dmvcc import DMVCCExecutor
from .occ import OCCExecutor
from .replay import ScheduleReplayExecutor

__all__ += ["DAGExecutor", "DMVCCExecutor", "OCCExecutor",
            "ScheduleReplayExecutor", "build_conflict_dag"]
