"""OCC-based parallel executor (optimistic concurrency control baseline).

The paper's OCC comparator executes transactions in parallel without any
dependency information, then "aborts and re-executes the transactions that
violate deterministic serializability until there is none to be aborted".
We implement the round-based scheme in its modern multi-version formulation
(as in Block-STM / Sparkle), with a faithful *timing* model:

1. transactions needing (re-)execution are bound to simulated threads FIFO;
   a transaction reads the versions published *before its start time* —
   concurrent transactions cannot see each other, which is exactly where
   optimistic conflicts come from (one thread ⇒ fully serial ⇒ no aborts);
2. after each round, every executed transaction is validated in block
   order: if any recorded read no longer matches the latest writer below
   it, the transaction is stale and re-executes next round;
3. rounds repeat to a fixpoint; the validated state equals serial execution.

Each conflict costs a full re-execution (the paper's high-contention
weakness); validation is costed as free, which favours OCC.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from ..core.types import StateKey
from ..evm.environment import BlockContext
from ..evm.events import (
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
)
from ..sim.metrics import TxMetrics
from ..state.statedb import Snapshot
from .base import BlockExecution, Executor, Receipt
from .txprogram import StorageIncrement, TxResult, transaction_program

SNAPSHOT_WRITER = -1


class _TimedVersionStore:
    """Speculative writes with publish timestamps."""

    def __init__(self, snapshot: Snapshot) -> None:
        self._snapshot = snapshot
        # key -> {writer index: (value, publish_time)}
        self._writes: Dict[StateKey, Dict[int, Tuple[int, float]]] = {}

    def read(
        self, key: StateKey, index: int, before: Optional[float] = None
    ) -> Tuple[int, int]:
        """Latest version by a writer < ``index`` visible at time ``before``
        (no time bound when ``before`` is None).  Returns (value, writer)."""
        versions = self._writes.get(key)
        best_writer = SNAPSHOT_WRITER
        best_value = 0
        if versions:
            for writer, (value, published) in versions.items():
                if writer >= index or writer <= best_writer:
                    continue
                if before is not None and published > before:
                    continue
                best_writer = writer
                best_value = value
        if best_writer == SNAPSHOT_WRITER:
            return self._snapshot.get(key), SNAPSHOT_WRITER
        return best_value, best_writer

    def publish(self, index: int, writes: Dict[StateKey, int], time: float) -> None:
        for key, value in writes.items():
            self._writes.setdefault(key, {})[index] = (value, time)

    def retract(self, index: int, keys) -> None:
        for key in keys:
            versions = self._writes.get(key)
            if versions is not None:
                versions.pop(index, None)

    def final_writes(self) -> Dict[StateKey, int]:
        return {
            key: versions[max(versions)][0]
            for key, versions in self._writes.items()
            if versions
        }


class OCCExecutor(Executor):
    """Optimistic execute–validate rounds on a simulated thread pool."""

    name = "occ"

    def __init__(self, gas_time_scale: float = 1.0, max_rounds: int = 10_000,
                 seed_views: bool = True, psag_cache=None) -> None:
        super().__init__(gas_time_scale)
        self.max_rounds = max_rounds
        # Real-substrate view seeding (PR-8 follow-up): resolve the static
        # P-SAG access sites per transaction and ship that key set with the
        # first dispatch, instead of discovering every key through the
        # NeedKeys → widen → re-dispatch loop.  OCC semantics are
        # unchanged — a seeded view only changes how many round-trips the
        # first attempt costs; ``bench_scheduling``/``bench_substrates``
        # count ``view_misses`` with the seeding on and off.
        self.seed_views = seed_views
        if psag_cache is None:
            from ..analysis.sag import PSAGCache
            psag_cache = PSAGCache()
        self.psag_cache = psag_cache

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
    ) -> BlockExecution:
        """Execute ``txs`` with optimistic rounds; see Executor."""
        pool = self._substrate_pool(threads)
        if pool is not None:
            from ..substrate.coordinator import run_occ_real
            return run_occ_real(self, pool, txs, snapshot, code_resolver,
                                block, threads=threads)
        wall_start = perf_counter()
        count = len(txs)
        recorder = self.recorder
        obs = self.obs
        store = _TimedVersionStore(snapshot)
        results: List[Optional[TxResult]] = [None] * count
        read_versions: List[Dict[StateKey, Tuple[int, int]]] = [{} for _ in range(count)]
        write_keys: List[Set[StateKey]] = [set() for _ in range(count)]
        attempts = [0] * count
        per_tx = [TxMetrics(index=i) for i in range(count)]
        needs_execution = list(range(count))
        clock = 0.0
        rounds = 0
        if obs is not None:
            obs.block_start(0.0, scheduler=self.name, threads=threads,
                            tx_count=count)
            for index in range(count):
                obs.tx_ready(0.0, index)

        while needs_execution:
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeError("OCC failed to converge")

            # Versions of the transactions being redone disappear for the
            # round (they are being recomputed).
            for index in needs_execution:
                if recorder is not None:
                    for key in write_keys[index]:
                        recorder.retract(index, key)
                store.retract(index, write_keys[index])

            # FIFO thread binding: each transaction starts when a thread
            # frees up and sees only versions published before that instant.
            thread_heap = [(clock, tid) for tid in range(threads)]
            heapq.heapify(thread_heap)
            round_end = clock
            for index in needs_execution:
                start, tid = heapq.heappop(thread_heap)
                attempts[index] += 1
                if obs is not None:
                    if attempts[index] > 1:
                        obs.version_wait_end(clock, index)
                        obs.tx_reexecute(clock, index, attempt=attempts[index])
                        obs.tx_ready(clock, index, attempt=attempts[index])
                    obs.tx_start(start, index, attempt=attempts[index],
                                 thread=tid)
                result, writes, reads = _speculative_run(
                    txs[index], index, store, code_resolver, block, before=start,
                    recorder=recorder, attempt=attempts[index],
                )
                end = start + result.gas_used * self.gas_time_scale
                results[index] = result
                read_versions[index] = reads
                write_keys[index] = set(writes)
                store.publish(index, writes, time=end)
                if obs is not None:
                    obs.tx_end(end, index, attempt=attempts[index],
                               success=result.success,
                               gas_used=result.gas_used)
                if recorder is not None:
                    for key, value in writes.items():
                        recorder.publish(index, key, "abs", value)
                    recorder.complete(index, attempt=attempts[index],
                                      success=result.success,
                                      gas_used=result.gas_used)
                per_tx[index].start_time = start
                per_tx[index].end_time = end
                heapq.heappush(thread_heap, (end, tid))
                round_end = max(round_end, end)
            clock = round_end

            # Validation sweep (sequential, in block order), against the
            # final store state: any read that would now resolve differently
            # marks the reader stale.
            needs_execution = []
            for index in range(count):
                conflict_key = None
                conflict_writer = SNAPSHOT_WRITER
                for key, observed in read_versions[index].items():
                    current = store.read(key, index)
                    if current != observed:
                        conflict_key = key
                        conflict_writer = current[1]
                        break
                if conflict_key is not None:
                    if recorder is not None:
                        recorder.abort(index, attempt=attempts[index])
                    if obs is not None:
                        # The stale transaction waits out the round barrier
                        # from the end of its doomed attempt: back-date the
                        # version-wait so the wasted span is visible.
                        obs.tx_abort(clock, index, attempt=attempts[index],
                                     key=conflict_key, writer=conflict_writer)
                        obs.version_wait_begin(
                            per_tx[index].end_time, index,
                            keys=(conflict_key,),
                            blockers=(conflict_writer,),
                        )
                    needs_execution.append(index)

        receipts = [
            Receipt(index=i, result=results[i], attempts=attempts[i])  # type: ignore[arg-type]
            for i in range(count)
        ]
        for i in range(count):
            per_tx[i].attempts = attempts[i]
            per_tx[i].aborted_times = attempts[i] - 1
            per_tx[i].gas_used = results[i].gas_used  # type: ignore[union-attr]
            per_tx[i].succeeded = results[i].success  # type: ignore[union-attr]

        if obs is not None:
            obs.block_end(clock, makespan=clock)

        metrics = self._base_metrics(threads, receipts)
        metrics.makespan = clock
        metrics.utilisation = (
            min(1.0, metrics.serial_time / (clock * threads)) if clock else 0.0
        )
        metrics.per_tx = per_tx
        metrics.wall_time = perf_counter() - wall_start
        return BlockExecution(
            writes=store.final_writes(), receipts=receipts, metrics=metrics
        )


def _speculative_run(
    tx, index: int, store: _TimedVersionStore, code_resolver, block, before: float,
    recorder=None, attempt: int = 1,
) -> Tuple[TxResult, Dict[StateKey, int], Dict[StateKey, Tuple[int, int]]]:
    """One optimistic execution against the versions visible at ``before``.

    Returns (result, write set, observed (value, writer) per key read).
    """
    local: Dict[StateKey, int] = {}
    undo: List[Tuple[StateKey, Optional[int]]] = []
    checkpoints: List[int] = []
    reads: Dict[StateKey, Tuple[int, int]] = {}

    def read(key: StateKey, blind: bool = False) -> int:
        if key in local:
            return local[key]
        value, writer = store.read(key, index, before=before)
        reads.setdefault(key, (value, writer))
        if recorder is not None:
            recorder.read(index, key, writer, value, attempt=attempt, blind=blind)
        return value

    def write(key: StateKey, value: int) -> None:
        undo.append((key, local.get(key)))
        local[key] = value

    program = transaction_program(tx, code_resolver, block=block)
    to_send: object = None
    while True:
        try:
            event = program.send(to_send)
        except StopIteration as stop:
            result: TxResult = stop.value
            break
        to_send = None
        if isinstance(event, StorageRead):
            to_send = read(event.key)
        elif isinstance(event, StorageWrite):
            write(event.key, event.value)
            if recorder is not None:
                recorder.write(index, event.key, value=event.value, attempt=attempt)
        elif isinstance(event, StorageIncrement):
            write(event.key, read(event.key, blind=True) + event.delta)
            if recorder is not None:
                recorder.write(index, event.key, delta=event.delta, attempt=attempt)
        elif isinstance(event, FrameCheckpoint):
            checkpoints.append(len(undo))
            to_send = len(checkpoints)
        elif isinstance(event, FrameCommit):
            checkpoints.pop()
        elif isinstance(event, FrameRevert):
            token = checkpoints.pop()
            while len(undo) > token:
                key, previous = undo.pop()
                if previous is None:
                    local.pop(key, None)
                else:
                    local[key] = previous
    writes = dict(local) if result.success else {}
    return result, writes, reads
