"""Static shard-membership classification from P-SAG/C-SAG footprints.

Shard membership is decided *up front* from the refined access graphs, the
same artifacts DMVCC schedules from: a transaction whose predicted
footprint lives entirely in one shard is local to it; everything else —
multi-shard footprints, unreliable predictions, and transactions entangled
with earlier cross-shard work — goes to the ordered phase-2 handoff.

Keys covered by a declared merge operation (:mod:`repro.state.merge`) are
*excluded* from the membership footprint: merge intents are folded at seal
regardless of which shard logged them, so a hot declared counter (an ERC-20
total supply, a fee sink) stops serialising otherwise-disjoint shards.
The full footprint — declared keys included — is still used for the
entanglement sweep, because a cross-shard transaction that *absolutely*
writes a declared key does order against local intents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.types import StateKey
from .partition import shard_of

# Phase-2 classification reasons (kept as strings for metrics/obs labels).
REASON_UNRELIABLE = "unreliable-prediction"
REASON_MULTI_SHARD = "multi-shard-footprint"
REASON_ENTANGLED = "entangled-with-cross"


@dataclass
class ShardPlan:
    """Static assignment of one block's transactions to shards.

    ``locals_`` maps shard id → transaction indices local to it (block
    order preserved); ``cross`` lists phase-2 transactions in block order.
    ``reasons`` records, for each cross transaction, why it escaped.
    """

    shards: int
    locals_: Dict[int, List[int]] = field(default_factory=dict)
    cross: List[int] = field(default_factory=list)
    reasons: Dict[int, str] = field(default_factory=dict)

    @property
    def local_count(self) -> int:
        return sum(len(v) for v in self.locals_.values())

    @property
    def cross_count(self) -> int:
        return len(self.cross)

    def local_counts(self) -> Tuple[int, ...]:
        return tuple(len(self.locals_.get(s, [])) for s in range(self.shards))


def _footprints(tx, csag, merges) -> "Tuple[Set[StateKey], Set[StateKey], Set[StateKey]]":
    """(reads, writes, membership) for one transaction.

    reads/writes are the *full* predicted footprints (static supersets
    included, balance keys for value transfers added); membership drops
    keys under a declared merge operation.
    """
    reads: Set[StateKey] = set()
    writes: Set[StateKey] = set()
    if csag is not None:
        reads |= csag.read_keys | csag.static_read_keys
        writes |= csag.write_keys | csag.static_write_keys
    if tx.value > 0:
        sender_bal = StateKey.balance(tx.sender)
        to_bal = StateKey.balance(tx.to)
        reads.add(sender_bal)
        writes.add(sender_bal)
        writes.add(to_bal)
    membership = reads | writes
    if merges is not None and merges:
        membership = {k for k in membership if merges.lookup(k) is None}
    return reads, writes, membership


def _reliable(csag) -> bool:
    """Whether the refined trace can be trusted for placement.

    ``missing`` means no analysis ran at all; ``predicted_success`` False
    means pre-execution reverted against the snapshot, so the realized
    footprint under in-block state may be arbitrarily different."""
    return csag is not None and not csag.missing and csag.predicted_success


def _placement_shard(keys: Set[StateKey], shards: int) -> int:
    """Deterministic home shard for a key set: the smallest key decides."""
    if not keys:
        return 0
    anchor = min(keys, key=lambda k: (k.address.value, k.slot))
    return shard_of(anchor.address, shards)


def classify_block(
    txs: Sequence,
    csags: Optional[Sequence],
    shards: int,
    merges=None,
) -> ShardPlan:
    """Partition a block into per-shard local streams plus a cross list.

    One forward sweep in block order.  A transaction is cross when its
    prediction is unreliable, its membership footprint spans shards, or its
    full footprint conflicts with the accumulated footprint of earlier
    cross transactions (W∩(R₂∪W₂) or R∩W₂ non-empty) — the latter keeps
    every handoff-ordered dependency inside phase 2, where global block
    order is enforced.
    """
    plan = ShardPlan(shards=shards, locals_={s: [] for s in range(shards)})
    cross_reads: Set[StateKey] = set()
    cross_writes: Set[StateKey] = set()
    for index, tx in enumerate(txs):
        csag = csags[index] if csags is not None and index < len(csags) else None
        reads, writes, membership = _footprints(tx, csag, merges)
        reason: Optional[str] = None
        if not _reliable(csag):
            reason = REASON_UNRELIABLE
        else:
            owners = {shard_of(k.address, shards) for k in membership}
            if len(owners) > 1:
                reason = REASON_MULTI_SHARD
            elif (writes & (cross_reads | cross_writes)) or (reads & cross_writes):
                reason = REASON_ENTANGLED
        if reason is None:
            # Declared merge keys never *constrain* placement, but when the
            # whole footprint is declared they still *guide* it — otherwise
            # every all-declared transaction would pile onto shard 0.
            placement = membership if membership else (writes | reads)
            plan.locals_[_placement_shard(placement, shards)].append(index)
        else:
            plan.cross.append(index)
            plan.reasons[index] = reason
            cross_reads |= reads
            cross_writes |= writes
    return plan
