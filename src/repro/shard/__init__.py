"""Sharded execution: hash-partitioned DMVCC with ordered cross handoff.

See :mod:`repro.shard.executor` for the protocol composition and
``docs/SHARDING.md`` for the design rationale and correctness argument.
"""

from .classifier import ShardPlan, classify_block
from .executor import ShardedDMVCCExecutor
from .partition import home_shard, shard_of, shard_of_key, shards_touched

__all__ = [
    "ShardPlan",
    "ShardedDMVCCExecutor",
    "classify_block",
    "home_shard",
    "shard_of",
    "shard_of_key",
    "shards_touched",
]
