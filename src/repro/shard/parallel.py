"""Shard-job dispatch across substrate backends.

A shard job is a zero-argument callable returning a picklable result
(:class:`repro.shard.executor.ShardRunResult`).  Dispatch is coarse —
one worker per shard, the whole phase-1 run shipped at once — which is the
granularity where process parallelism actually pays: per-transaction task
shipping is what :mod:`repro.substrate.coordinator` does *inside* a
protocol instance; here the protocol instances themselves are the tasks.

* ``sim`` (or no substrate): jobs run sequentially in-process; parallelism
  is accounted in simulated gas time by the caller.
* ``threads``: jobs run on real threads (GIL-bound, but I/O and native
  hashing overlap).
* ``processes``: jobs run in forked children, one per shard, inheriting
  the snapshot and code resolver through fork-copied memory and piping the
  picklable result back.  Any failure — no fork on the platform, a child
  crash, an unpicklable result — degrades that job (or the whole batch) to
  in-process execution: dispatch is an optimisation, never a correctness
  dependency.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

# Seconds to wait for one forked shard before giving up and re-running the
# job in-process.  Shard runs are CPU-bound and bounded by block gas, so a
# stuck child means the fork itself went wrong, not the workload.
FORK_TIMEOUT = 300.0

# Fork-inherited job table: set immediately before forking, read by the
# children through copy-on-write memory (the jobs close over unpicklable
# objects — snapshots, code resolvers — that never cross a pipe).
_FORK_JOBS: Optional[Sequence[Callable]] = None


def _child_main(index: int, conn) -> None:  # pragma: no cover - child process
    try:
        result = _FORK_JOBS[index]()
        conn.send(("ok", result))
    except BaseException as exc:
        try:
            conn.send(("err", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


def _run_forked(jobs: Sequence[Callable]) -> List:
    global _FORK_JOBS
    ctx = multiprocessing.get_context("fork")  # raises where fork is absent
    _FORK_JOBS = jobs
    children = []
    try:
        for index in range(len(jobs)):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_main, args=(index, child_conn))
            proc.start()
            child_conn.close()
            children.append((proc, parent_conn))
        results: List = []
        for index, (proc, conn) in enumerate(children):
            payload = None
            if conn.poll(FORK_TIMEOUT):
                try:
                    payload = conn.recv()
                except EOFError:
                    payload = None
            if payload is not None and payload[0] == "ok":
                results.append(payload[1])
            else:
                # Child died, timed out, or errored: redo locally.
                results.append(jobs[index]())
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck child
                proc.terminate()
                proc.join(timeout=5.0)
        return results
    finally:
        _FORK_JOBS = None
        for proc, conn in children:
            conn.close()
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()


def run_shard_jobs(jobs: Sequence[Callable], kind: str) -> List:
    """Run every job and return their results in job order."""
    jobs = list(jobs)
    if not jobs:
        return []
    if len(jobs) == 1 or kind == "sim":
        return [job() for job in jobs]
    if kind == "processes":
        try:
            return _run_forked(jobs)
        except (ValueError, OSError):
            return [job() for job in jobs]
    if kind == "threads":
        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [future.result() for future in futures]
    return [job() for job in jobs]
