"""Sharded DMVCC: one protocol instance per shard, two-phase cross handoff.

Phase 1 runs one full DMVCC instance per shard over that shard's local
transactions against the pre-block snapshot, while cross-shard
transactions pre-execute speculatively against the same snapshot with
their foreign reads recorded.  Phase 2 walks the cross transactions in
global block order: a speculation whose recorded reads still hold against
the committed overlay is committed as-is; one that drifted is aborted and
requeued — re-executed deterministically against the overlay — before the
walk continues.

Declared merge keys (:mod:`repro.state.merge`) never serialise shards.
Each shard logs per-transaction *intents* (deltas) instead of absolute
values; sealing folds every key's events — phase-1 intents plus phase-2
absolute writes — in global index order, which is exactly the serial
outcome: an absolute write at index ``q`` replaces the fold prefix, later
intents add on top.

Sharding is an optimisation, never a semantics change: a set of *realized*
escape checks compares what actually happened against what static
placement assumed, and any violation triggers a deterministic whole-block
fallback to the unsharded reference executor.  Sealed roots and receipts
are byte-identical to unsharded DMVCC by construction — either the checks
pass and the composition is serial-equivalent, or the block reruns
unsharded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.csag import CSAG, CSAGBuilder, CSAGCache
from ..analysis.sag import PSAGCache
from ..core.types import StateKey
from ..core.words import WORD_MOD
from ..evm.environment import BlockContext
from ..executors.base import BlockExecution, Executor, Receipt
from ..executors.dmvcc import DMVCCExecutor
from ..executors.serial import run_tx_serially
from ..state.statedb import Snapshot
from ..substrate.base import get_substrate
from ..verify.trace import ReadEvent, TraceRecorder, WriteEvent
from .classifier import ShardPlan, classify_block
from .parallel import run_shard_jobs

# Fallback reasons (metrics/obs labels).
FALLBACK_CROSS_RUN = "cross-run-overlap"
FALLBACK_HANDOFF_ORDER = "handoff-order-violation"
FALLBACK_MERGE_GUARD = "merge-guard-divergence"


class _RecordingReader:
    """Snapshot reader that remembers the first value observed per key."""

    __slots__ = ("base", "seen")

    def __init__(self, base) -> None:
        self.base = base
        self.seen: Dict[StateKey, int] = {}

    def __call__(self, key: StateKey) -> int:
        value = self.base(key)
        if key not in self.seen:
            self.seen[key] = value
        return value


@dataclass
class ShardRunResult:
    """Everything one shard's phase-1 DMVCC instance produced.

    Footprints and merge activity are already re-keyed to *global* block
    indices so the reducer never sees shard-local numbering.
    """

    shard: int
    local_indices: List[int]
    execution: BlockExecution
    reads_by_tx: Dict[int, Set[StateKey]] = field(default_factory=dict)
    writes_by_tx: Dict[int, Set[StateKey]] = field(default_factory=dict)
    abs_written: Set[StateKey] = field(default_factory=set)
    intents: List[Tuple[int, StateKey, int]] = field(default_factory=list)
    merge_reads: List[Tuple] = field(default_factory=list)


def _run_one_shard(
    shard: int,
    local_indices: List[int],
    txs: List,
    csags: List[CSAG],
    snapshot: Snapshot,
    code_resolver,
    threads: int,
    block: Optional[BlockContext],
    merges,
    gas_time_scale: float,
) -> ShardRunResult:
    """Execute one shard's local stream under a fresh DMVCC instance.

    Runs with private analysis caches so concurrent shard dispatch never
    mutates shared state, and always on the simulator path (the substrate
    seam sits *around* shards, not inside them).
    """
    inner = DMVCCExecutor(
        gas_time_scale=gas_time_scale,
        psag_cache=PSAGCache(),
        csag_cache=CSAGCache(),
    )
    inner.attach_substrate(get_substrate("sim"))
    if merges is not None:
        inner.attach_merges(merges)
    recorder = TraceRecorder()
    inner.attach_recorder(recorder)
    execution = inner.execute_block(
        txs, snapshot, code_resolver, threads=threads, block=block, csags=csags,
    )
    result = ShardRunResult(shard=shard, local_indices=local_indices,
                            execution=execution)
    finals = recorder.final_attempts()
    for event in recorder.events:
        if isinstance(event, ReadEvent):
            if event.blind or event.attempt != finals.get(event.tx, 1):
                continue
            g = local_indices[event.tx]
            result.reads_by_tx.setdefault(g, set()).add(event.key)
        elif isinstance(event, WriteEvent):
            if event.attempt != finals.get(event.tx, 1):
                continue
            g = local_indices[event.tx]
            result.writes_by_tx.setdefault(g, set()).add(event.key)
            if event.value is not None:
                result.abs_written.add(event.key)
    activity = inner.last_merge_activity
    if activity is not None:
        for local, key, delta in activity["intents"]:
            result.intents.append((local_indices[local], key, delta))
        for local, key, observed, own, operand, outcome in activity["reads"]:
            result.merge_reads.append(
                (local_indices[local], key, observed, own, operand, outcome))
    return result


class _ShardEscape(Exception):
    """Raised when a realized escape check fails; carries the reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class ShardedDMVCCExecutor(Executor):
    """N-way hash-partitioned DMVCC with ordered cross-shard handoff."""

    name = "dmvcc-sharded"

    def __init__(
        self,
        shards: int = 4,
        gas_time_scale: float = 1.0,
        psag_cache: Optional[PSAGCache] = None,
        csag_cache: Optional[CSAGCache] = None,
    ) -> None:
        super().__init__(gas_time_scale)
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.shards = shards
        self._psag_cache = psag_cache if psag_cache is not None else PSAGCache()
        self._csag_cache = csag_cache if csag_cache is not None else CSAGCache()
        # The unsharded reference this executor must match byte-for-byte;
        # also the deterministic fallback when an escape check fires.
        self._reference = DMVCCExecutor(
            gas_time_scale=gas_time_scale,
            psag_cache=self._psag_cache,
            csag_cache=self._csag_cache,
        )
        self.last_plan: Optional[ShardPlan] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute_block(
        self,
        txs: List,
        snapshot: Snapshot,
        code_resolver,
        threads: int = 1,
        block: Optional[BlockContext] = None,
        csags: Optional[List[CSAG]] = None,
    ) -> BlockExecution:
        wall_start = perf_counter()
        if csags is None:
            builder = CSAGBuilder(code_resolver, self._psag_cache,
                                  block if block is not None else BlockContext(),
                                  self._csag_cache)
            csags = [builder.build(tx, snapshot) for tx in txs]
        if self.shards <= 1 or len(txs) <= 1:
            execution = self._run_reference(txs, snapshot, code_resolver,
                                            threads, block, csags)
            execution.metrics.shards = max(self.shards, 1)
            execution.metrics.wall_time = perf_counter() - wall_start
            return execution

        plan = classify_block(txs, csags, self.shards, merges=self.merges)
        self.last_plan = plan
        if self.obs is not None:
            self.obs.shard_planned(0.0, self.shards,
                                   locals_per_shard=plan.local_counts(),
                                   cross=plan.cross_count)
        try:
            execution = self._run_sharded(plan, txs, csags, snapshot,
                                          code_resolver, threads, block)
        except _ShardEscape as escape:
            if self.obs is not None:
                self.obs.shard_fallback(0.0, reason=escape.reason)
            execution = self._run_reference(txs, snapshot, code_resolver,
                                            threads, block, csags)
            execution.metrics.shards = self.shards
            execution.metrics.cross_shard_txs = plan.cross_count
            execution.metrics.shard_fallbacks = 1
        execution.metrics.wall_time = perf_counter() - wall_start
        return execution

    def _run_reference(self, txs, snapshot, code_resolver, threads, block,
                       csags) -> BlockExecution:
        """The unsharded DMVCC reference (also the fallback path)."""
        ref = self._reference
        ref.merges = self.merges
        ref.obs = self.obs
        ref.recorder = self.recorder
        ref.substrate = get_substrate("sim")
        return ref.execute_block(txs, snapshot, code_resolver,
                                 threads=threads, block=block, csags=csags)

    # ------------------------------------------------------------------
    # The sharded path
    # ------------------------------------------------------------------

    def _run_sharded(
        self,
        plan: ShardPlan,
        txs: List,
        csags: List[CSAG],
        snapshot: Snapshot,
        code_resolver,
        threads: int,
        block: Optional[BlockContext],
    ) -> BlockExecution:
        merges = self.merges if self.merges else None
        per_shard_threads = max(1, threads // self.shards)

        # ---- Phase 1a: per-shard DMVCC instances --------------------
        jobs = []
        for shard in range(self.shards):
            local = plan.locals_.get(shard, [])
            if not local:
                continue
            shard_txs = [txs[i] for i in local]
            shard_csags = [csags[i] for i in local]
            jobs.append((lambda s=shard, li=list(local), st=shard_txs,
                         sc=shard_csags: _run_one_shard(
                             s, li, st, sc, snapshot, code_resolver,
                             per_shard_threads, block, merges,
                             self.gas_time_scale)))
        substrate = self._effective_substrate()
        kind = substrate.kind if substrate is not None else "sim"
        runs: List[ShardRunResult] = run_shard_jobs(jobs, kind)

        # ---- Phase 1b: speculative cross pre-execution --------------
        spec_runs: Dict[int, Tuple] = {}
        spec_gas = 0
        for q in plan.cross:
            reader = _RecordingReader(snapshot.get)
            result, writes = run_tx_serially(txs[q], reader, code_resolver, block)
            spec_runs[q] = (result, writes, reader.seen)
            spec_gas += result.gas_used

        # ---- Classification: declared pure-merge keys ---------------
        # A declared key stays on the merge channel only while every
        # shard-run write to it was a delta; one absolute write degrades it
        # to an ordinary key (handled by the overlap checks below).
        abs_everywhere: Set[StateKey] = set()
        for run in runs:
            abs_everywhere |= run.abs_written
        pure_merge: Set[StateKey] = set()
        if merges is not None:
            for run in runs:
                for _, key, _ in run.intents:
                    if key not in abs_everywhere:
                        spec = merges.lookup(key)
                        if spec is not None and spec.op.delta_encodable:
                            pure_merge.add(key)
            for reads in (r.merge_reads for r in runs):
                for _, key, *_ in reads:
                    if key not in abs_everywhere:
                        spec = merges.lookup(key)
                        if spec is not None and spec.op.delta_encodable:
                            pure_merge.add(key)

        # ---- Escape check (a): realized cross-run overlap -----------
        writer_runs: Dict[StateKey, Set[int]] = {}
        reader_runs: Dict[StateKey, Set[int]] = {}
        local_writers: Dict[StateKey, List[int]] = {}
        local_readers: Dict[StateKey, List[int]] = {}
        for run in runs:
            for g, keys in run.writes_by_tx.items():
                for key in keys:
                    writer_runs.setdefault(key, set()).add(run.shard)
                    local_writers.setdefault(key, []).append(g)
            for g, keys in run.reads_by_tx.items():
                for key in keys:
                    reader_runs.setdefault(key, set()).add(run.shard)
                    local_readers.setdefault(key, []).append(g)
        for key, writers in writer_runs.items():
            if key in pure_merge:
                continue
            if len(writers) > 1:
                raise _ShardEscape(FALLBACK_CROSS_RUN)
            if reader_runs.get(key, set()) - writers:
                raise _ShardEscape(FALLBACK_CROSS_RUN)

        # ---- Per-key event folds for declared merge keys ------------
        events: Dict[StateKey, List[Tuple[int, str, int]]] = {}
        for run in runs:
            for g, key, delta in run.intents:
                if key in pure_merge:
                    events.setdefault(key, []).append((g, "delta", delta))

        def prefix_fold(key: StateKey, upto: int) -> int:
            value = snapshot.get(key)
            for idx, fold_kind, payload in sorted(events.get(key, [])):
                if idx >= upto:
                    break
                if fold_kind == "abs":
                    value = payload % WORD_MOD
                else:
                    value = (value + payload) % WORD_MOD
            return value

        # ---- Phase 1 layer: shard-final values, merge keys excluded -
        phase1_layer: Dict[StateKey, int] = {}
        for run in runs:
            for key, value in run.execution.writes.items():
                if key not in pure_merge:
                    phase1_layer[key] = value

        # ---- Phase 2: ordered handoff commit ------------------------
        phase2_writes: Dict[StateKey, int] = {}
        cross_receipts: Dict[int, Receipt] = {}
        cross_footprints: Dict[int, Tuple[Set[StateKey], Set[StateKey]]] = {}
        requeues = 0
        tail_gas = 0
        clock = max((r.execution.metrics.makespan for r in runs), default=0.0)
        clock = max(clock, spec_gas * self.gas_time_scale)

        def overlay_read_at(q: int):
            def read(key: StateKey) -> int:
                if key in pure_merge:
                    return prefix_fold(key, q)
                if key in phase2_writes:
                    return phase2_writes[key]
                if key in phase1_layer:
                    return phase1_layer[key]
                return snapshot.get(key)
            return read

        for q in plan.cross:
            result, writes, seen = spec_runs[q]
            reader_at_q = overlay_read_at(q)
            valid = all(reader_at_q(key) == value for key, value in seen.items())
            attempts = 1
            if not valid:
                # Deterministic abort-and-requeue: rerun against the
                # committed overlay; its reads are trivially consistent.
                requeues += 1
                attempts = 2
                rerun_reader = _RecordingReader(reader_at_q)
                result, writes = run_tx_serially(txs[q], rerun_reader,
                                                 code_resolver, block)
                seen = rerun_reader.seen
                tail_gas += result.gas_used
                if self.obs is not None:
                    mismatch = next((k for k in seen), None)
                    self.obs.handoff_requeued(clock, q, key=mismatch)
            for key, value in writes.items():
                if key in pure_merge:
                    events.setdefault(key, []).append((q, "abs", value))
                else:
                    phase2_writes[key] = value
            cross_receipts[q] = Receipt(index=q, result=result, attempts=attempts)
            cross_footprints[q] = (set(seen), set(writes))
            if self.obs is not None:
                self.obs.handoff_committed(clock, q, requeued=attempts > 1)

        # ---- Escape check (b): handoff order vs later locals --------
        # A cross transaction at q must not have read or written (for
        # non-merge keys) anything a local transaction at p > q realized a
        # conflicting access on — serial order says the local effect comes
        # after.  Static classification prevents this up front; realized
        # divergence from the prediction is what lands here.
        for q in plan.cross:
            cross_reads, cross_writes = cross_footprints[q]
            for key in cross_writes:
                if key in pure_merge:
                    continue
                if any(p > q for p in local_writers.get(key, ())):
                    raise _ShardEscape(FALLBACK_HANDOFF_ORDER)
                if any(p > q for p in local_readers.get(key, ())):
                    raise _ShardEscape(FALLBACK_HANDOFF_ORDER)
            for key in cross_reads:
                if key in pure_merge:
                    continue
                if any(p > q for p in local_writers.get(key, ())):
                    raise _ShardEscape(FALLBACK_HANDOFF_ORDER)

        # ---- Escape check (c): guarded-read seal validation ---------
        # Every registered read of a declared merge key must reach the
        # same verdict against the *global* fold prefix as it did inside
        # its shard; an operand-less (strict) record demands exact value
        # equality instead.
        if merges is not None:
            for run in runs:
                for g, key, observed, own, operand, outcome in run.merge_reads:
                    if key not in pure_merge:
                        continue
                    base = prefix_fold(key, g)
                    if operand is not None:
                        spec = merges.lookup(key)
                        if spec.outcome((base + own) % WORD_MOD,
                                        operand) != outcome:
                            raise _ShardEscape(FALLBACK_MERGE_GUARD)
                    elif (base + own) % WORD_MOD != observed:
                        raise _ShardEscape(FALLBACK_MERGE_GUARD)

        # ---- Seal: compose the block write set ----------------------
        final_writes: Dict[StateKey, int] = dict(phase1_layer)
        final_writes.update(phase2_writes)
        for key in sorted(events, key=lambda k: (k.address.value, k.slot)):
            final_writes[key] = prefix_fold(key, len(txs))

        receipts: List[Receipt] = []
        for run in runs:
            for receipt in run.execution.receipts:
                receipts.append(Receipt(index=run.local_indices[receipt.index],
                                        result=receipt.result,
                                        attempts=receipt.attempts))
        receipts.extend(cross_receipts.values())
        receipts.sort(key=lambda r: r.index)

        metrics = self._base_metrics(threads=threads, receipts=receipts)
        metrics.makespan = clock + tail_gas * self.gas_time_scale
        metrics.shards = self.shards
        metrics.cross_shard_txs = plan.cross_count
        metrics.handoff_requeues = requeues
        for run in runs:
            inner = run.execution.metrics
            metrics.merge_intents += inner.merge_intents
            metrics.merge_tolerated += inner.merge_tolerated
            metrics.resumes += inner.resumes
            metrics.revalidation_hits += inner.revalidation_hits
            metrics.replayed_instructions += inner.replayed_instructions
            metrics.instructions_skipped += inner.instructions_skipped
        if metrics.makespan > 0:
            metrics.utilisation = min(
                1.0, metrics.serial_time / (metrics.makespan * threads))
        return BlockExecution(writes=final_writes, receipts=receipts,
                              metrics=metrics)
