"""Hash partitioning of accounts and storage across execution shards.

A state key belongs to the shard of its *address* — keccak of the account
bytes modulo the shard count, the SeirChain ``SvmExecutor`` idiom — so a
contract's whole storage lives in one shard and a transaction that touches
a single contract (plus same-shard balances) is shard-local.  Partitioning
by address rather than by key keeps footprint classification cheap (one
hash per account, cached) and matches how deployments pin contracts to
shards in practice.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Set

from ..core.hashing import keccak
from ..core.types import Address, StateKey


@lru_cache(maxsize=65536)
def _address_digest(address: Address) -> int:
    return int.from_bytes(keccak(address.to_bytes())[-8:], "big")


def shard_of(address: Address, shards: int) -> int:
    """The shard owning ``address`` (and every storage slot under it)."""
    if shards <= 1:
        return 0
    return _address_digest(address) % shards


def shard_of_key(key: StateKey, shards: int) -> int:
    return shard_of(key.address, shards)


def home_shard(keys: Iterable[StateKey], shards: int) -> Optional[int]:
    """The single shard owning every key, or None when they span shards."""
    home: Optional[int] = None
    for key in keys:
        s = shard_of(key.address, shards)
        if home is None:
            home = s
        elif s != home:
            return None
    return home


def shards_touched(keys: Iterable[StateKey], shards: int) -> Set[int]:
    return {shard_of(key.address, shards) for key in keys}
