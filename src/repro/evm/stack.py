"""The EVM operand stack: 1024 words, LIFO.

Supports O(1) copy-on-write snapshots for VM checkpointing: ``snapshot()``
hands out the backing list and marks it shared; the first mutation after
that copies it, so untouched checkpoints never pay for a copy.
"""

from __future__ import annotations

from typing import List

from ..core.errors import StackOverflow, StackUnderflow
from ..core.words import WORD_MAX
from .opcodes import STACK_LIMIT


class Stack:
    """A bounded stack of 256-bit words."""

    __slots__ = ("_items", "_shared")

    def __init__(self) -> None:
        self._items: List[int] = []
        self._shared = False

    # -- copy-on-write snapshots ---------------------------------------

    def snapshot(self) -> List[int]:
        """O(1): freeze the current contents; both the snapshot and this
        stack copy lazily on their next mutation."""
        self._shared = True
        return self._items

    @classmethod
    def from_snapshot(cls, items: List[int]) -> "Stack":
        stack = cls()
        stack._items = items
        stack._shared = True
        return stack

    def _own(self) -> None:
        if self._shared:
            self._items = list(self._items)
            self._shared = False

    # -- operations ----------------------------------------------------

    def push(self, value: int) -> None:
        if len(self._items) >= STACK_LIMIT:
            raise StackOverflow(f"stack limit of {STACK_LIMIT} exceeded")
        self._own()
        self._items.append(value & WORD_MAX)

    def pop(self) -> int:
        if not self._items:
            raise StackUnderflow("pop from empty stack")
        self._own()
        return self._items.pop()

    def pop_many(self, count: int) -> List[int]:
        """Pop ``count`` items; the first element is the top of stack."""
        if len(self._items) < count:
            raise StackUnderflow(f"need {count} items, have {len(self._items)}")
        self._own()
        taken = self._items[-count:][::-1]
        del self._items[-count:]
        return taken

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` positions below the top without popping."""
        if len(self._items) <= depth:
            raise StackUnderflow(f"peek depth {depth} exceeds stack size")
        return self._items[-1 - depth]

    def dup(self, depth: int) -> None:
        """DUPn: push a copy of the item ``depth-1`` below the top."""
        self.push(self.peek(depth - 1))

    def swap(self, depth: int) -> None:
        """SWAPn: exchange the top with the item ``depth`` below it."""
        if len(self._items) <= depth:
            raise StackUnderflow(f"swap depth {depth} exceeds stack size")
        self._own()
        self._items[-1], self._items[-1 - depth] = (
            self._items[-1 - depth],
            self._items[-1],
        )

    def __len__(self) -> int:
        return len(self._items)

    def as_list(self) -> List[int]:
        """Snapshot of the stack, bottom first (for debugging/traces)."""
        return list(self._items)
