"""The EVM operand stack: 1024 words, LIFO."""

from __future__ import annotations

from typing import List

from ..core.errors import StackOverflow, StackUnderflow
from ..core.words import WORD_MAX
from .opcodes import STACK_LIMIT


class Stack:
    """A bounded stack of 256-bit words."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[int] = []

    def push(self, value: int) -> None:
        if len(self._items) >= STACK_LIMIT:
            raise StackOverflow(f"stack limit of {STACK_LIMIT} exceeded")
        self._items.append(value & WORD_MAX)

    def pop(self) -> int:
        if not self._items:
            raise StackUnderflow("pop from empty stack")
        return self._items.pop()

    def pop_many(self, count: int) -> List[int]:
        """Pop ``count`` items; the first element is the top of stack."""
        if len(self._items) < count:
            raise StackUnderflow(f"need {count} items, have {len(self._items)}")
        taken = self._items[-count:][::-1]
        del self._items[-count:]
        return taken

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` positions below the top without popping."""
        if len(self._items) <= depth:
            raise StackUnderflow(f"peek depth {depth} exceeds stack size")
        return self._items[-1 - depth]

    def dup(self, depth: int) -> None:
        """DUPn: push a copy of the item ``depth-1`` below the top."""
        self.push(self.peek(depth - 1))

    def swap(self, depth: int) -> None:
        """SWAPn: exchange the top with the item ``depth`` below it."""
        if len(self._items) <= depth:
            raise StackUnderflow(f"swap depth {depth} exceeds stack size")
        self._items[-1], self._items[-1 - depth] = (
            self._items[-1 - depth],
            self._items[-1],
        )

    def __len__(self) -> int:
        return len(self._items)

    def as_list(self) -> List[int]:
        """Snapshot of the stack, bottom first (for debugging/traces)."""
        return list(self._items)
