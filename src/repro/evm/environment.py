"""Execution environment: messages, block context, results, logs."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..core.types import Address


@dataclass(frozen=True)
class BlockContext:
    """Block-level environment visible to contracts (NUMBER, TIMESTAMP)."""

    number: int = 0
    timestamp: int = 0


@dataclass(frozen=True)
class Message:
    """One message call: the unit of EVM execution.

    The top-level message of a transaction carries the transaction's gas
    allowance (minus intrinsic gas); nested CALLs forward remaining gas.
    """

    sender: Address
    to: Address
    value: int
    data: bytes
    gas: int
    depth: int = 0

    def function_selector(self) -> int:
        """First 4 bytes of calldata, the Solidity-style dispatch selector."""
        if len(self.data) < 4:
            return 0
        return int.from_bytes(self.data[:4], "big")


@dataclass(frozen=True)
class LogEntry:
    """An emitted event (LOGn)."""

    address: Address
    topics: Tuple[int, ...]
    data: bytes


class HaltReason(Enum):
    """Why an execution frame stopped."""

    SUCCESS = "success"
    REVERT = "revert"
    OUT_OF_GAS = "out_of_gas"
    ASSERT_FAIL = "assert_fail"
    INVALID = "invalid"
    STACK_ERROR = "stack_error"
    BAD_JUMP = "bad_jump"

    @property
    def is_success(self) -> bool:
        return self is HaltReason.SUCCESS

    @property
    def is_deterministic_abort(self) -> bool:
        """Deterministic aborts (paper §IV-E): the contract's own semantics
        terminated execution; the transaction is *not* re-executed."""
        return self is not HaltReason.SUCCESS


@dataclass
class ExecutionResult:
    """Outcome of the top-level message of one transaction."""

    status: HaltReason
    gas_used: int
    return_data: bytes = b""
    logs: List[LogEntry] = field(default_factory=list)
    error: Optional[str] = None
    # Instructions dispatched to produce this result.  A run resumed from a
    # checkpoint reports the checkpoint's count plus its own, so the total
    # always equals the logical cost of the final execution path.
    steps: int = 0

    @property
    def success(self) -> bool:
        return self.status.is_success

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({self.status.value}, gas={self.gas_used}"
            + (f", error={self.error!r}" if self.error else "")
            + ")"
        )
