"""A reference VM driver: runs a message to completion against a journal.

This is the policy-free way to execute a transaction: reads come from the
journal (which itself reads through to a snapshot or overlay), writes are
buffered in the journal, and nested-frame checkpoints map onto journal
checkpoints.  The serial executor, the OCC executor's speculative phase, and
the C-SAG pre-execution all reuse this loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.types import StateKey
from ..state.journal import WriteJournal
from .environment import ExecutionResult, Message
from .events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from .vm import EVM


@dataclass
class TraceRecord:
    """One state access observed while driving a VM, with its gas offset.

    ``gas_used`` is cumulative transaction gas at the moment of the access —
    the discrete-event simulator turns these offsets into timestamps, and the
    C-SAG refiner turns them into ordered access lists.
    """

    kind: str  # "read" | "write"
    key: StateKey
    value: int
    gas_used: int
    pc: int = -1  # bytecode site (-1 for implicit accesses)


@dataclass
class DriveOutcome:
    """Everything observed from one complete message execution."""

    result: ExecutionResult
    read_set: Dict[StateKey, int]
    write_set: Dict[StateKey, int]
    trace: List[TraceRecord] = field(default_factory=list)
    watchpoints_hit: List[int] = field(default_factory=list)


def drive(
    evm: EVM,
    message: Message,
    journal: WriteJournal,
    on_watchpoint: Optional[Callable[[Watchpoint], None]] = None,
    collect_trace: bool = False,
) -> DriveOutcome:
    """Run ``message`` to completion, mediating all state access via
    ``journal``.  On non-success the journal's writes are rolled back, so the
    caller always sees exactly the effects that should persist."""
    trace: List[TraceRecord] = []
    watch_hits: List[int] = []
    outer = journal.checkpoint()
    gen = evm.run(message)
    to_send: object = None
    while True:
        try:
            event = gen.send(to_send)
        except StopIteration as stop:
            result: ExecutionResult = stop.value
            break
        to_send = None
        if isinstance(event, StorageRead):
            value = journal.read(event.key)
            if collect_trace:
                trace.append(TraceRecord("read", event.key, value, event.gas_used, event.pc))
            to_send = value
        elif isinstance(event, StorageWrite):
            journal.write(event.key, event.value)
            if collect_trace:
                trace.append(TraceRecord("write", event.key, event.value, event.gas_used, event.pc))
        elif isinstance(event, FrameCheckpoint):
            to_send = journal.checkpoint()
        elif isinstance(event, FrameCommit):
            journal.commit_checkpoint(event.token)
        elif isinstance(event, FrameRevert):
            journal.revert_to(event.token)
        elif isinstance(event, Watchpoint):
            watch_hits.append(event.pc)
            if on_watchpoint is not None:
                on_watchpoint(event)
        elif isinstance(event, EmittedLog):
            pass  # logs are collected by the VM itself
    if result.success:
        journal.commit_checkpoint(outer)
    else:
        journal.revert_to(outer)
    return DriveOutcome(
        result=result,
        read_set=journal.read_set,
        write_set=journal.write_set,
        trace=trace,
        watchpoints_hit=watch_hits,
    )
