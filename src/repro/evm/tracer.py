"""Execution tracing: step-by-step instruction logs for debugging.

``trace_message`` runs a message on an instrumented interpreter and records
one :class:`TraceStep` per executed instruction — opcode, pc, gas, stack
top — plus every storage access.  This is the ``debug_traceTransaction``
of the reproduction: examples and tests use it to explain schedules, and
``format_trace`` renders a human-readable listing.

Tracing re-executes on a *shadow* interpreter wired for observation; it
never perturbs scheduling state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.types import Address, StateKey
from ..state.journal import WriteJournal
from .assembler import disassemble
from .environment import ExecutionResult, Message
from .events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from .opcodes import Op
from .vm import EVM


@dataclass(frozen=True)
class TraceStep:
    """One storage-relevant step of an execution."""

    kind: str                 # "read" | "write" | "frame" | "log"
    gas_used: int
    detail: str
    key: Optional[StateKey] = None
    value: Optional[int] = None


@dataclass
class ExecutionTrace:
    """Everything observed while tracing one message."""

    result: ExecutionResult
    steps: List[TraceStep] = field(default_factory=list)
    reads: Dict[StateKey, int] = field(default_factory=dict)
    writes: Dict[StateKey, int] = field(default_factory=dict)

    @property
    def storage_ops(self) -> int:
        return sum(1 for s in self.steps if s.kind in ("read", "write"))


def trace_message(
    code_resolver: Callable[[Address], bytes],
    message: Message,
    state_reader: Callable[[StateKey], int],
    block=None,
) -> ExecutionTrace:
    """Execute ``message`` and record its storage-level trace."""
    evm = EVM(code_resolver, block=block)
    journal = WriteJournal(state_reader)
    steps: List[TraceStep] = []

    generator = evm.run(message)
    to_send: object = None
    while True:
        try:
            event = generator.send(to_send)
        except StopIteration as stop:
            result: ExecutionResult = stop.value
            break
        to_send = None
        if isinstance(event, StorageRead):
            value = journal.read(event.key)
            steps.append(TraceStep(
                "read", event.gas_used,
                f"SLOAD  {event.key} -> {value}", event.key, value,
            ))
            to_send = value
        elif isinstance(event, StorageWrite):
            journal.write(event.key, event.value)
            steps.append(TraceStep(
                "write", event.gas_used,
                f"SSTORE {event.key} <- {event.value}", event.key, event.value,
            ))
        elif isinstance(event, FrameCheckpoint):
            to_send = journal.checkpoint()
            steps.append(TraceStep("frame", event.gas_used, "CALL: frame opened"))
        elif isinstance(event, FrameCommit):
            journal.commit_checkpoint(event.token)
            steps.append(TraceStep("frame", event.gas_used, "CALL: frame committed"))
        elif isinstance(event, FrameRevert):
            journal.revert_to(event.token)
            steps.append(TraceStep("frame", event.gas_used, "CALL: frame reverted"))
        elif isinstance(event, EmittedLog):
            steps.append(TraceStep(
                "log", event.gas_used,
                f"LOG topics={event.topics} data=0x{event.data.hex()}",
            ))
        elif isinstance(event, Watchpoint):
            steps.append(TraceStep(
                "frame", event.gas_used, f"release point @ pc {event.pc}",
            ))

    trace = ExecutionTrace(result=result, steps=steps)
    trace.reads = journal.read_set
    trace.writes = journal.write_set if result.success else {}
    return trace


def format_trace(trace: ExecutionTrace, max_steps: int = 200) -> str:
    """Render a trace as an indented listing."""
    lines = [f"{trace.result!r}"]
    for step in trace.steps[:max_steps]:
        lines.append(f"  @gas {step.gas_used:>8,d}  {step.detail}")
    if len(trace.steps) > max_steps:
        lines.append(f"  … {len(trace.steps) - max_steps} more steps")
    lines.append(
        f"  reads: {len(trace.reads)}  writes: {len(trace.writes)}  "
        f"gas: {trace.result.gas_used:,}"
    )
    return "\n".join(lines)


def gas_profile(code: bytes) -> Dict[str, Tuple[int, int]]:
    """Static opcode histogram of a code blob: name -> (count, static gas).

    A quick what-is-this-contract-made-of summary for docs and debugging.
    """
    from .opcodes import opcode_info

    profile: Dict[str, Tuple[int, int]] = {}
    for instruction in disassemble(code):
        info = opcode_info(int(instruction.op))
        gas = info.gas if info else 0
        count, total = profile.get(instruction.op.name, (0, 0))
        profile[instruction.op.name] = (count + 1, total + gas)
    return profile
