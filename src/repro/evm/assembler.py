"""Assembler and disassembler for EVM bytecode.

The assembler is the compiler's backend and the test suite's workhorse: it
supports symbolic labels (resolved in a second pass to fixed-width PUSH2
operands) so control flow can be written without hand-computing offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core.errors import ReproError
from .opcodes import Op, is_push, opcode_info, push_op


class AssemblyError(ReproError):
    """Malformed assembly input (unknown label, bad operand, ...)."""


@dataclass(frozen=True)
class LabelRef:
    """A forward/backward reference to a label, emitted as PUSH2."""

    name: str


_Item = Union[Op, int, LabelRef, str]


class Assembler:
    """Incremental bytecode builder with label support.

    Usage::

        asm = Assembler()
        asm.push(5).push(3).op(Op.ADD)
        asm.jump("done")
        ...
        asm.label("done").op(Op.JUMPDEST).op(Op.STOP)
        code = asm.assemble()
    """

    def __init__(self) -> None:
        self._items: List[Tuple[str, object]] = []
        self._label_names: set = set()

    # -- emission ------------------------------------------------------

    def op(self, op: Op) -> "Assembler":
        self._items.append(("op", op))
        return self

    def push(self, value: int) -> "Assembler":
        """PUSHn with the smallest width that fits ``value``."""
        if value < 0:
            raise AssemblyError(f"cannot push negative literal {value}")
        width = max(1, (value.bit_length() + 7) // 8)
        if width > 32:
            raise AssemblyError(f"literal too wide: {value:#x}")
        self._items.append(("push", (width, value)))
        return self

    def push_label(self, name: str) -> "Assembler":
        """PUSH2 whose operand is the bytecode offset of ``name``."""
        self._items.append(("pushlabel", name))
        return self

    def label(self, name: str) -> "Assembler":
        if name in self._label_names:
            raise AssemblyError(f"duplicate label {name!r}")
        self._label_names.add(name)
        self._items.append(("label", name))
        return self

    def jump(self, name: str) -> "Assembler":
        return self.push_label(name).op(Op.JUMP)

    def jumpi(self, name: str) -> "Assembler":
        return self.push_label(name).op(Op.JUMPI)

    def jumpdest(self, name: Optional[str] = None) -> "Assembler":
        if name is not None:
            self.label(name)
        return self.op(Op.JUMPDEST)

    def raw(self, data: bytes) -> "Assembler":
        self._items.append(("raw", data))
        return self

    # -- assembly ------------------------------------------------------

    def assemble(self) -> bytes:
        offsets = self._compute_offsets()
        out = bytearray()
        for kind, payload in self._items:
            if kind == "op":
                out.append(int(payload))
            elif kind == "push":
                width, value = payload  # type: ignore[misc]
                out.append(int(push_op(width)))
                out.extend(value.to_bytes(width, "big"))
            elif kind == "pushlabel":
                target = offsets.get(payload)  # type: ignore[arg-type]
                if target is None:
                    raise AssemblyError(f"undefined label {payload!r}")
                out.append(int(Op.PUSH2))
                out.extend(target.to_bytes(2, "big"))
            elif kind == "raw":
                out.extend(payload)  # type: ignore[arg-type]
            # labels emit nothing
        return bytes(out)

    def _compute_offsets(self) -> Dict[str, int]:
        offsets: Dict[str, int] = {}
        pc = 0
        for kind, payload in self._items:
            if kind == "label":
                offsets[payload] = pc  # type: ignore[index]
            elif kind == "op":
                pc += 1
            elif kind == "push":
                width, _ = payload  # type: ignore[misc]
                pc += 1 + width
            elif kind == "pushlabel":
                pc += 3  # PUSH2 + 2 bytes
            elif kind == "raw":
                pc += len(payload)  # type: ignore[arg-type]
        return offsets

    @property
    def size(self) -> int:
        """Current bytecode size (labels resolved)."""
        pc = 0
        for kind, payload in self._items:
            if kind == "op":
                pc += 1
            elif kind == "push":
                pc += 1 + payload[0]  # type: ignore[index]
            elif kind == "pushlabel":
                pc += 3
            elif kind == "raw":
                pc += len(payload)  # type: ignore[arg-type]
        return pc


def assemble(source: str) -> bytes:
    """Assemble a textual listing.

    Grammar (one instruction per line, ``;`` comments)::

        start:              ; label definition
          PUSH 0x20         ; numeric push (auto-width)
          PUSH :start       ; label push
          JUMP
          STOP
    """
    asm = Assembler()
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            asm.label(line[:-1].strip())
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic == "PUSH":
            if len(parts) != 2:
                raise AssemblyError(f"line {line_no}: PUSH needs one operand")
            operand = parts[1]
            if operand.startswith(":"):
                asm.push_label(operand[1:])
            else:
                asm.push(int(operand, 0))
            continue
        try:
            op = Op[mnemonic]
        except KeyError:
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}") from None
        if len(parts) == 2 and is_push(int(op)):
            # Explicit-width form: PUSH1 0x05
            asm._items.append(("push", (int(op) - int(Op.PUSH1) + 1, int(parts[1], 0))))
            continue
        if len(parts) != 1:
            raise AssemblyError(f"line {line_no}: unexpected operand for {mnemonic}")
        asm.op(op)
    return asm.assemble()


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    pc: int
    op: Op
    operand: Optional[int] = None

    @property
    def size(self) -> int:
        info = opcode_info(int(self.op))
        assert info is not None
        return 1 + info.immediate

    @property
    def next_pc(self) -> int:
        return self.pc + self.size

    def __str__(self) -> str:
        if self.operand is not None:
            return f"{self.pc:05d}: {self.op.name} {self.operand:#x}"
        return f"{self.pc:05d}: {self.op.name}"


def disassemble(code: bytes) -> Iterator[Instruction]:
    """Decode bytecode into instructions; undefined bytes become INVALID."""
    pc = 0
    while pc < len(code):
        byte = code[pc]
        info = opcode_info(byte)
        if info is None:
            yield Instruction(pc, Op.INVALID, operand=byte)
            pc += 1
            continue
        operand = None
        if info.immediate:
            operand = int.from_bytes(code[pc + 1 : pc + 1 + info.immediate], "big")
        yield Instruction(pc, info.op, operand)
        pc += 1 + info.immediate


def format_disassembly(code: bytes) -> str:
    """Human-readable listing of a whole code blob."""
    return "\n".join(str(instr) for instr in disassemble(code))
