"""VM events: the fine-grained state-access interface.

The interpreter is a generator that *yields* one of these events whenever it
needs to interact with shared state and *receives* the answer via ``send``.
This is the mechanism that lets every scheduler in the paper be expressed as
a driver loop: serial execution answers reads from the current state, OCC
answers from a snapshot, and DMVCC answers from access sequences — the VM
itself never changes.

Every event carries ``gas_used`` (cumulative gas consumed by the transaction
up to the event), which the discrete-event simulator converts into time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.types import Address, StateKey


@dataclass(frozen=True)
class VMEvent:
    """Base class; ``gas_used`` is cumulative at the moment of the yield."""

    gas_used: int


@dataclass(frozen=True)
class StorageRead(VMEvent):
    """SLOAD / BALANCE: the driver must ``send`` the value (an int).

    ``pc`` is the bytecode site of the access (-1 for implicit accesses such
    as CALL value transfers); the commutativity analysis matches it against
    static increment sites.
    """

    key: StateKey
    pc: int = -1


@dataclass(frozen=True)
class StorageWrite(VMEvent):
    """SSTORE / balance update: the driver buffers it and ``send``s None."""

    key: StateKey
    value: int
    pc: int = -1


@dataclass(frozen=True)
class FrameCheckpoint(VMEvent):
    """A nested call frame opened; the driver must ``send`` a revert token."""

    depth: int


@dataclass(frozen=True)
class FrameCommit(VMEvent):
    """The frame for ``token`` completed successfully; keep its writes."""

    token: int


@dataclass(frozen=True)
class FrameRevert(VMEvent):
    """The frame for ``token`` reverted; discard its writes."""

    token: int


@dataclass(frozen=True)
class Watchpoint(VMEvent):
    """Execution reached a pc the driver asked to observe (release points).

    ``gas_remaining`` lets the driver apply the paper's gas-sufficiency check
    before publishing writes early.
    """

    pc: int
    address: Address
    gas_remaining: int


@dataclass(frozen=True)
class EmittedLog(VMEvent):
    """A LOGn instruction fired (informational; driver ``send``s None)."""

    address: Address
    topics: Tuple[int, ...]
    data: bytes
