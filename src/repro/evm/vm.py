"""The resumable EVM interpreter.

:meth:`EVM.run` is a generator: it yields :mod:`repro.evm.events` whenever
the contract touches shared state (SLOAD, SSTORE, BALANCE, value transfer)
or crosses a driver-registered *watchpoint* (used for the paper's release
points), and receives the answers via ``send``.  The scheduler owns all
policy — where reads come from, when writes become visible — which is
exactly the separation the paper's fine-grained state-access control needs.

Gas model notes (documented deviations from mainnet, none of which affect
scheduling behaviour):

* nested CALLs forward all remaining gas (no 63/64 rule);
* SSTORE is charged a flat ``GAS_SSTORE_RESET`` so that metering never
  forces a hidden read of the slot's previous value (which would pollute
  read sets);
* refunds are not modelled.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Generator, Mapping, Optional, Tuple

from ..core import words
from ..core.errors import (
    AssertionFailure,
    CallDepthExceeded,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
)
from ..core.hashing import keccak
from ..core.types import Address, StateKey
from ..core.words import WORD_BYTES, bytes_to_word, to_word
from .environment import BlockContext, ExecutionResult, HaltReason, LogEntry, Message
from .events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    VMEvent,
    Watchpoint,
)
from .memory import Memory
from .opcodes import (
    CALL_DEPTH_LIMIT,
    GAS_CALL_VALUE,
    GAS_COPY_WORD,
    GAS_EXP_BYTE,
    GAS_LOG_DATA_BYTE,
    GAS_SHA3_WORD,
    GAS_SSTORE_RESET,
    Op,
    is_push,
    opcode_info,
)
from .stack import Stack

CodeResolver = Callable[[Address], bytes]
WatchMap = Mapping[Address, FrozenSet[int]]

_ADDRESS_MASK = (1 << 160) - 1
_EMPTY_WATCH: FrozenSet[int] = frozenset()

_jumpdest_cache: Dict[bytes, FrozenSet[int]] = {}


def valid_jumpdests(code: bytes) -> FrozenSet[int]:
    """All pcs holding a JUMPDEST that is not inside PUSH immediate data."""
    cached = _jumpdest_cache.get(code)
    if cached is not None:
        return cached
    dests = set()
    pc = 0
    while pc < len(code):
        byte = code[pc]
        if byte == int(Op.JUMPDEST):
            dests.add(pc)
        if is_push(byte):
            pc += byte - int(Op.PUSH1) + 2
        else:
            pc += 1
    result = frozenset(dests)
    if len(_jumpdest_cache) < 4096:
        _jumpdest_cache[code] = result
    return result


class EVM:
    """One EVM instance.  Instances are cheap; the paper's validator creates
    one per concurrently-executing transaction."""

    def __init__(
        self,
        code_resolver: CodeResolver,
        block: Optional[BlockContext] = None,
        watchpoints: Optional[WatchMap] = None,
    ) -> None:
        self._resolve_code = code_resolver
        self.block = block if block is not None else BlockContext()
        self._watchpoints = dict(watchpoints) if watchpoints else {}
        self._gas_limit = 0
        self._gas_left = 0
        self._logs: list = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, message: Message) -> Generator[VMEvent, object, ExecutionResult]:
        """Execute ``message``; a generator yielding VM events.

        Drive it with ``send()``; it returns an :class:`ExecutionResult` via
        ``StopIteration.value``.  The driver is responsible for discarding
        buffered writes when the result is not successful.
        """
        self._gas_limit = message.gas
        self._gas_left = message.gas
        self._logs = []
        try:
            status, return_data = yield from self._execute(message)
            gas_used = self._gas_limit - self._gas_left
            error = "execution reverted" if status is HaltReason.REVERT else None
            return ExecutionResult(status, gas_used, return_data, self._logs, error)
        except OutOfGas as exc:
            return ExecutionResult(HaltReason.OUT_OF_GAS, self._gas_limit, b"", self._logs, str(exc))
        except AssertionFailure as exc:
            # INVALID consumes all gas, as on mainnet.
            return ExecutionResult(HaltReason.ASSERT_FAIL, self._gas_limit, b"", self._logs, str(exc))
        except (StackOverflow, StackUnderflow) as exc:
            return ExecutionResult(HaltReason.STACK_ERROR, self._gas_limit, b"", self._logs, str(exc))
        except InvalidJump as exc:
            return ExecutionResult(HaltReason.BAD_JUMP, self._gas_limit, b"", self._logs, str(exc))
        except (InvalidOpcode, CallDepthExceeded) as exc:
            return ExecutionResult(HaltReason.INVALID, self._gas_limit, b"", self._logs, str(exc))

    # ------------------------------------------------------------------
    # Gas
    # ------------------------------------------------------------------

    @property
    def gas_used(self) -> int:
        return self._gas_limit - self._gas_left

    def _use_gas(self, amount: int) -> None:
        if amount > self._gas_left:
            self._gas_left = 0
            raise OutOfGas(f"needed {amount} gas")
        self._gas_left -= amount

    # ------------------------------------------------------------------
    # Frame execution
    # ------------------------------------------------------------------

    def _execute(
        self, message: Message
    ) -> Generator[VMEvent, object, Tuple[HaltReason, bytes]]:
        if message.depth > CALL_DEPTH_LIMIT:
            raise CallDepthExceeded(f"call depth {message.depth}")
        code = self._resolve_code(message.to)
        if not code:
            return HaltReason.SUCCESS, b""

        stack = Stack()
        memory = Memory()
        pc = 0
        self_address = message.to
        watch = self._watchpoints.get(self_address, _EMPTY_WATCH)
        jumpdests = valid_jumpdests(code)

        while True:
            if pc >= len(code):
                return HaltReason.SUCCESS, b""
            byte = code[pc]
            info = opcode_info(byte)
            if info is None:
                raise InvalidOpcode(f"undefined opcode {byte:#04x} at pc {pc}")
            op = info.op

            if pc in watch:
                yield Watchpoint(self.gas_used, pc, self_address, self._gas_left)

            self._use_gas(info.gas)

            # ---- control flow -------------------------------------------------
            if op is Op.STOP:
                return HaltReason.SUCCESS, b""
            if op is Op.JUMP:
                dest = stack.pop()
                if dest not in jumpdests:
                    raise InvalidJump(f"jump to {dest} from pc {pc}")
                pc = dest
                continue
            if op is Op.JUMPI:
                dest, cond = stack.pop(), stack.pop()
                if cond != 0:
                    if dest not in jumpdests:
                        raise InvalidJump(f"jumpi to {dest} from pc {pc}")
                    pc = dest
                    continue
                pc += 1
                continue
            if op is Op.JUMPDEST:
                pc += 1
                continue
            if op is Op.RETURN:
                offset, length = stack.pop(), stack.pop()
                self._use_gas(memory.expansion_cost(offset, length))
                return HaltReason.SUCCESS, memory.read(offset, length)
            if op is Op.REVERT:
                offset, length = stack.pop(), stack.pop()
                self._use_gas(memory.expansion_cost(offset, length))
                return HaltReason.REVERT, memory.read(offset, length)
            if op is Op.INVALID:
                raise AssertionFailure(f"INVALID at pc {pc}")

            # ---- pushes / dups / swaps ----------------------------------------
            if info.immediate:
                operand = bytes_to_word(code[pc + 1 : pc + 1 + info.immediate])
                stack.push(operand)
                pc += 1 + info.immediate
                continue
            if Op.DUP1 <= op <= Op.DUP16:
                stack.dup(int(op) - int(Op.DUP1) + 1)
                pc += 1
                continue
            if Op.SWAP1 <= op <= Op.SWAP16:
                stack.swap(int(op) - int(Op.SWAP1) + 1)
                pc += 1
                continue

            # ---- storage: the events the whole paper is about ------------------
            if op is Op.SLOAD:
                slot = stack.pop()
                value = yield StorageRead(self.gas_used, StateKey(self_address, slot), pc)
                stack.push(to_word(int(value)))  # type: ignore[arg-type]
                pc += 1
                continue
            if op is Op.SSTORE:
                slot, value = stack.pop(), stack.pop()
                self._use_gas(GAS_SSTORE_RESET)
                yield StorageWrite(self.gas_used, StateKey(self_address, slot), value, pc)
                pc += 1
                continue
            if op is Op.BALANCE:
                address = Address(stack.pop() & _ADDRESS_MASK)
                value = yield StorageRead(self.gas_used, StateKey.balance(address), pc)
                stack.push(to_word(int(value)))  # type: ignore[arg-type]
                pc += 1
                continue
            if op is Op.SELFBALANCE:
                value = yield StorageRead(self.gas_used, StateKey.balance(self_address), pc)
                stack.push(to_word(int(value)))  # type: ignore[arg-type]
                pc += 1
                continue

            # ---- environment ----------------------------------------------------
            if op is Op.ADDRESS:
                stack.push(self_address.to_word())
            elif op is Op.ORIGIN or op is Op.CALLER:
                stack.push(message.sender.to_word())
            elif op is Op.CALLVALUE:
                stack.push(message.value)
            elif op is Op.CALLDATALOAD:
                offset = stack.pop()
                chunk = message.data[offset : offset + WORD_BYTES]
                stack.push(bytes_to_word(chunk.ljust(WORD_BYTES, b"\x00")))
            elif op is Op.CALLDATASIZE:
                stack.push(len(message.data))
            elif op is Op.CALLDATACOPY:
                dest, src, length = stack.pop(), stack.pop(), stack.pop()
                self._use_gas(memory.expansion_cost(dest, length))
                self._use_gas(GAS_COPY_WORD * ((length + 31) // 32))
                chunk = message.data[src : src + length].ljust(length, b"\x00")
                memory.write(dest, chunk)
            elif op is Op.TIMESTAMP:
                stack.push(self.block.timestamp)
            elif op is Op.NUMBER:
                stack.push(self.block.number)
            elif op is Op.PC:
                stack.push(pc)
            elif op is Op.MSIZE:
                stack.push(len(memory))
            elif op is Op.GAS:
                stack.push(self._gas_left)
            elif op is Op.POP:
                stack.pop()

            # ---- memory ---------------------------------------------------------
            elif op is Op.MLOAD:
                offset = stack.pop()
                self._use_gas(memory.expansion_cost(offset, WORD_BYTES))
                stack.push(memory.read_word(offset))
            elif op is Op.MSTORE:
                offset, value = stack.pop(), stack.pop()
                self._use_gas(memory.expansion_cost(offset, WORD_BYTES))
                memory.write_word(offset, value)
            elif op is Op.MSTORE8:
                offset, value = stack.pop(), stack.pop()
                self._use_gas(memory.expansion_cost(offset, 1))
                memory.write_byte(offset, value)

            # ---- hashing --------------------------------------------------------
            elif op is Op.SHA3:
                offset, length = stack.pop(), stack.pop()
                self._use_gas(memory.expansion_cost(offset, length))
                self._use_gas(GAS_SHA3_WORD * ((length + 31) // 32))
                stack.push(bytes_to_word(keccak(memory.read(offset, length))))

            # ---- arithmetic / logic --------------------------------------------
            elif op is Op.ADD:
                stack.push(words.add(stack.pop(), stack.pop()))
            elif op is Op.MUL:
                stack.push(words.mul(stack.pop(), stack.pop()))
            elif op is Op.SUB:
                a, b = stack.pop(), stack.pop()
                stack.push(words.sub(a, b))
            elif op is Op.DIV:
                a, b = stack.pop(), stack.pop()
                stack.push(words.div(a, b))
            elif op is Op.SDIV:
                a, b = stack.pop(), stack.pop()
                stack.push(words.sdiv(a, b))
            elif op is Op.MOD:
                a, b = stack.pop(), stack.pop()
                stack.push(words.mod(a, b))
            elif op is Op.SMOD:
                a, b = stack.pop(), stack.pop()
                stack.push(words.smod(a, b))
            elif op is Op.ADDMOD:
                a, b, n = stack.pop(), stack.pop(), stack.pop()
                stack.push(words.addmod(a, b, n))
            elif op is Op.MULMOD:
                a, b, n = stack.pop(), stack.pop(), stack.pop()
                stack.push(words.mulmod(a, b, n))
            elif op is Op.EXP:
                base, exponent = stack.pop(), stack.pop()
                self._use_gas(GAS_EXP_BYTE * ((exponent.bit_length() + 7) // 8))
                stack.push(words.exp(base, exponent))
            elif op is Op.LT:
                a, b = stack.pop(), stack.pop()
                stack.push(words.lt(a, b))
            elif op is Op.GT:
                a, b = stack.pop(), stack.pop()
                stack.push(words.gt(a, b))
            elif op is Op.SLT:
                a, b = stack.pop(), stack.pop()
                stack.push(words.slt(a, b))
            elif op is Op.SGT:
                a, b = stack.pop(), stack.pop()
                stack.push(words.sgt(a, b))
            elif op is Op.EQ:
                stack.push(words.eq(stack.pop(), stack.pop()))
            elif op is Op.ISZERO:
                stack.push(words.iszero(stack.pop()))
            elif op is Op.AND:
                stack.push(stack.pop() & stack.pop())
            elif op is Op.OR:
                stack.push(stack.pop() | stack.pop())
            elif op is Op.XOR:
                stack.push(stack.pop() ^ stack.pop())
            elif op is Op.NOT:
                stack.push(words.bitwise_not(stack.pop()))
            elif op is Op.BYTE:
                index, value = stack.pop(), stack.pop()
                stack.push(words.byte(index, value))
            elif op is Op.SHL:
                shift, value = stack.pop(), stack.pop()
                stack.push(words.shl(shift, value))
            elif op is Op.SHR:
                shift, value = stack.pop(), stack.pop()
                stack.push(words.shr(shift, value))
            elif op is Op.SAR:
                shift, value = stack.pop(), stack.pop()
                stack.push(words.sar(shift, value))

            # ---- logs -----------------------------------------------------------
            elif Op.LOG0 <= op <= Op.LOG3:
                topic_count = int(op) - int(Op.LOG0)
                offset, length = stack.pop(), stack.pop()
                topics = tuple(stack.pop() for _ in range(topic_count))
                self._use_gas(memory.expansion_cost(offset, length))
                self._use_gas(GAS_LOG_DATA_BYTE * length)
                data = memory.read(offset, length)
                self._logs.append(LogEntry(self_address, topics, data))
                yield EmittedLog(self.gas_used, self_address, topics, data)

            # ---- message call ---------------------------------------------------
            elif op is Op.CALL:
                status = yield from self._do_call(message, stack, memory)
                stack.push(status)
            else:  # pragma: no cover - table and dispatch are kept in sync
                raise InvalidOpcode(f"unhandled opcode {op.name}")

            pc += 1

    # ------------------------------------------------------------------
    # CALL
    # ------------------------------------------------------------------

    def _do_call(
        self, message: Message, stack: Stack, memory: Memory
    ) -> Generator[VMEvent, object, int]:
        """Execute a nested CALL; returns 1 on success, 0 on failure."""
        _gas, to_word_, value, in_off, in_len, out_off, out_len = (
            stack.pop() for _ in range(7)
        )
        to = Address(to_word_ & _ADDRESS_MASK)
        self._use_gas(memory.expansion_cost(in_off, in_len))
        self._use_gas(memory.expansion_cost(out_off, out_len))
        if value > 0:
            self._use_gas(GAS_CALL_VALUE)
        data = memory.read(in_off, in_len)

        token = yield FrameCheckpoint(self.gas_used, message.depth + 1)
        if value > 0:
            sender_key = StateKey.balance(message.to)
            sender_balance = int((yield StorageRead(self.gas_used, sender_key)))  # type: ignore[arg-type]
            if sender_balance < value:
                yield FrameRevert(self.gas_used, int(token))  # type: ignore[arg-type]
                return 0
            yield StorageWrite(self.gas_used, sender_key, sender_balance - value)
            to_key = StateKey.balance(to)
            to_balance = int((yield StorageRead(self.gas_used, to_key)))  # type: ignore[arg-type]
            yield StorageWrite(self.gas_used, to_key, to_balance + value)

        inner = Message(
            sender=message.to,
            to=to,
            value=value,
            data=data,
            gas=self._gas_left,
            depth=message.depth + 1,
        )
        status, return_data = yield from self._execute(inner)
        if status is HaltReason.SUCCESS:
            yield FrameCommit(self.gas_used, int(token))  # type: ignore[arg-type]
            memory.write(out_off, return_data[:out_len].ljust(min(out_len, len(return_data)), b"\x00"))
            return 1
        yield FrameRevert(self.gas_used, int(token))  # type: ignore[arg-type]
        return 0
