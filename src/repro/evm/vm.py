"""The resumable, checkpointable EVM interpreter.

:meth:`EVM.run` is a generator: it yields :mod:`repro.evm.events` whenever
the contract touches shared state (SLOAD, SSTORE, BALANCE, value transfer)
or crosses a driver-registered *watchpoint* (used for the paper's release
points), and receives the answers via ``send``.  The scheduler owns all
policy — where reads come from, when writes become visible — which is
exactly the separation the paper's fine-grained state-access control needs.

The interpreter runs an explicit frame stack (rather than recursing through
Python generators for nested CALLs) so that the complete machine state is
a plain data structure.  That makes :meth:`EVM.checkpoint` possible: while
the generator is suspended at a storage-read yield, the driver can take an
O(1) copy-on-write snapshot of every frame (pc, stack, memory, pending
output window) plus gas and logs, and later :meth:`EVM.resume` from it —
the machinery behind DMVCC's resume-from-first-invalidated-read abort path
(see docs/REEXECUTION.md).

Gas model notes (documented deviations from mainnet, none of which affect
scheduling behaviour):

* nested CALLs forward all remaining gas (no 63/64 rule);
* SSTORE is charged a flat ``GAS_SSTORE_RESET`` so that metering never
  forces a hidden read of the slot's previous value (which would pollute
  read sets);
* refunds are not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core import words
from ..core.errors import (
    AssertionFailure,
    CallDepthExceeded,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
)
from ..core.hashing import keccak
from ..core.types import Address, StateKey
from ..core.words import WORD_BYTES, bytes_to_word, to_word
from .environment import BlockContext, ExecutionResult, HaltReason, LogEntry, Message
from .events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    VMEvent,
    Watchpoint,
)
from .memory import Memory
from .opcodes import (
    CALL_DEPTH_LIMIT,
    GAS_CALL_VALUE,
    GAS_COPY_WORD,
    GAS_EXP_BYTE,
    GAS_LOG_DATA_BYTE,
    GAS_SHA3_WORD,
    GAS_SSTORE_RESET,
    Op,
    is_push,
    opcode_info,
)
from .stack import Stack

CodeResolver = Callable[[Address], bytes]
WatchMap = Mapping[Address, FrozenSet[int]]

_ADDRESS_MASK = (1 << 160) - 1
_EMPTY_WATCH: FrozenSet[int] = frozenset()

_jumpdest_cache: Dict[bytes, FrozenSet[int]] = {}


def valid_jumpdests(code: bytes) -> FrozenSet[int]:
    """All pcs holding a JUMPDEST that is not inside PUSH immediate data."""
    cached = _jumpdest_cache.get(code)
    if cached is not None:
        return cached
    dests = set()
    pc = 0
    while pc < len(code):
        byte = code[pc]
        if byte == int(Op.JUMPDEST):
            dests.add(pc)
        if is_push(byte):
            pc += byte - int(Op.PUSH1) + 2
        else:
            pc += 1
    result = frozenset(dests)
    if len(_jumpdest_cache) < 4096:
        _jumpdest_cache[code] = result
    return result


class _Frame:
    """One call frame of the explicit interpreter stack.

    ``out_off``/``out_len``/``token`` hold the pending CALL's output window
    and driver frame token while a child frame executes, so the unwind step
    after the child halts needs no extra bookkeeping.
    """

    __slots__ = (
        "message",
        "code",
        "stack",
        "memory",
        "pc",
        "self_address",
        "watch",
        "jumpdests",
        "out_off",
        "out_len",
        "token",
    )

    def __init__(self, message: Message, code: bytes, watch: FrozenSet[int]) -> None:
        self.message = message
        self.code = code
        self.stack = Stack()
        self.memory = Memory()
        self.pc = 0
        self.self_address = message.to
        self.watch = watch
        self.jumpdests = valid_jumpdests(code)
        self.out_off = 0
        self.out_len = 0
        self.token = 0


@dataclass(frozen=True)
class _FrameSnapshot:
    """Copy-on-write image of one frame.  ``stack_items``/``memory_data``
    are the live containers marked shared — never mutate them directly."""

    message: Message
    code: bytes
    pc: int
    stack_items: List[int]
    memory_data: bytearray
    out_off: int
    out_len: int
    token: int


@dataclass(frozen=True)
class VMCheckpoint:
    """A suspended interpreter, frozen at a storage-read boundary.

    ``event`` is the :class:`StorageRead` the VM is waiting on; resuming
    re-yields it so the driver can answer with a freshly-resolved value.
    Taking a checkpoint is O(frames): stacks and memories are shared
    copy-on-write, so nothing is copied until one side mutates.
    """

    event: StorageRead
    gas_limit: int
    gas_left: int
    steps: int
    logs: Tuple[LogEntry, ...]
    frames: Tuple[_FrameSnapshot, ...]

    @property
    def depth(self) -> int:
        return len(self.frames)


class EVM:
    """One EVM instance.  Instances are cheap; the paper's validator creates
    one per concurrently-executing transaction."""

    def __init__(
        self,
        code_resolver: CodeResolver,
        block: Optional[BlockContext] = None,
        watchpoints: Optional[WatchMap] = None,
    ) -> None:
        self._resolve_code = code_resolver
        self.block = block if block is not None else BlockContext()
        self._watchpoints = dict(watchpoints) if watchpoints else {}
        self._gas_limit = 0
        self._gas_left = 0
        self._logs: list = []
        self._steps = 0
        self._frames: List[_Frame] = []
        self._checkpoint_ctx: Optional[StorageRead] = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, message: Message) -> Generator[VMEvent, object, ExecutionResult]:
        """Execute ``message``; a generator yielding VM events.

        Drive it with ``send()``; it returns an :class:`ExecutionResult` via
        ``StopIteration.value``.  The driver is responsible for discarding
        buffered writes when the result is not successful.
        """
        self._gas_limit = message.gas
        self._gas_left = message.gas
        self._logs = []
        self._steps = 0
        self._frames = []
        self._checkpoint_ctx = None
        return (yield from self._package(self._boot(message)))

    def resume(
        self, checkpoint: VMCheckpoint
    ) -> Generator[VMEvent, object, ExecutionResult]:
        """Continue execution from ``checkpoint``.

        The first yielded event is the checkpoint's pending
        :class:`StorageRead`; the driver answers it (possibly with a
        different value than the original attempt saw) and execution
        proceeds exactly as a fresh run would from that point.  The same
        checkpoint can be resumed any number of times.
        """
        self._gas_limit = checkpoint.gas_limit
        self._gas_left = checkpoint.gas_left
        self._logs = list(checkpoint.logs)
        self._steps = checkpoint.steps
        self._checkpoint_ctx = None
        self._frames = [self._restore_frame(snap) for snap in checkpoint.frames]
        return (
            yield from self._package(
                self._run_frames(self._frames, checkpoint.event)
            )
        )

    def checkpoint(self) -> Optional[VMCheckpoint]:
        """Snapshot the suspended interpreter, or ``None`` when the current
        suspension is not a checkpointable storage-read boundary (e.g. the
        CALL funding micro-sequence or an SSTORE)."""
        event = self._checkpoint_ctx
        if event is None:
            return None
        return VMCheckpoint(
            event=event,
            gas_limit=self._gas_limit,
            gas_left=self._gas_left,
            steps=self._steps,
            logs=tuple(self._logs),
            frames=tuple(
                _FrameSnapshot(
                    message=frame.message,
                    code=frame.code,
                    pc=frame.pc,
                    stack_items=frame.stack.snapshot(),
                    memory_data=frame.memory.snapshot(),
                    out_off=frame.out_off,
                    out_len=frame.out_len,
                    token=frame.token,
                )
                for frame in self._frames
            ),
        )

    # ------------------------------------------------------------------
    # Gas
    # ------------------------------------------------------------------

    @property
    def gas_used(self) -> int:
        return self._gas_limit - self._gas_left

    @property
    def steps(self) -> int:
        """Instructions dispatched so far in this run (resume() starts from
        the checkpoint's count, so the final total matches a fresh run)."""
        return self._steps

    def _use_gas(self, amount: int) -> None:
        if amount > self._gas_left:
            self._gas_left = 0
            raise OutOfGas(f"needed {amount} gas")
        self._gas_left -= amount

    # ------------------------------------------------------------------
    # Result packaging
    # ------------------------------------------------------------------

    def _package(
        self, body: Generator[VMEvent, object, Tuple[HaltReason, bytes]]
    ) -> Generator[VMEvent, object, ExecutionResult]:
        try:
            status, return_data = yield from body
            gas_used = self._gas_limit - self._gas_left
            error = "execution reverted" if status is HaltReason.REVERT else None
            return ExecutionResult(
                status, gas_used, return_data, self._logs, error, self._steps
            )
        except OutOfGas as exc:
            return ExecutionResult(
                HaltReason.OUT_OF_GAS, self._gas_limit, b"", self._logs, str(exc), self._steps
            )
        except AssertionFailure as exc:
            # INVALID consumes all gas, as on mainnet.
            return ExecutionResult(
                HaltReason.ASSERT_FAIL, self._gas_limit, b"", self._logs, str(exc), self._steps
            )
        except (StackOverflow, StackUnderflow) as exc:
            return ExecutionResult(
                HaltReason.STACK_ERROR, self._gas_limit, b"", self._logs, str(exc), self._steps
            )
        except InvalidJump as exc:
            return ExecutionResult(
                HaltReason.BAD_JUMP, self._gas_limit, b"", self._logs, str(exc), self._steps
            )
        except (InvalidOpcode, CallDepthExceeded) as exc:
            return ExecutionResult(
                HaltReason.INVALID, self._gas_limit, b"", self._logs, str(exc), self._steps
            )
        finally:
            self._checkpoint_ctx = None

    def _boot(
        self, message: Message
    ) -> Generator[VMEvent, object, Tuple[HaltReason, bytes]]:
        if message.depth > CALL_DEPTH_LIMIT:
            raise CallDepthExceeded(f"call depth {message.depth}")
        code = self._resolve_code(message.to)
        if not code:
            return HaltReason.SUCCESS, b""
        self._frames = [
            _Frame(message, code, self._watchpoints.get(message.to, _EMPTY_WATCH))
        ]
        return (yield from self._run_frames(self._frames, None))

    def _restore_frame(self, snap: _FrameSnapshot) -> _Frame:
        frame = _Frame.__new__(_Frame)
        frame.message = snap.message
        frame.code = snap.code
        frame.stack = Stack.from_snapshot(snap.stack_items)
        frame.memory = Memory.from_snapshot(snap.memory_data)
        frame.pc = snap.pc
        frame.self_address = snap.message.to
        frame.watch = self._watchpoints.get(snap.message.to, _EMPTY_WATCH)
        frame.jumpdests = valid_jumpdests(snap.code)
        frame.out_off = snap.out_off
        frame.out_len = snap.out_len
        frame.token = snap.token
        return frame

    # ------------------------------------------------------------------
    # The frame machine
    # ------------------------------------------------------------------

    def _run_frames(
        self, frames: List[_Frame], pending: Optional[StorageRead]
    ) -> Generator[VMEvent, object, Tuple[HaltReason, bytes]]:
        """Drive the explicit frame stack until the bottom frame halts.

        ``pending`` (resume path) is a storage read the top frame is
        suspended on: it is re-yielded first, and its answer applied via
        the uniform read continuation (push value, advance pc).
        """
        while True:
            frame = frames[-1]
            message = frame.message
            code = frame.code
            stack = frame.stack
            memory = frame.memory
            watch = frame.watch
            jumpdests = frame.jumpdests
            self_address = frame.self_address
            pc = frame.pc
            halt: Optional[Tuple[HaltReason, bytes]] = None

            if pending is not None:
                event, pending = pending, None
                self._checkpoint_ctx = event
                value = yield event
                self._checkpoint_ctx = None
                stack.push(to_word(int(value)))  # type: ignore[arg-type]
                pc += 1

            while True:
                if pc >= len(code):
                    halt = (HaltReason.SUCCESS, b"")
                    break
                byte = code[pc]
                info = opcode_info(byte)
                if info is None:
                    raise InvalidOpcode(f"undefined opcode {byte:#04x} at pc {pc}")
                op = info.op

                if pc in watch:
                    yield Watchpoint(self.gas_used, pc, self_address, self._gas_left)

                self._use_gas(info.gas)
                self._steps += 1

                # ---- control flow ---------------------------------------------
                if op is Op.STOP:
                    halt = (HaltReason.SUCCESS, b"")
                    break
                if op is Op.JUMP:
                    dest = stack.pop()
                    if dest not in jumpdests:
                        raise InvalidJump(f"jump to {dest} from pc {pc}")
                    pc = dest
                    continue
                if op is Op.JUMPI:
                    dest, cond = stack.pop(), stack.pop()
                    if cond != 0:
                        if dest not in jumpdests:
                            raise InvalidJump(f"jumpi to {dest} from pc {pc}")
                        pc = dest
                        continue
                    pc += 1
                    continue
                if op is Op.JUMPDEST:
                    pc += 1
                    continue
                if op is Op.RETURN:
                    offset, length = stack.pop(), stack.pop()
                    self._use_gas(memory.expansion_cost(offset, length))
                    halt = (HaltReason.SUCCESS, memory.read(offset, length))
                    break
                if op is Op.REVERT:
                    offset, length = stack.pop(), stack.pop()
                    self._use_gas(memory.expansion_cost(offset, length))
                    halt = (HaltReason.REVERT, memory.read(offset, length))
                    break
                if op is Op.INVALID:
                    raise AssertionFailure(f"INVALID at pc {pc}")

                # ---- pushes / dups / swaps ------------------------------------
                if info.immediate:
                    operand = bytes_to_word(code[pc + 1 : pc + 1 + info.immediate])
                    stack.push(operand)
                    pc += 1 + info.immediate
                    continue
                if Op.DUP1 <= op <= Op.DUP16:
                    stack.dup(int(op) - int(Op.DUP1) + 1)
                    pc += 1
                    continue
                if Op.SWAP1 <= op <= Op.SWAP16:
                    stack.swap(int(op) - int(Op.SWAP1) + 1)
                    pc += 1
                    continue

                # ---- storage: the events the whole paper is about --------------
                if op is Op.SLOAD:
                    slot = stack.pop()
                    frame.pc = pc
                    event = StorageRead(self.gas_used, StateKey(self_address, slot), pc)
                    self._checkpoint_ctx = event
                    value = yield event
                    self._checkpoint_ctx = None
                    stack.push(to_word(int(value)))  # type: ignore[arg-type]
                    pc += 1
                    continue
                if op is Op.SSTORE:
                    slot, value = stack.pop(), stack.pop()
                    self._use_gas(GAS_SSTORE_RESET)
                    yield StorageWrite(self.gas_used, StateKey(self_address, slot), value, pc)
                    pc += 1
                    continue
                if op is Op.BALANCE:
                    address = Address(stack.pop() & _ADDRESS_MASK)
                    frame.pc = pc
                    event = StorageRead(self.gas_used, StateKey.balance(address), pc)
                    self._checkpoint_ctx = event
                    value = yield event
                    self._checkpoint_ctx = None
                    stack.push(to_word(int(value)))  # type: ignore[arg-type]
                    pc += 1
                    continue
                if op is Op.SELFBALANCE:
                    frame.pc = pc
                    event = StorageRead(self.gas_used, StateKey.balance(self_address), pc)
                    self._checkpoint_ctx = event
                    value = yield event
                    self._checkpoint_ctx = None
                    stack.push(to_word(int(value)))  # type: ignore[arg-type]
                    pc += 1
                    continue

                # ---- environment ----------------------------------------------
                if op is Op.ADDRESS:
                    stack.push(self_address.to_word())
                elif op is Op.ORIGIN or op is Op.CALLER:
                    stack.push(message.sender.to_word())
                elif op is Op.CALLVALUE:
                    stack.push(message.value)
                elif op is Op.CALLDATALOAD:
                    offset = stack.pop()
                    chunk = message.data[offset : offset + WORD_BYTES]
                    stack.push(bytes_to_word(chunk.ljust(WORD_BYTES, b"\x00")))
                elif op is Op.CALLDATASIZE:
                    stack.push(len(message.data))
                elif op is Op.CALLDATACOPY:
                    dest, src, length = stack.pop(), stack.pop(), stack.pop()
                    self._use_gas(memory.expansion_cost(dest, length))
                    self._use_gas(GAS_COPY_WORD * ((length + 31) // 32))
                    chunk = message.data[src : src + length].ljust(length, b"\x00")
                    memory.write(dest, chunk)
                elif op is Op.TIMESTAMP:
                    stack.push(self.block.timestamp)
                elif op is Op.NUMBER:
                    stack.push(self.block.number)
                elif op is Op.PC:
                    stack.push(pc)
                elif op is Op.MSIZE:
                    stack.push(len(memory))
                elif op is Op.GAS:
                    stack.push(self._gas_left)
                elif op is Op.POP:
                    stack.pop()

                # ---- memory ---------------------------------------------------
                elif op is Op.MLOAD:
                    offset = stack.pop()
                    self._use_gas(memory.expansion_cost(offset, WORD_BYTES))
                    stack.push(memory.read_word(offset))
                elif op is Op.MSTORE:
                    offset, value = stack.pop(), stack.pop()
                    self._use_gas(memory.expansion_cost(offset, WORD_BYTES))
                    memory.write_word(offset, value)
                elif op is Op.MSTORE8:
                    offset, value = stack.pop(), stack.pop()
                    self._use_gas(memory.expansion_cost(offset, 1))
                    memory.write_byte(offset, value)

                # ---- hashing --------------------------------------------------
                elif op is Op.SHA3:
                    offset, length = stack.pop(), stack.pop()
                    self._use_gas(memory.expansion_cost(offset, length))
                    self._use_gas(GAS_SHA3_WORD * ((length + 31) // 32))
                    stack.push(bytes_to_word(keccak(memory.read(offset, length))))

                # ---- arithmetic / logic ---------------------------------------
                elif op is Op.ADD:
                    stack.push(words.add(stack.pop(), stack.pop()))
                elif op is Op.MUL:
                    stack.push(words.mul(stack.pop(), stack.pop()))
                elif op is Op.SUB:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.sub(a, b))
                elif op is Op.DIV:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.div(a, b))
                elif op is Op.SDIV:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.sdiv(a, b))
                elif op is Op.MOD:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.mod(a, b))
                elif op is Op.SMOD:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.smod(a, b))
                elif op is Op.ADDMOD:
                    a, b, n = stack.pop(), stack.pop(), stack.pop()
                    stack.push(words.addmod(a, b, n))
                elif op is Op.MULMOD:
                    a, b, n = stack.pop(), stack.pop(), stack.pop()
                    stack.push(words.mulmod(a, b, n))
                elif op is Op.EXP:
                    base, exponent = stack.pop(), stack.pop()
                    self._use_gas(GAS_EXP_BYTE * ((exponent.bit_length() + 7) // 8))
                    stack.push(words.exp(base, exponent))
                elif op is Op.LT:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.lt(a, b))
                elif op is Op.GT:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.gt(a, b))
                elif op is Op.SLT:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.slt(a, b))
                elif op is Op.SGT:
                    a, b = stack.pop(), stack.pop()
                    stack.push(words.sgt(a, b))
                elif op is Op.EQ:
                    stack.push(words.eq(stack.pop(), stack.pop()))
                elif op is Op.ISZERO:
                    stack.push(words.iszero(stack.pop()))
                elif op is Op.AND:
                    stack.push(stack.pop() & stack.pop())
                elif op is Op.OR:
                    stack.push(stack.pop() | stack.pop())
                elif op is Op.XOR:
                    stack.push(stack.pop() ^ stack.pop())
                elif op is Op.NOT:
                    stack.push(words.bitwise_not(stack.pop()))
                elif op is Op.BYTE:
                    index, value = stack.pop(), stack.pop()
                    stack.push(words.byte(index, value))
                elif op is Op.SHL:
                    shift, value = stack.pop(), stack.pop()
                    stack.push(words.shl(shift, value))
                elif op is Op.SHR:
                    shift, value = stack.pop(), stack.pop()
                    stack.push(words.shr(shift, value))
                elif op is Op.SAR:
                    shift, value = stack.pop(), stack.pop()
                    stack.push(words.sar(shift, value))

                # ---- logs -----------------------------------------------------
                elif Op.LOG0 <= op <= Op.LOG3:
                    topic_count = int(op) - int(Op.LOG0)
                    offset, length = stack.pop(), stack.pop()
                    topics = tuple(stack.pop() for _ in range(topic_count))
                    self._use_gas(memory.expansion_cost(offset, length))
                    self._use_gas(GAS_LOG_DATA_BYTE * length)
                    data = memory.read(offset, length)
                    self._logs.append(LogEntry(self_address, topics, data))
                    yield EmittedLog(self.gas_used, self_address, topics, data)

                # ---- message call ---------------------------------------------
                elif op is Op.CALL:
                    _gas, to_word_, value, in_off, in_len, out_off, out_len = (
                        stack.pop() for _ in range(7)
                    )
                    to = Address(to_word_ & _ADDRESS_MASK)
                    self._use_gas(memory.expansion_cost(in_off, in_len))
                    self._use_gas(memory.expansion_cost(out_off, out_len))
                    if value > 0:
                        self._use_gas(GAS_CALL_VALUE)
                    data = memory.read(in_off, in_len)

                    frame.pc = pc
                    token = yield FrameCheckpoint(self.gas_used, message.depth + 1)
                    if value > 0:
                        sender_key = StateKey.balance(message.to)
                        sender_balance = int((yield StorageRead(self.gas_used, sender_key)))  # type: ignore[arg-type]
                        if sender_balance < value:
                            yield FrameRevert(self.gas_used, int(token))  # type: ignore[arg-type]
                            stack.push(0)
                            pc += 1
                            continue
                        yield StorageWrite(self.gas_used, sender_key, sender_balance - value)
                        to_key = StateKey.balance(to)
                        to_balance = int((yield StorageRead(self.gas_used, to_key)))  # type: ignore[arg-type]
                        yield StorageWrite(self.gas_used, to_key, to_balance + value)

                    if message.depth + 1 > CALL_DEPTH_LIMIT:
                        raise CallDepthExceeded(f"call depth {message.depth + 1}")
                    inner_code = self._resolve_code(to)
                    if not inner_code:
                        yield FrameCommit(self.gas_used, int(token))  # type: ignore[arg-type]
                        stack.push(1)
                        pc += 1
                        continue

                    inner = Message(
                        sender=message.to,
                        to=to,
                        value=value,
                        data=data,
                        gas=self._gas_left,
                        depth=message.depth + 1,
                    )
                    frame.out_off = out_off
                    frame.out_len = out_len
                    frame.token = int(token)  # type: ignore[arg-type]
                    frames.append(
                        _Frame(
                            inner,
                            inner_code,
                            self._watchpoints.get(to, _EMPTY_WATCH),
                        )
                    )
                    break  # re-enter the outer loop on the child frame
                else:  # pragma: no cover - table and dispatch are kept in sync
                    raise InvalidOpcode(f"unhandled opcode {op.name}")

                pc += 1

            if halt is None:
                continue  # a child frame was pushed

            status, return_data = halt
            frames.pop()
            if not frames:
                return status, return_data
            parent = frames[-1]
            if status is HaltReason.SUCCESS:
                yield FrameCommit(self.gas_used, parent.token)
                parent.memory.write(
                    parent.out_off,
                    return_data[: parent.out_len].ljust(
                        min(parent.out_len, len(return_data)), b"\x00"
                    ),
                )
                parent.stack.push(1)
            else:
                yield FrameRevert(self.gas_used, parent.token)
                parent.stack.push(0)
            parent.pc += 1
