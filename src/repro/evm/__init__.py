"""A from-scratch, resumable Ethereum Virtual Machine."""

from .assembler import (
    Assembler,
    AssemblyError,
    Instruction,
    assemble,
    disassemble,
    format_disassembly,
)
from .driver import DriveOutcome, TraceRecord, drive
from .environment import BlockContext, ExecutionResult, HaltReason, LogEntry, Message
from .events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    VMEvent,
    Watchpoint,
)
from .opcodes import Op, intrinsic_gas, opcode_info, push_op
from .tracer import ExecutionTrace, TraceStep, format_trace, gas_profile, trace_message
from .vm import EVM, VMCheckpoint, valid_jumpdests

__all__ = [
    "Assembler",
    "AssemblyError",
    "BlockContext",
    "DriveOutcome",
    "EVM",
    "EmittedLog",
    "ExecutionTrace",
    "ExecutionResult",
    "FrameCheckpoint",
    "FrameCommit",
    "FrameRevert",
    "HaltReason",
    "Instruction",
    "LogEntry",
    "Message",
    "Op",
    "StorageRead",
    "StorageWrite",
    "TraceRecord",
    "TraceStep",
    "VMCheckpoint",
    "VMEvent",
    "Watchpoint",
    "assemble",
    "disassemble",
    "drive",
    "format_disassembly",
    "format_trace",
    "gas_profile",
    "intrinsic_gas",
    "opcode_info",
    "push_op",
    "trace_message",
    "valid_jumpdests",
]
