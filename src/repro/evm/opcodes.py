"""EVM instruction set.

Opcode byte values match the real EVM so that traces, disassembly, and the
paper's discussion of SLOAD/SSTORE interception line up with Ethereum
documentation.  Only the storage-irrelevant exotica (CREATE2, DELEGATECALL,
precompiles, ...) are omitted; everything the Minisol compiler and the
analysis need is here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Optional


class Op(IntEnum):
    STOP = 0x00
    ADD = 0x01
    MUL = 0x02
    SUB = 0x03
    DIV = 0x04
    SDIV = 0x05
    MOD = 0x06
    SMOD = 0x07
    ADDMOD = 0x08
    MULMOD = 0x09
    EXP = 0x0A

    LT = 0x10
    GT = 0x11
    SLT = 0x12
    SGT = 0x13
    EQ = 0x14
    ISZERO = 0x15
    AND = 0x16
    OR = 0x17
    XOR = 0x18
    NOT = 0x19
    BYTE = 0x1A
    SHL = 0x1B
    SHR = 0x1C
    SAR = 0x1D

    SHA3 = 0x20

    ADDRESS = 0x30
    BALANCE = 0x31
    ORIGIN = 0x32
    CALLER = 0x33
    CALLVALUE = 0x34
    CALLDATALOAD = 0x35
    CALLDATASIZE = 0x36
    CALLDATACOPY = 0x37

    TIMESTAMP = 0x42
    NUMBER = 0x43
    SELFBALANCE = 0x47

    POP = 0x50
    MLOAD = 0x51
    MSTORE = 0x52
    MSTORE8 = 0x53
    SLOAD = 0x54
    SSTORE = 0x55
    JUMP = 0x56
    JUMPI = 0x57
    PC = 0x58
    MSIZE = 0x59
    GAS = 0x5A
    JUMPDEST = 0x5B

    PUSH1 = 0x60
    PUSH2 = 0x61
    PUSH3 = 0x62
    PUSH4 = 0x63
    PUSH5 = 0x64
    PUSH6 = 0x65
    PUSH7 = 0x66
    PUSH8 = 0x67
    PUSH9 = 0x68
    PUSH10 = 0x69
    PUSH11 = 0x6A
    PUSH12 = 0x6B
    PUSH13 = 0x6C
    PUSH14 = 0x6D
    PUSH15 = 0x6E
    PUSH16 = 0x6F
    PUSH17 = 0x70
    PUSH18 = 0x71
    PUSH19 = 0x72
    PUSH20 = 0x73
    PUSH21 = 0x74
    PUSH22 = 0x75
    PUSH23 = 0x76
    PUSH24 = 0x77
    PUSH25 = 0x78
    PUSH26 = 0x79
    PUSH27 = 0x7A
    PUSH28 = 0x7B
    PUSH29 = 0x7C
    PUSH30 = 0x7D
    PUSH31 = 0x7E
    PUSH32 = 0x7F

    DUP1 = 0x80
    DUP2 = 0x81
    DUP3 = 0x82
    DUP4 = 0x83
    DUP5 = 0x84
    DUP6 = 0x85
    DUP7 = 0x86
    DUP8 = 0x87
    DUP9 = 0x88
    DUP10 = 0x89
    DUP11 = 0x8A
    DUP12 = 0x8B
    DUP13 = 0x8C
    DUP14 = 0x8D
    DUP15 = 0x8E
    DUP16 = 0x8F

    SWAP1 = 0x90
    SWAP2 = 0x91
    SWAP3 = 0x92
    SWAP4 = 0x93
    SWAP5 = 0x94
    SWAP6 = 0x95
    SWAP7 = 0x96
    SWAP8 = 0x97
    SWAP9 = 0x98
    SWAP10 = 0x99
    SWAP11 = 0x9A
    SWAP12 = 0x9B
    SWAP13 = 0x9C
    SWAP14 = 0x9D
    SWAP15 = 0x9E
    SWAP16 = 0x9F

    LOG0 = 0xA0
    LOG1 = 0xA1
    LOG2 = 0xA2
    LOG3 = 0xA3

    CALL = 0xF1
    RETURN = 0xF3
    REVERT = 0xFD
    INVALID = 0xFE


# Gas schedule (yellow-paper-flavoured; absolute values matter only in that
# relative instruction costs drive the simulated-time model).
GAS_ZERO = 0
GAS_BASE = 2
GAS_VERYLOW = 3
GAS_LOW = 5
GAS_MID = 8
GAS_HIGH = 10
GAS_EXP = 10
GAS_EXP_BYTE = 50
GAS_SHA3 = 30
GAS_SHA3_WORD = 6
GAS_BALANCE = 400
GAS_SLOAD = 200
GAS_SSTORE_SET = 20_000
GAS_SSTORE_RESET = 5_000
GAS_SSTORE_CLEAR_REFUND = 0  # refunds not modelled
GAS_JUMPDEST = 1
GAS_LOG = 375
GAS_LOG_TOPIC = 375
GAS_LOG_DATA_BYTE = 8
GAS_CALL = 700
GAS_CALL_VALUE = 9_000
GAS_MEMORY_WORD = 3
GAS_COPY_WORD = 3

GAS_TX_INTRINSIC = 21_000
GAS_TX_DATA_ZERO = 4
GAS_TX_DATA_NONZERO = 16

STACK_LIMIT = 1024
CALL_DEPTH_LIMIT = 64


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: Op
    pops: int
    pushes: int
    gas: int
    immediate: int = 0  # bytes of inline operand (PUSHn)

    @property
    def name(self) -> str:
        return self.op.name


def _build_table() -> Dict[int, OpInfo]:
    table: Dict[int, OpInfo] = {}

    def add(op: Op, pops: int, pushes: int, gas: int, immediate: int = 0) -> None:
        table[int(op)] = OpInfo(op, pops, pushes, gas, immediate)

    add(Op.STOP, 0, 0, GAS_ZERO)
    for op in (Op.ADD, Op.SUB, Op.NOT, Op.LT, Op.GT, Op.SLT, Op.SGT, Op.EQ,
               Op.AND, Op.OR, Op.XOR, Op.BYTE, Op.SHL, Op.SHR, Op.SAR,
               Op.CALLDATALOAD, Op.MLOAD, Op.MSTORE, Op.MSTORE8):
        pops = {Op.NOT: 1, Op.ISZERO: 1, Op.CALLDATALOAD: 1, Op.MLOAD: 1}.get(op, 2)
        pushes = 0 if op in (Op.MSTORE, Op.MSTORE8) else 1
        add(op, pops, pushes, GAS_VERYLOW)
    add(Op.ISZERO, 1, 1, GAS_VERYLOW)
    for op in (Op.MUL, Op.DIV, Op.SDIV, Op.MOD, Op.SMOD):
        add(op, 2, 1, GAS_LOW)
    for op in (Op.ADDMOD, Op.MULMOD):
        add(op, 3, 1, GAS_MID)
    add(Op.EXP, 2, 1, GAS_EXP)
    add(Op.SHA3, 2, 1, GAS_SHA3)
    add(Op.ADDRESS, 0, 1, GAS_BASE)
    add(Op.BALANCE, 1, 1, GAS_BALANCE)
    add(Op.ORIGIN, 0, 1, GAS_BASE)
    add(Op.CALLER, 0, 1, GAS_BASE)
    add(Op.CALLVALUE, 0, 1, GAS_BASE)
    add(Op.CALLDATASIZE, 0, 1, GAS_BASE)
    add(Op.CALLDATACOPY, 3, 0, GAS_VERYLOW)
    add(Op.TIMESTAMP, 0, 1, GAS_BASE)
    add(Op.NUMBER, 0, 1, GAS_BASE)
    add(Op.SELFBALANCE, 0, 1, GAS_LOW)
    add(Op.POP, 1, 0, GAS_BASE)
    add(Op.SLOAD, 1, 1, GAS_SLOAD)
    add(Op.SSTORE, 2, 0, 0)  # dynamic
    add(Op.JUMP, 1, 0, GAS_MID)
    add(Op.JUMPI, 2, 0, GAS_HIGH)
    add(Op.PC, 0, 1, GAS_BASE)
    add(Op.MSIZE, 0, 1, GAS_BASE)
    add(Op.GAS, 0, 1, GAS_BASE)
    add(Op.JUMPDEST, 0, 0, GAS_JUMPDEST)
    for i in range(32):
        add(Op(int(Op.PUSH1) + i), 0, 1, GAS_VERYLOW, immediate=i + 1)
    for i in range(16):
        add(Op(int(Op.DUP1) + i), i + 1, i + 2, GAS_VERYLOW)
    for i in range(16):
        add(Op(int(Op.SWAP1) + i), i + 2, i + 2, GAS_VERYLOW)
    for i in range(4):
        add(Op(int(Op.LOG0) + i), i + 2, 0, GAS_LOG + i * GAS_LOG_TOPIC)
    add(Op.CALL, 7, 1, GAS_CALL)
    add(Op.RETURN, 2, 0, GAS_ZERO)
    add(Op.REVERT, 2, 0, GAS_ZERO)
    add(Op.INVALID, 0, 0, GAS_ZERO)
    return table


OPCODE_TABLE: Dict[int, OpInfo] = _build_table()


def opcode_info(byte: int) -> Optional[OpInfo]:
    """Metadata for an opcode byte, or ``None`` for undefined opcodes."""
    return OPCODE_TABLE.get(byte)


def push_op(width: int) -> Op:
    """The PUSHn opcode carrying ``width`` immediate bytes."""
    if not 1 <= width <= 32:
        raise ValueError(f"invalid PUSH width: {width}")
    return Op(int(Op.PUSH1) + width - 1)


def is_push(byte: int) -> bool:
    return int(Op.PUSH1) <= byte <= int(Op.PUSH32)


def is_terminator(op: Op) -> bool:
    """Opcodes that end a basic block without falling through."""
    return op in (Op.STOP, Op.JUMP, Op.RETURN, Op.REVERT, Op.INVALID)


def intrinsic_gas(data: bytes) -> int:
    """Per-transaction base cost, as in Ethereum."""
    cost = GAS_TX_INTRINSIC
    for byte in data:
        cost += GAS_TX_DATA_ZERO if byte == 0 else GAS_TX_DATA_NONZERO
    return cost
