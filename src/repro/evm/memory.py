"""Byte-addressed, word-expanding EVM memory.

Memory grows in 32-byte words and expansion is charged quadratically-ish in
the real EVM; we charge the linear word cost, which preserves the relative
cost of memory-heavy vs storage-heavy code paths for the time model.

Like :class:`repro.evm.stack.Stack`, memory supports O(1) copy-on-write
snapshots: ``snapshot()`` hands out the backing buffer and marks it shared;
the next mutation (including the implicit expansion a read can trigger)
copies first.
"""

from __future__ import annotations

from ..core.words import WORD_BYTES, bytes_to_word, word_to_bytes
from .opcodes import GAS_MEMORY_WORD


class Memory:
    """A growable bytearray with gas-metered expansion."""

    __slots__ = ("_data", "_shared")

    def __init__(self) -> None:
        self._data = bytearray()
        self._shared = False

    # -- copy-on-write snapshots ---------------------------------------

    def snapshot(self) -> bytearray:
        """O(1): freeze the current contents; both the snapshot and this
        memory copy lazily on their next mutation."""
        self._shared = True
        return self._data

    @classmethod
    def from_snapshot(cls, data: bytearray) -> "Memory":
        memory = cls()
        memory._data = data
        memory._shared = True
        return memory

    def _own(self) -> None:
        if self._shared:
            self._data = bytearray(self._data)
            self._shared = False

    # -- operations ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size_words(self) -> int:
        return len(self._data) // WORD_BYTES

    def expansion_cost(self, offset: int, length: int) -> int:
        """Gas cost of growing memory to cover ``[offset, offset+length)``."""
        if length == 0:
            return 0
        needed = offset + length
        if needed <= len(self._data):
            return 0
        new_words = (needed + WORD_BYTES - 1) // WORD_BYTES
        return (new_words - self.size_words) * GAS_MEMORY_WORD

    def _expand(self, offset: int, length: int) -> None:
        needed = offset + length
        if needed > len(self._data):
            self._own()
            words = (needed + WORD_BYTES - 1) // WORD_BYTES
            self._data.extend(b"\x00" * (words * WORD_BYTES - len(self._data)))

    def read(self, offset: int, length: int) -> bytes:
        if length == 0:
            return b""
        self._expand(offset, length)
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        self._expand(offset, len(data))
        self._own()
        self._data[offset : offset + len(data)] = data

    def read_word(self, offset: int) -> int:
        return bytes_to_word(self.read(offset, WORD_BYTES))

    def write_word(self, offset: int, value: int) -> None:
        self.write(offset, word_to_bytes(value))

    def write_byte(self, offset: int, value: int) -> None:
        self.write(offset, bytes([value & 0xFF]))
