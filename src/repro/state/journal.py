"""Write journal: transaction-local buffered state with revert checkpoints.

During execution a transaction's writes must stay private until the
scheduler decides to publish them (at commit for the baselines, at release
points for DMVCC).  The journal is that private buffer: reads hit the buffer
first and fall back to a supplied reader; writes only touch the buffer.

Checkpoints support nested message calls and ``require``-style reverts —
reverting discards everything after the checkpoint while keeping the outer
frame's writes intact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import StateError
from ..core.types import StateKey

Reader = Callable[[StateKey], int]


class WriteJournal:
    """Layered read-through/write-back buffer over a backing reader."""

    def __init__(self, reader: Reader) -> None:
        self._reader = reader
        self._writes: Dict[StateKey, int] = {}
        # Undo log: (key, previous value or None if the key was clean).
        self._undo: List[Tuple[StateKey, Optional[int]]] = []
        # Open scopes: (token, undo length at checkpoint time).
        self._checkpoints: List[Tuple[int, int]] = []
        self._next_token = 1
        self._reads: Dict[StateKey, int] = {}

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def read(self, key: StateKey) -> int:
        """Read through the buffer; records the read set for validation."""
        if key in self._writes:
            return self._writes[key]
        value = self._reader(key)
        # Only the *first* observation matters for OCC-style validation.
        self._reads.setdefault(key, value)
        return value

    def write(self, key: StateKey, value: int) -> None:
        previous = self._writes.get(key)
        self._undo.append((key, previous))
        self._writes[key] = value

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Open a revert scope; returns a token for :meth:`revert_to`."""
        token = self._next_token
        self._next_token += 1
        self._checkpoints.append((token, len(self._undo)))
        return token

    def commit_checkpoint(self, token: int) -> None:
        """Close the most recent scope, keeping its writes."""
        self._pop_checkpoint(token)

    def revert_to(self, token: int) -> None:
        """Discard all writes made after ``token`` was taken."""
        undo_mark = self._pop_checkpoint(token)
        while len(self._undo) > undo_mark:
            key, previous = self._undo.pop()
            if previous is None:
                self._writes.pop(key, None)
            else:
                self._writes[key] = previous

    def _pop_checkpoint(self, token: int) -> int:
        if not self._checkpoints or self._checkpoints[-1][0] != token:
            raise StateError("checkpoints must be released innermost-first")
        return self._checkpoints.pop()[1]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def write_set(self) -> Dict[StateKey, int]:
        """Final value of every written key (latest write wins)."""
        return dict(self._writes)

    @property
    def read_set(self) -> Dict[StateKey, int]:
        """First-observed value of every key read from the backing reader."""
        return dict(self._reads)

    def written(self, key: StateKey) -> bool:
        return key in self._writes

    def clear(self) -> None:
        self._writes.clear()
        self._undo.clear()
        self._checkpoints.clear()
        self._reads.clear()


class OverlayReader:
    """Compose a base reader with a dict of pending block-level writes.

    Used by serial-style executors where transaction ``i+1`` must observe
    the committed effects of transactions ``1..i`` before the block is
    flushed to the StateDB.
    """

    def __init__(self, base: Reader) -> None:
        self._base = base
        self._overlay: Dict[StateKey, int] = {}

    def read(self, key: StateKey) -> int:
        if key in self._overlay:
            return self._overlay[key]
        return self._base(key)

    def apply(self, writes: Dict[StateKey, int]) -> None:
        self._overlay.update(writes)

    @property
    def pending(self) -> Dict[StateKey, int]:
        return dict(self._overlay)

    def __call__(self, key: StateKey) -> int:
        return self.read(key)
