"""Accounts, snapshots, and the per-block StateDB."""

from .account import AccountSummary, CodeRegistry, ContractMeta
from .journal import OverlayReader, WriteJournal
from .statedb import CommitReport, Snapshot, StateDB

__all__ = [
    "AccountSummary",
    "CodeRegistry",
    "CommitReport",
    "ContractMeta",
    "OverlayReader",
    "Snapshot",
    "StateDB",
    "WriteJournal",
]
