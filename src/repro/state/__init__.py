"""Accounts, snapshots, and the per-block StateDB."""

from .account import AccountSummary, CodeRegistry, ContractMeta
from .journal import OverlayReader, WriteJournal
from .statedb import Snapshot, StateDB

__all__ = [
    "AccountSummary",
    "CodeRegistry",
    "ContractMeta",
    "OverlayReader",
    "Snapshot",
    "StateDB",
    "WriteJournal",
]
