"""Accounts, snapshots, the per-block StateDB, and the merge algebra."""

from .account import AccountSummary, CodeRegistry, ContractMeta
from .journal import OverlayReader, WriteJournal
from .merge import MergeOp, MergeRegistry, MergeSpec
from .statedb import CommitReport, Snapshot, StateDB

__all__ = [
    "AccountSummary",
    "CodeRegistry",
    "CommitReport",
    "ContractMeta",
    "MergeOp",
    "MergeRegistry",
    "MergeSpec",
    "OverlayReader",
    "Snapshot",
    "StateDB",
    "WriteJournal",
]
