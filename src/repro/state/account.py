"""Account model.

Ethereum distinguishes *user accounts* (balance + nonce, no code) from
*contract accounts* (code + storage).  In this reproduction, balances and
nonces are stored as pseudo state items (``StateKey.balance(addr)`` /
``StateKey.nonce(addr)``) so that plain Ether transfers flow through the very
same concurrency-control machinery as contract storage accesses — the paper
folds non-contract transactions into scheduling as read/write constraints.

Contract *code* is immutable after deployment, so it lives outside the
versioned state in a simple registry and never participates in conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.errors import StateError
from ..core.hashing import keccak
from ..core.types import Address


@dataclass(frozen=True)
class ContractMeta:
    """Deployment record for one contract account."""

    address: Address
    code: bytes
    name: str = ""

    @property
    def code_hash(self) -> bytes:
        return keccak(self.code)


class CodeRegistry:
    """Registry of deployed contract code, shared by all snapshots.

    Code is deploy-once / immutable (we do not model ``SELFDESTRUCT``), so a
    plain dict indexed by address is sufficient and requires no versioning.
    """

    def __init__(self) -> None:
        self._contracts: Dict[Address, ContractMeta] = {}

    def deploy(self, address: Address, code: bytes, name: str = "") -> ContractMeta:
        if address in self._contracts:
            raise StateError(f"contract already deployed at {address}")
        if not code:
            raise StateError("cannot deploy empty code")
        meta = ContractMeta(address, code, name)
        self._contracts[address] = meta
        return meta

    def get(self, address: Address) -> Optional[ContractMeta]:
        return self._contracts.get(address)

    def code_of(self, address: Address) -> bytes:
        meta = self._contracts.get(address)
        return meta.code if meta is not None else b""

    def is_contract(self, address: Address) -> bool:
        return address in self._contracts

    def addresses(self):
        return list(self._contracts)

    def __len__(self) -> int:
        return len(self._contracts)


@dataclass
class AccountSummary:
    """Point-in-time view of one account, for inspection and examples."""

    address: Address
    balance: int = 0
    nonce: int = 0
    is_contract: bool = False
    storage: Dict[int, int] = field(default_factory=dict)
