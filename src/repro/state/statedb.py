"""StateDB: the chain of per-block state snapshots.

Following the paper, ``S^l`` is the blockchain state after executing every
transaction up to block ``l``; the set of all snapshots is the *StateDB*.
Each snapshot is one Merkle Patricia Trie root over a shared node store, so
creating a snapshot is O(1) and historical snapshots stay readable (the SAG
analyzer reads from the *latest committed* snapshot while the next block is
still executing).

Values are 256-bit words.  Zero-valued items are pruned from the trie, which
makes the root hash canonical: writing an explicit zero and never writing at
all produce identical roots — the property RQ1's Merkle-root comparison
relies on.

Two performance layers sit on top of the authenticated trie (see
``docs/STATE.md``):

* **Batched commits** — :meth:`StateDB.commit` applies the whole write
  batch through a dirty-node overlay (:mod:`repro.trie.overlay`) and hashes
  each touched node exactly once in a single seal pass.  The legacy per-key
  path is kept callable behind ``legacy=True`` purely as a differential
  oracle (``repro verify`` asserts both paths seal byte-identical roots).
* **Flat read cache** — every :class:`Snapshot` carries a flat key→value
  dict seeded from the commit's write batch on top of its parent's flat
  layer, plus a bounded LRU for cold keys, so the SLOAD hot path is an O(1)
  dict hit instead of an O(depth) trie walk.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.encoding import decode_int, encode_int
from ..core.errors import StateError, UnknownSnapshotError
from ..core.types import Address, StateKey
from ..trie.mpt import NodeStore, Trie
from .account import AccountSummary, CodeRegistry, ContractMeta

# Flat-layer sizing: the seeded dict is copied parent→child on every commit,
# so it is capped (beyond the cap a fresh layer is seeded from the write
# batch alone); cold keys resolved through the trie land in a bounded LRU.
FLAT_LAYER_MAX = 1 << 16
FLAT_LRU_SIZE = 4096

_MISS = object()


@dataclass
class CommitReport:
    """Everything one :meth:`StateDB.commit` did, for metrics and obs.

    ``flat_hits``/``flat_misses`` are the *parent* snapshot's cumulative
    read-cache counters at commit time — the reads served while this
    block was executing against it.
    """

    height: int = 0
    writes: int = 0            # batch entries with a non-zero value
    deletes: int = 0           # batch entries pruning a slot (zero value)
    nodes_sealed: int = 0      # trie nodes persisted by this commit
    hashes_computed: int = 0   # node-hash invocations this commit paid
    wall_time: float = 0.0     # seconds of real time in the commit
    legacy: bool = False       # True when the per-key oracle path ran
    root: bytes = b""
    flat_hits: int = 0
    flat_misses: int = 0
    # Durable-backend accounting (zero when running in-memory):
    durable: bool = False
    bytes_appended: int = 0    # log bytes this commit added (nodes + marker)
    fsync_time: float = 0.0    # seconds inside fsync at the commit marker
    db_cache_hits: int = 0     # node-cache hits since the previous marker
    db_cache_misses: int = 0   # node-cache misses (disk reads) since then
    pruned_nodes: int = 0      # nodes reclaimed by auto-compaction, if any


class Snapshot:
    """Read-only view of the state at one block height.

    Reads consult, in order: the flat layer (authoritative values seeded
    from commit write batches), a bounded per-snapshot LRU of values already
    resolved through the trie, and finally the trie itself.  ``flat_hits``
    and ``flat_misses`` count cache hits (either layer) versus trie walks.
    """

    def __init__(
        self,
        trie: Trie,
        height: int,
        flat: Optional[Dict[StateKey, int]] = None,
    ) -> None:
        self._trie = trie
        self.height = height
        self._flat: Dict[StateKey, int] = flat if flat is not None else {}
        self._lru: "OrderedDict[StateKey, int]" = OrderedDict()
        self.flat_hits = 0
        self.flat_misses = 0

    @property
    def root_hash(self) -> bytes:
        return self._trie.root_hash

    def get(self, key: StateKey) -> int:
        """Read one state item; absent items read as zero (EVM semantics)."""
        value = self._flat.get(key, _MISS)
        if value is not _MISS:
            self.flat_hits += 1
            return value
        lru = self._lru
        value = lru.get(key, _MISS)
        if value is not _MISS:
            lru.move_to_end(key)
            self.flat_hits += 1
            return value
        self.flat_misses += 1
        value = self.get_uncached(key)
        lru[key] = value
        if len(lru) > FLAT_LRU_SIZE:
            lru.popitem(last=False)
        return value

    def get_uncached(self, key: StateKey) -> int:
        """Read straight through the trie (an O(depth) nibble walk),
        bypassing and not populating the flat/LRU layers.  The read path
        the flat cache replaces; kept for benchmarks and oracles."""
        raw = self._trie.get(key.trie_key())
        return decode_int(raw) if raw is not None else 0

    def balance_of(self, address: Address) -> int:
        return self.get(StateKey.balance(address))

    def nonce_of(self, address: Address) -> int:
        return self.get(StateKey.nonce(address))

    def items(self) -> Iterable[Tuple[bytes, bytes]]:
        return self._trie.items()

    def __repr__(self) -> str:
        return f"Snapshot(height={self.height}, root={self.root_hash.hex()[:12]}…)"


class StateDB:
    """Chain of snapshots plus the contract-code registry.

    ``StateDB()`` keeps every trie node in a process-lifetime dict exactly
    as before; ``StateDB.open(path)`` routes the same write path through
    the durable log-structured engine (``repro.db``), adds a commit marker
    + fsync per block, and recovers the snapshot chain from the log on
    reopen.  All sealing logic is shared — the roots are byte-identical
    either way (``repro verify --backend durable`` fuzzes this).
    """

    def __init__(self, backend=None) -> None:
        self._store = NodeStore(backend)
        genesis = Trie(self._store)
        self._snapshots: List[Snapshot] = [Snapshot(genesis, 0)]
        self.codes = CodeRegistry()
        self.obs = None  # optional EventBus: CommitStarted/CommitSealed
        self.last_commit: Optional[CommitReport] = None
        self.auto_compact_every = 0  # durable only: compact every N commits

    @classmethod
    def open(
        cls,
        path: str,
        *,
        retention: int = 64,
        cache_nodes: int = 4096,
        segment_bytes: int = 4 << 20,
        auto_compact_every: int = 0,
        faults=None,
        fsync_delay: float = 0.0,
    ) -> "StateDB":
        """Open (or create) a durable StateDB rooted at ``path``.

        Opening is recovery: the node log is replayed, any torn tail past
        the last valid commit marker is truncated away, and the snapshot
        chain is rebuilt from the recovered commit markers.  Heights below
        the pruning horizon are simply absent (``snapshot`` raises
        :class:`UnknownSnapshotError` for them).

        ``fsync_delay`` adds an emulated per-fsync latency (seconds) for
        benchmarking — see :class:`~repro.db.log.SegmentedLog`.
        """
        from ..db.engine import DurableBackend

        backend = DurableBackend(
            path,
            retention=retention,
            cache_nodes=cache_nodes,
            segment_bytes=segment_bytes,
            faults=faults,
            fsync_delay=fsync_delay,
        )
        db = cls(backend)
        db.auto_compact_every = auto_compact_every
        roots = backend.roots
        if roots:
            snaps: List[Snapshot] = []
            if roots[0][0] == 1:
                # Un-seeded genesis was never sealed with a marker; the
                # empty trie at height 0 is reconstructible for free.
                snaps.append(Snapshot(Trie(db._store), 0))
            for height, root in roots:
                snaps.append(Snapshot(Trie(db._store, root), height))
            db._snapshots = snaps
        return db

    @property
    def durable(self) -> bool:
        return getattr(self._store.backend, "durable", False)

    def close(self) -> None:
        self._store.close()

    def compact(self, retention: Optional[int] = None):
        """Prune nodes only reachable from roots outside the retention
        window (durable only); drops in-memory snapshots for the pruned
        heights so reads can't chase reclaimed nodes."""
        report = self._store.compact(retention)
        kept = {h for h, _ in self._store.backend.roots}
        self._snapshots = [s for s in self._snapshots if s.height in kept]
        return report

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the latest snapshot (genesis is height 0)."""
        return self._snapshots[-1].height

    @property
    def latest(self) -> Snapshot:
        return self._snapshots[-1]

    def snapshot(self, height: int) -> Snapshot:
        """Snapshot at ``height``.  After recovery or pruning the chain may
        not start at genesis, so heights are mapped through the retained
        base rather than indexed directly."""
        base = self._snapshots[0].height
        index = height - base
        if not 0 <= index < len(self._snapshots):
            raise UnknownSnapshotError(f"no snapshot at height {height}")
        snapshot = self._snapshots[index]
        if snapshot.height != height:  # non-contiguous retained chain
            for candidate in self._snapshots:
                if candidate.height == height:
                    return candidate
            raise UnknownSnapshotError(f"no snapshot at height {height}")
        return snapshot

    def root_at(self, height: int) -> bytes:
        return self.snapshot(height).root_hash

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self, writes: Mapping[StateKey, int], *, legacy: bool = False) -> Snapshot:
        """Apply a batch of final writes and seal a new snapshot.

        This is the paper's commit phase: the last write of every access
        sequence is flushed into the MPT and ``S^l`` is created.  Writes of
        zero prune the slot so roots stay canonical — the sealed root is a
        pure function of the surviving contents, independent of batch
        iteration order.

        The default path routes the whole batch through the dirty-node
        overlay (one hash per touched node, sealed post-order); pass
        ``legacy=True`` to run the original one-``Trie.set``-per-key path —
        kept callable exactly so ``repro verify`` can assert both paths
        produce byte-identical roots on every fuzz block.
        """
        for key, value in writes.items():
            if value < 0:
                raise StateError(f"negative value for {key}: {value}")
        parent = self._snapshots[-1]
        height = parent.height + 1
        obs = self.obs
        if obs is not None:
            obs.commit_started(0.0, height, len(writes))
        start = time.perf_counter()
        trie = parent._trie.copy()
        store = trie.store
        base_hashes = store.hash_count
        report = CommitReport(
            height=height,
            legacy=legacy,
            flat_hits=parent.flat_hits,
            flat_misses=parent.flat_misses,
        )
        if legacy:
            for key, value in sorted(writes.items()):
                trie.set(key.trie_key(), encode_int(value))
                if value:
                    report.writes += 1
                else:
                    report.deletes += 1
            report.nodes_sealed = store.hash_count - base_hashes
        else:
            stats = trie.commit_batch(
                (key.trie_key(), encode_int(value)) for key, value in writes.items()
            )
            report.writes = stats.writes
            report.deletes = stats.deletes
            report.nodes_sealed = stats.nodes_sealed
        report.hashes_computed = store.hash_count - base_hashes
        io = self._store.commit_root(trie.root, height)
        if io is not None:
            report.durable = True
            report.bytes_appended = io.bytes_appended
            report.fsync_time = io.fsync_time
            report.db_cache_hits = io.cache_hits
            report.db_cache_misses = io.cache_misses
        if (
            io is not None
            and self.auto_compact_every
            and height % self.auto_compact_every == 0
        ):
            report.pruned_nodes = self.compact().nodes_pruned
        report.wall_time = time.perf_counter() - start
        report.root = trie.root_hash
        snapshot = Snapshot(trie, height, flat=self._seed_flat(parent, writes))
        self._snapshots.append(snapshot)
        self.last_commit = report
        if obs is not None:
            obs.commit_sealed(
                report.wall_time, height, len(writes),
                nodes_sealed=report.nodes_sealed,
                hashes_computed=report.hashes_computed,
                wall_time=report.wall_time,
                flat_hits=report.flat_hits,
                flat_misses=report.flat_misses,
            )
            if io is not None:
                obs.commit_persisted(
                    report.wall_time, height,
                    bytes_appended=io.bytes_appended,
                    fsync_time=io.fsync_time,
                    cache_hits=io.cache_hits,
                    cache_misses=io.cache_misses,
                    pruned_nodes=report.pruned_nodes,
                )
        return snapshot

    @staticmethod
    def _seed_flat(parent: Snapshot, writes: Mapping[StateKey, int]) -> Dict[StateKey, int]:
        """The child's flat layer: the parent's layer shadowed by the write
        batch.  Beyond ``FLAT_LAYER_MAX`` the inherited layer is dropped
        (reads fall back to the per-snapshot LRU and the trie) so the
        parent→child copy stays bounded."""
        if len(parent._flat) <= FLAT_LAYER_MAX:
            flat = dict(parent._flat)
        else:
            flat = {}
        flat.update(writes)
        return flat

    def mirror_durable(self, path: str, **open_kwargs) -> "StateDB":
        """Open a fresh durable StateDB at ``path`` seeded with this DB's
        latest snapshot contents and sharing its code registry.

        The mirror's root is byte-identical to this DB's latest root (the
        trie root is a pure function of the surviving contents), so
        committing the same write batches to both keeps them root-equal —
        how ``repro profile --durable`` measures on-disk commit costs on
        the exact same workload.
        """
        mirror = StateDB.open(path, **open_kwargs)
        if len(mirror._store.backend):
            raise StateError(f"mirror target {path} is not a fresh store")
        trie = Trie(mirror._store)
        trie.commit_batch(self.latest.items())
        mirror._store.commit_root(trie.root, self.height)
        mirror._snapshots = [Snapshot(trie, self.height)]
        mirror.codes = self.codes
        return mirror

    def fork(self) -> "StateDB":
        """A logically independent StateDB starting from this one's history.

        The content-addressed node store is shared (append-only, so commits
        on one fork can never corrupt another), as is the immutable code
        registry; the snapshot chain is copied.  This is how simulations
        give every validator its own chain without re-seeding genesis.
        """
        fork = StateDB.__new__(StateDB)
        fork._store = self._store
        fork._snapshots = list(self._snapshots)
        fork.codes = self.codes
        fork.obs = None
        fork.last_commit = None
        fork.auto_compact_every = 0
        return fork

    # ------------------------------------------------------------------
    # Genesis & conveniences
    # ------------------------------------------------------------------

    def seed_genesis(
        self,
        balances: Mapping[Address, int],
        storage: Optional[Mapping[StateKey, int]] = None,
    ) -> Snapshot:
        """Replace the genesis snapshot with funded accounts and optional
        pre-seeded contract storage (token balances, pool reserves, ...).

        Only legal before any block has been committed.
        """
        if len(self._snapshots) != 1:
            raise StateError("genesis can only be seeded on a fresh StateDB")
        trie = Trie(self._store)
        flat: Dict[StateKey, int] = {}
        for address, balance in sorted(balances.items()):
            trie.set(StateKey.balance(address).trie_key(), encode_int(balance))
            flat[StateKey.balance(address)] = balance
        for key, value in sorted((storage or {}).items()):
            if value:
                trie.set(key.trie_key(), encode_int(value))
            flat[key] = value
        # Durable stores seal genesis under a commit marker too, so a
        # reopened chain recovers its seeded height-0 root.
        self._store.commit_root(trie.root, 0)
        self._snapshots[0] = Snapshot(trie, 0, flat=flat)
        return self._snapshots[0]

    def deploy_contract(self, address: Address, code: bytes, name: str = "") -> ContractMeta:
        return self.codes.deploy(address, code, name)

    def account_summary(
        self, address: Address, slots: Optional[Iterable[int]] = None, height: int = -1
    ) -> AccountSummary:
        snap = self.latest if height < 0 else self.snapshot(height)
        storage: Dict[int, int] = {}
        for slot in slots or ():
            storage[slot] = snap.get(StateKey(address, slot))
        return AccountSummary(
            address=address,
            balance=snap.balance_of(address),
            nonce=snap.nonce_of(address),
            is_contract=self.codes.is_contract(address),
            storage=storage,
        )
