"""StateDB: the chain of per-block state snapshots.

Following the paper, ``S^l`` is the blockchain state after executing every
transaction up to block ``l``; the set of all snapshots is the *StateDB*.
Each snapshot is one Merkle Patricia Trie root over a shared node store, so
creating a snapshot is O(1) and historical snapshots stay readable (the SAG
analyzer reads from the *latest committed* snapshot while the next block is
still executing).

Values are 256-bit words.  Zero-valued items are pruned from the trie, which
makes the root hash canonical: writing an explicit zero and never writing at
all produce identical roots — the property RQ1's Merkle-root comparison
relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.encoding import decode_int, encode_int
from ..core.errors import StateError, UnknownSnapshotError
from ..core.types import Address, StateKey
from ..trie.mpt import NodeStore, Trie
from .account import AccountSummary, CodeRegistry, ContractMeta


class Snapshot:
    """Read-only view of the state at one block height."""

    def __init__(self, trie: Trie, height: int) -> None:
        self._trie = trie
        self.height = height

    @property
    def root_hash(self) -> bytes:
        return self._trie.root_hash

    def get(self, key: StateKey) -> int:
        """Read one state item; absent items read as zero (EVM semantics)."""
        raw = self._trie.get(key.trie_key())
        return decode_int(raw) if raw is not None else 0

    def balance_of(self, address: Address) -> int:
        return self.get(StateKey.balance(address))

    def nonce_of(self, address: Address) -> int:
        return self.get(StateKey.nonce(address))

    def items(self) -> Iterable[Tuple[bytes, bytes]]:
        return self._trie.items()

    def __repr__(self) -> str:
        return f"Snapshot(height={self.height}, root={self.root_hash.hex()[:12]}…)"


class StateDB:
    """Append-only chain of snapshots plus the contract-code registry."""

    def __init__(self) -> None:
        self._store = NodeStore()
        genesis = Trie(self._store)
        self._snapshots: List[Snapshot] = [Snapshot(genesis, 0)]
        self.codes = CodeRegistry()

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the latest snapshot (genesis is height 0)."""
        return self._snapshots[-1].height

    @property
    def latest(self) -> Snapshot:
        return self._snapshots[-1]

    def snapshot(self, height: int) -> Snapshot:
        if not 0 <= height < len(self._snapshots):
            raise UnknownSnapshotError(f"no snapshot at height {height}")
        return self._snapshots[height]

    def root_at(self, height: int) -> bytes:
        return self.snapshot(height).root_hash

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self, writes: Mapping[StateKey, int]) -> Snapshot:
        """Apply a batch of final writes and seal a new snapshot.

        This is the paper's commit phase: the last write of every access
        sequence is flushed into the MPT and ``S^l`` is created.  Writes of
        zero prune the slot so roots stay canonical.
        """
        trie = self._snapshots[-1]._trie.copy()
        for key, value in sorted(writes.items()):
            if value < 0:
                raise StateError(f"negative value for {key}: {value}")
            trie.set(key.trie_key(), encode_int(value))
        snapshot = Snapshot(trie, self.height + 1)
        self._snapshots.append(snapshot)
        return snapshot

    def fork(self) -> "StateDB":
        """A logically independent StateDB starting from this one's history.

        The content-addressed node store is shared (append-only, so commits
        on one fork can never corrupt another), as is the immutable code
        registry; the snapshot chain is copied.  This is how simulations
        give every validator its own chain without re-seeding genesis.
        """
        fork = StateDB.__new__(StateDB)
        fork._store = self._store
        fork._snapshots = list(self._snapshots)
        fork.codes = self.codes
        return fork

    # ------------------------------------------------------------------
    # Genesis & conveniences
    # ------------------------------------------------------------------

    def seed_genesis(
        self,
        balances: Mapping[Address, int],
        storage: Optional[Mapping[StateKey, int]] = None,
    ) -> Snapshot:
        """Replace the genesis snapshot with funded accounts and optional
        pre-seeded contract storage (token balances, pool reserves, ...).

        Only legal before any block has been committed.
        """
        if len(self._snapshots) != 1:
            raise StateError("genesis can only be seeded on a fresh StateDB")
        trie = Trie(self._store)
        for address, balance in sorted(balances.items()):
            trie.set(StateKey.balance(address).trie_key(), encode_int(balance))
        for key, value in sorted((storage or {}).items()):
            if value:
                trie.set(key.trie_key(), encode_int(value))
        self._snapshots[0] = Snapshot(trie, 0)
        return self._snapshots[0]

    def deploy_contract(self, address: Address, code: bytes, name: str = "") -> ContractMeta:
        return self.codes.deploy(address, code, name)

    def account_summary(
        self, address: Address, slots: Optional[Iterable[int]] = None, height: int = -1
    ) -> AccountSummary:
        snap = self.latest if height < 0 else self.snapshot(height)
        storage: Dict[int, int] = {}
        for slot in slots or ():
            storage[slot] = snap.get(StateKey(address, slot))
        return AccountSummary(
            address=address,
            balance=snap.balance_of(address),
            nonce=snap.nonce_of(address),
            is_contract=self.codes.is_contract(address),
            storage=storage,
        )
