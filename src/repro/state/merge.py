"""Declared-operation merge algebra: generalized commutative state updates.

The paper's blind-increment rule (ω̄) covers exactly one shape — ``key +=
delta`` where the read feeds nothing but the addition.  Real hot spots are
wider: ERC20 balances are debited behind a ``require(balance >= amount)``
guard, AMM reserves are bounded, auction state is a running ``max``,
allow-lists are set inserts.  Garamvölgyi et al. (PAPERS.md) show these
*application-inherent* conflicts dominate mainnet traffic; Dickerson et
al. establish that commutativity is what makes them schedulable.

A :class:`MergeSpec` is a contract author's declaration that every in-block
access to a state key has the shape

    ``guard(lower <= op(value, x) <= upper)  →  value = op(value, x)``

i.e. the observed value feeds *only* the declared bounds check and the
declared operation.  Under that promise the executor may answer reads from
any fold of already-arrived operands and log a **merge intent** instead of
an absolute write: intents commute, per-shard commits fold them locally,
and a cross-shard reduce combines per-shard folds at seal.  Serial
execution keeps doing ordinary read-modify-write — the fold laws below
guarantee the results are byte-identical, which the hypothesis property
tests and the differential verifier both check.

Two algebraic families, one lattice:

* ``ADD``/``SUB`` — group ops, *delta-encodable*: an intent is the signed
  delta mod 2**256, and any fold order gives the same sum.
* ``MAX``/``MIN``/``SET_INSERT`` — idempotent semilattice ops: an intent
  is the operand itself, and folding final values of disjoint partitions
  equals folding all operands (``reduce`` below relies on exactly this).

Bounds are part of the declaration because they are part of the promise:
a guard that reads the value can only be tolerated if the executor can
re-evaluate its outcome when earlier intents arrive late.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.types import Address, StateKey

WORD = 1 << 256


class MergeOp(Enum):
    """The declared operation of a merge key."""

    ADD = "add"
    SUB = "sub"
    MAX = "max"
    MIN = "min"
    SET_INSERT = "set_insert"

    @property
    def delta_encodable(self) -> bool:
        """True when an intent can ride the executors' existing commutative
        delta channel (published as ``key += signed delta mod 2**256``)."""
        return self in (MergeOp.ADD, MergeOp.SUB)

    @property
    def idempotent(self) -> bool:
        """True for the semilattice ops: applying an operand twice equals
        applying it once (max/min/set-insert)."""
        return self in (MergeOp.MAX, MergeOp.MIN, MergeOp.SET_INSERT)


@dataclass(frozen=True)
class MergeSpec:
    """One key's declaration: the operation plus optional bounds.

    ``lower``/``upper`` bound the *post-operation* value; ``None`` means
    unbounded on that side.  For ``ADD``/``SUB`` the natural word range
    [0, 2**256) is always implicitly enforced by the state layer (the
    StateDB rejects negative values), so ``lower=0`` is the common
    ERC20-balance declaration.
    """

    op: MergeOp
    lower: Optional[int] = None
    upper: Optional[int] = None

    def apply(self, base: int, operand: int) -> int:
        """One step of the declared operation (no bounds check)."""
        op = self.op
        if op is MergeOp.ADD:
            return (base + operand) % WORD
        if op is MergeOp.SUB:
            return (base - operand) % WORD
        if op is MergeOp.MAX:
            return base if base >= operand else operand
        if op is MergeOp.MIN:
            return base if base <= operand else operand
        return base | operand  # SET_INSERT: bitmask union

    def in_bounds(self, value: int) -> bool:
        if self.lower is not None and value < self.lower:
            return False
        if self.upper is not None and value > self.upper:
            return False
        return True

    def outcome(self, base: int, operand: int) -> bool:
        """The declared guard's verdict for applying ``operand`` at
        ``base``: does the post-operation value stay in bounds?

        For ``SUB`` the word-wrap itself is out of bounds whenever a lower
        bound exists (an underflowing balance debit must fail, not wrap).
        """
        result = self.apply(base, operand)
        if self.op is MergeOp.SUB and self.lower is not None:
            if operand % WORD > base:
                return False
        return self.in_bounds(result)

    def fold(self, base: int, operands: Iterable[int]) -> int:
        """Fold a sequence of intents onto ``base``.

        Commutative and associative for every op (the property tests
        permute fold order and assert equality), so any arrival order an
        executor observes produces the same value.
        """
        value = base
        for operand in operands:
            value = self.apply(value, operand)
        return value

    def reduce(self, snapshot_value: int, finals: Sequence[int]) -> int:
        """Cross-shard reduce: combine per-shard *final* values of a key
        that only received declared-op intents in each shard.

        For the group ops each shard's final is ``snapshot + Σ deltas``, so
        the block total is ``snapshot + Σ (final_i - snapshot)``.  For the
        idempotent semilattice ops the fold of finals *is* the fold of all
        operands (finals already include ``snapshot`` as a fold seed).
        """
        if not finals:
            return snapshot_value
        if self.op.delta_encodable:
            total = snapshot_value
            for final in finals:
                total = (total + final - snapshot_value) % WORD
            return total
        value = finals[0]
        for final in finals[1:]:
            value = self.apply(value, final)
        return value

    def as_dict(self) -> dict:
        return {"op": self.op.value, "lower": self.lower, "upper": self.upper}

    @classmethod
    def from_dict(cls, payload: dict) -> "MergeSpec":
        return cls(op=MergeOp(payload["op"]), lower=payload.get("lower"),
                   upper=payload.get("upper"))


class MergeRegistry:
    """The block-level declaration table: state key → :class:`MergeSpec`.

    Executors consult it on every state access of a declared key (a plain
    dict lookup); an empty registry is the paper's original semantics.
    Declarations are data, not code — they round-trip through JSON so a
    deployment can ship them alongside contract metadata and benches can
    stamp them into result provenance.
    """

    def __init__(self) -> None:
        self._specs: Dict[StateKey, MergeSpec] = {}

    def __len__(self) -> int:
        return len(self._specs)

    def __bool__(self) -> bool:
        return bool(self._specs)

    def __iter__(self):
        return iter(self._specs.items())

    def declare(self, key: StateKey, op: MergeOp,
                lower: Optional[int] = None,
                upper: Optional[int] = None) -> MergeSpec:
        spec = MergeSpec(op=op, lower=lower, upper=upper)
        self._specs[key] = spec
        return spec

    def lookup(self, key: StateKey) -> Optional[MergeSpec]:
        return self._specs.get(key)

    def keys(self) -> List[StateKey]:
        return list(self._specs)

    # -- JSON round-trip ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": 1,
            "declarations": [
                {
                    "address": key.address.to_bytes().hex(),
                    "slot": key.slot,
                    **spec.as_dict(),
                }
                for key, spec in sorted(
                    self._specs.items(),
                    key=lambda item: (item[0].address.to_bytes(), item[0].slot),
                )
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MergeRegistry":
        registry = cls()
        for entry in payload.get("declarations", ()):
            key = StateKey(Address.from_bytes(bytes.fromhex(entry["address"])),
                           entry["slot"])
            registry._specs[key] = MergeSpec.from_dict(entry)
        return registry

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "MergeRegistry":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))
