"""``DurableBackend``: the crash-safe, prunable node store over the log.

Layers, bottom-up:

* a :class:`~repro.db.log.SegmentedLog` holding CRC-framed node records and
  per-block commit markers;
* an in-memory ``digest → (segment, offset, length)`` index rebuilt by
  recovery replay on every open (truncating any torn tail past the last
  valid commit marker);
* a bounded LRU of decoded-record bytes so hot nodes never touch the disk
  twice (``cache_hits``/``cache_misses`` feed the ``CommitPersisted`` obs
  event);
* reference-counted pruning: :meth:`compact` walks the roots inside the
  retention window, counts references to every reachable node, rewrites
  exactly the live set into fresh segments, re-asserts the retained commit
  markers, and unlinks the old segments — reclaiming every byte that was
  only reachable from expired roots, without changing any retained root.

The backend stores *encoded* nodes and never imports the trie mutation
logic; only :meth:`compact` and :meth:`fsck` decode nodes, and only to
discover child hashes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.hashing import keccak
from ..trie.nodes import BranchNode, ExtensionNode, decode_node
from .backend import CommitIO
from .faults import FaultPlan
from .log import (
    KIND_COMMIT,
    KIND_NODE,
    SegmentedLog,
    decode_commit_payload,
    decode_node_payload,
    encode_commit_payload,
    encode_node_payload,
)

DEFAULT_CACHE_NODES = 4096
DEFAULT_RETENTION = 64

_Loc = Tuple[int, int, int]  # segment id, payload offset, payload length


@dataclass
class CompactionReport:
    """Outcome of one :meth:`DurableBackend.compact` run."""

    bytes_before: int = 0
    bytes_after: int = 0
    nodes_before: int = 0
    nodes_kept: int = 0
    nodes_pruned: int = 0
    roots_retained: int = 0
    roots_dropped: int = 0

    @property
    def bytes_reclaimed(self) -> int:
        return max(self.bytes_before - self.bytes_after, 0)

    @property
    def reclaimed_fraction(self) -> float:
        return self.bytes_reclaimed / self.bytes_before if self.bytes_before else 0.0

    def render(self) -> str:
        return (
            f"compacted: {self.bytes_before} -> {self.bytes_after} bytes "
            f"({self.reclaimed_fraction:.0%} reclaimed), "
            f"kept {self.nodes_kept}/{self.nodes_before} nodes, "
            f"pruned {self.nodes_pruned}, retained {self.roots_retained} "
            f"root(s), dropped {self.roots_dropped}"
        )


@dataclass
class FsckReport:
    """Outcome of an integrity walk over every retained root."""

    roots_checked: int = 0
    nodes_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        status = "clean" if self.ok else f"{len(self.errors)} error(s)"
        lines = [
            f"fsck: {status} — {self.roots_checked} root(s), "
            f"{self.nodes_checked} reachable node(s) verified"
        ]
        lines.extend(f"  {error}" for error in self.errors)
        return "\n".join(lines)


@dataclass
class DBStats:
    """Static shape of the store, for ``repro db stats``."""

    segments: int = 0
    total_bytes: int = 0
    node_count: int = 0
    node_bytes: int = 0
    roots: int = 0
    height_min: int = -1
    height_max: int = -1
    cache_hits: int = 0
    cache_misses: int = 0
    pruned_total: int = 0
    truncated_on_recovery: int = 0

    def render(self) -> str:
        reads = self.cache_hits + self.cache_misses
        rate = self.cache_hits / reads if reads else 0.0
        heights = (
            f"{self.height_min}..{self.height_max}" if self.roots else "(none)"
        )
        return "\n".join([
            f"segments:          {self.segments}",
            f"total bytes:       {self.total_bytes}",
            f"indexed nodes:     {self.node_count} ({self.node_bytes} payload bytes)",
            f"retained roots:    {self.roots}  heights {heights}",
            f"cache:             {self.cache_hits} hits / {self.cache_misses} misses "
            f"({rate:.1%})",
            f"pruned (lifetime): {self.pruned_total}",
            f"recovery truncate: {self.truncated_on_recovery} bytes",
        ])


class DurableBackend:
    """Disk-backed :class:`~repro.db.backend.NodeBackend`.

    Opening an existing directory *is* recovery: the log is replayed
    record by record, nodes become visible only once a valid commit marker
    covers them, and the physical file is truncated back to the last valid
    marker so a crashed writer leaves no trace beyond its last commit.
    """

    durable = True

    def __init__(
        self,
        directory: str,
        *,
        cache_nodes: int = DEFAULT_CACHE_NODES,
        segment_bytes: int = 4 << 20,
        retention: int = DEFAULT_RETENTION,
        faults: Optional[FaultPlan] = None,
        fsync_delay: float = 0.0,
    ) -> None:
        self.retention = retention
        self._log = SegmentedLog(
            directory, segment_bytes=segment_bytes, faults=faults,
            fsync_delay=fsync_delay,
        )
        self._index: Dict[bytes, _Loc] = {}
        self.roots: List[Tuple[int, Optional[bytes]]] = []
        self._cache: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._cache_nodes = cache_nodes
        self.cache_hits = 0
        self.cache_misses = 0
        self.pruned_total = 0
        self.truncated_on_recovery = 0
        self.last_io: Optional[CommitIO] = None
        self._mark_bytes = 0
        self._mark_hits = 0
        self._mark_misses = 0
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the index by replaying the log; drop the torn tail."""
        pending: Dict[bytes, _Loc] = {}
        seen_markers = set()
        first = self._log.segment_ids()[0]
        last_good: Tuple[int, int] = (first, 8)  # just past the magic
        for kind, payload, sid, offset, end in self._log.scan():
            if kind == KIND_NODE:
                digest, encoded = decode_node_payload(payload)
                pending[digest] = (sid, offset + 32, len(encoded))
            else:
                height, root = decode_commit_payload(payload)
                self._index.update(pending)
                pending.clear()
                # A marker may repeat an earlier (height, root) — that's a
                # compaction that re-asserted its retained roots and then
                # crashed before unlinking the old segments.  Dedup keeps
                # ``roots`` sorted and duplicate-free either way.
                if (height, root) not in seen_markers:
                    seen_markers.add((height, root))
                    self.roots.append((height, root))
                last_good = (sid, end)
        self.truncated_on_recovery = self._log.truncate_to(*last_good)
        self._mark_bytes = self._log.appended_bytes

    # ------------------------------------------------------------------
    # NodeBackend protocol
    # ------------------------------------------------------------------

    def put(self, digest: bytes, encoded: bytes) -> bool:
        if digest in self._index:
            return False  # content-addressed dedup: never re-append
        sid, offset = self._log.append(
            KIND_NODE, encode_node_payload(digest, encoded)
        )
        self._index[digest] = (sid, offset + 32, len(encoded))
        self._cache_store(digest, encoded)
        return True

    def get(self, digest: bytes) -> Optional[bytes]:
        cache = self._cache
        encoded = cache.get(digest)
        if encoded is not None:
            cache.move_to_end(digest)
            self.cache_hits += 1
            return encoded
        loc = self._index.get(digest)
        if loc is None:
            return None
        self.cache_misses += 1
        sid, offset, length = loc
        encoded = self._log.read(sid, offset, length)
        self._cache_store(digest, encoded)
        return encoded

    def commit_root(self, root: Optional[bytes], height: int) -> CommitIO:
        """Append the commit marker, fsync, and account the block's I/O.
        This is the durability boundary recovery rolls back to."""
        self._log.append(KIND_COMMIT, encode_commit_payload(height, root))
        fsync_time = self._log.sync()
        self.roots.append((height, root))
        io = CommitIO(
            bytes_appended=self._log.appended_bytes - self._mark_bytes,
            fsync_time=fsync_time,
            cache_hits=self.cache_hits - self._mark_hits,
            cache_misses=self.cache_misses - self._mark_misses,
        )
        self._mark_bytes = self._log.appended_bytes
        self._mark_hits = self.cache_hits
        self._mark_misses = self.cache_misses
        self._log.maybe_roll()
        self.last_io = io
        return io

    def close(self) -> None:
        self._log.close()

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._index

    def __len__(self) -> int:
        return len(self._index)

    def _cache_store(self, digest: bytes, encoded: bytes) -> None:
        cache = self._cache
        cache[digest] = encoded
        if len(cache) > self._cache_nodes:
            cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def _reachable(
        self, roots: List[Optional[bytes]]
    ) -> Tuple[List[bytes], Dict[bytes, int]]:
        """DFS from ``roots``; returns reachable digests in first-visit
        order plus the reference count of every reachable node (parents +
        roots pointing at it)."""
        order: List[bytes] = []
        refs: Dict[bytes, int] = {}
        stack = [root for root in roots if root is not None]
        for root in stack:
            refs[root] = refs.get(root, 0)
        stack.reverse()
        while stack:
            digest = stack.pop()
            refs[digest] = refs.get(digest, 0) + 1
            if refs[digest] > 1:
                continue  # shared subtree: counted, already walked
            order.append(digest)
            encoded = self.get(digest)
            if encoded is None:
                raise KeyError(f"missing trie node {digest.hex()} during walk")
            node = decode_node(encoded)
            if isinstance(node, ExtensionNode):
                stack.append(node.child)
            elif isinstance(node, BranchNode):
                for child in node.children:
                    if child is not None:
                        stack.append(child)
        return order, refs

    # ------------------------------------------------------------------
    # Pruning / compaction
    # ------------------------------------------------------------------

    def retained_roots(
        self, retention: Optional[int] = None
    ) -> List[Tuple[int, Optional[bytes]]]:
        """The commit markers inside the retention window (always at least
        the latest root, whatever the window says)."""
        window = self.retention if retention is None else retention
        if not self.roots:
            return []
        max_height = self.roots[-1][0]
        cutoff = max_height - max(window, 1) + 1
        kept = [(h, r) for h, r in self.roots if h >= cutoff]
        return kept if kept else [self.roots[-1]]

    def compact(self, retention: Optional[int] = None) -> CompactionReport:
        """Drop every node reachable only from roots outside the retention
        window.  Crash-safe: the live set is rewritten into *new* segments
        and the retained markers re-asserted *before* old segments are
        unlinked, so a crash mid-compaction recovers to either the old or
        the new layout, never a mix."""
        report = CompactionReport(
            bytes_before=self._log.total_bytes(),
            nodes_before=len(self._index),
        )
        retained = self.retained_roots(retention)
        report.roots_dropped = len(self.roots) - len(retained)
        order, _refs = self._reachable([root for _, root in retained])
        self._log.roll()
        first_new = self._log.active_id
        new_index: Dict[bytes, _Loc] = {}
        for digest in order:
            encoded = self.get(digest)
            sid, offset = self._log.append(
                KIND_NODE, encode_node_payload(digest, encoded)
            )
            new_index[digest] = (sid, offset + 32, len(encoded))
            self._log.maybe_roll()
        for height, root in retained:
            self._log.append(KIND_COMMIT, encode_commit_payload(height, root))
        self._log.sync()
        self._log.delete_segments_before(first_new)
        pruned = len(self._index) - len(new_index)
        self._index = new_index
        for digest in [d for d in self._cache if d not in new_index]:
            del self._cache[digest]
        self.roots = list(retained)
        self.pruned_total += pruned
        self._mark_bytes = self._log.appended_bytes
        report.bytes_after = self._log.total_bytes()
        report.nodes_kept = len(new_index)
        report.nodes_pruned = pruned
        report.roots_retained = len(retained)
        return report

    # ------------------------------------------------------------------
    # Integrity & stats
    # ------------------------------------------------------------------

    def fsck(self) -> FsckReport:
        """Walk every retained root verifying each reachable node exists
        and its bytes still hash to its digest (CRCs were already enforced
        by recovery replay on open)."""
        report = FsckReport()
        seen = set()
        for height, root in self.retained_roots():
            report.roots_checked += 1
            if root is None:
                continue
            stack = [root]
            while stack:
                digest = stack.pop()
                if digest in seen:
                    continue
                seen.add(digest)
                encoded = self.get(digest)
                if encoded is None:
                    report.errors.append(
                        f"height {height}: missing node {digest.hex()[:16]}"
                    )
                    continue
                if keccak(encoded) != digest:
                    report.errors.append(
                        f"height {height}: node {digest.hex()[:16]} "
                        "bytes do not match digest"
                    )
                    continue
                report.nodes_checked += 1
                node = decode_node(encoded)
                if isinstance(node, ExtensionNode):
                    stack.append(node.child)
                elif isinstance(node, BranchNode):
                    stack.extend(c for c in node.children if c is not None)
        return report

    def stats(self) -> DBStats:
        heights = [h for h, _ in self.roots]
        return DBStats(
            segments=len(self._log.segment_ids()),
            total_bytes=self._log.total_bytes(),
            node_count=len(self._index),
            node_bytes=sum(length for _, _, length in self._index.values()),
            roots=len(self.roots),
            height_min=min(heights) if heights else -1,
            height_max=max(heights) if heights else -1,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            pruned_total=self.pruned_total,
            truncated_on_recovery=self.truncated_on_recovery,
        )
