"""Fault injection for the storage engine.

Crash-recovery testing needs to *cause* the failures the recovery path
claims to survive.  A :class:`FaultPlan` attached to a
:class:`~repro.db.log.SegmentedLog` makes the log misbehave in the three
ways a real process death can:

* ``crash_after_bytes=N`` — the next append that would push the total
  bytes written past ``N`` writes only the part that fits (a torn record)
  and raises :class:`InjectedCrash`, simulating the kernel persisting a
  prefix of a write when the process dies mid-``write(2)``.
* ``torn_tail_bytes=N`` — on close, the final ``N`` bytes of the active
  segment are chopped off, simulating a tail that never reached the platter
  because the last page was still dirty.
* ``skip_fsync=True`` — ``fsync`` becomes a no-op, so a test can model the
  window where data sits in the page cache only.

The plan is plain data; all enforcement lives in the log layer, so the
engine and everything above it exercise their *normal* code paths right up
to the instant of the simulated crash — exactly what the crash-recovery
fuzz campaign in :mod:`repro.verify.crash` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ReproError


class InjectedCrash(ReproError):
    """Raised by a fault-armed log at the simulated instant of death."""


@dataclass
class FaultPlan:
    """What should go wrong, and when.  All fields default to 'nothing'."""

    crash_after_bytes: Optional[int] = None  # budget of bytes before the crash
    torn_tail_bytes: int = 0                 # chopped off the tail on close
    skip_fsync: bool = False                 # fsync silently does nothing

    @property
    def armed(self) -> bool:
        return (
            self.crash_after_bytes is not None
            or self.torn_tail_bytes > 0
            or self.skip_fsync
        )


NO_FAULTS = FaultPlan()
