"""The ``NodeBackend`` protocol and its in-memory reference implementation.

A backend stores *encoded* trie nodes keyed by their 32-byte content hash
and records commit markers.  :class:`~repro.trie.mpt.NodeStore` writes
through whichever backend it is given, so the whole stack above it —
``Trie``, ``TrieOverlay.seal``, ``StateDB.commit``, the validator — is
agnostic to whether state lives in a dict (:class:`MemoryBackend`, the
default; tests unchanged) or on disk
(:class:`~repro.db.engine.DurableBackend`, via ``StateDB.open(path)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

try:  # Protocol is 3.8+; keep a graceful fallback for exotic interpreters.
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


@dataclass
class CommitIO:
    """What one durable commit cost, surfaced into ``CommitReport``,
    ``BlockMetrics`` and the ``CommitPersisted`` obs event.

    ``cache_hits``/``cache_misses`` are the node-cache deltas accumulated
    since the previous commit marker (the reads this block's execution and
    sealing performed); ``pruned_nodes`` is non-zero only when this commit
    triggered an automatic compaction.
    """

    bytes_appended: int = 0
    fsync_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    pruned_nodes: int = 0

    @property
    def cache_hit_rate(self) -> float:
        reads = self.cache_hits + self.cache_misses
        return self.cache_hits / reads if reads else 0.0


class NodeBackend(Protocol):
    """Storage contract under the state trie.

    ``put`` must be idempotent per digest (content-addressed storage);
    returning ``False`` signals the digest was already present, which is
    the dedup fast path durable backends use to avoid re-appending bytes.
    ``get`` returns the encoded node or ``None`` when absent.
    ``commit_root`` records a durability boundary and returns the
    :class:`CommitIO` it cost (``None`` for non-durable backends).
    """

    def put(self, digest: bytes, encoded: bytes) -> bool: ...

    def get(self, digest: bytes) -> Optional[bytes]: ...

    def commit_root(self, root: Optional[bytes], height: int) -> Optional[CommitIO]: ...

    def close(self) -> None: ...

    def __contains__(self, digest: bytes) -> bool: ...

    def __len__(self) -> int: ...


class MemoryBackend:
    """The original behaviour: a process-lifetime dict, no durability.

    ``commit_root`` is a no-op returning ``None`` so the commit path above
    stays branch-cheap when running in-memory.
    """

    durable = False

    def __init__(self) -> None:
        self._nodes: Dict[bytes, bytes] = {}

    def put(self, digest: bytes, encoded: bytes) -> bool:
        if digest in self._nodes:
            return False
        self._nodes[digest] = encoded
        return True

    def get(self, digest: bytes) -> Optional[bytes]:
        return self._nodes.get(digest)

    def commit_root(self, root: Optional[bytes], height: int) -> Optional[CommitIO]:
        return None

    def close(self) -> None:
        pass

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)
