"""Segmented append-only log: the on-disk substrate of ``repro.db``.

The store's whole write history is a sequence of *records* spread across
numbered *segment* files (``seg-00000000.log``, ``seg-00000001.log``, …) in
one directory.  Each segment starts with an 8-byte magic; each record is::

    kind (1 byte) | payload length (4 bytes LE) | crc32 (4 bytes LE) | payload

with the CRC computed over ``kind || payload``.  Two record kinds exist:

* ``NODE``   — payload is ``digest (32 bytes) || encoded trie node``;
* ``COMMIT`` — payload is ``height (8 bytes LE) || flag (1 byte) ||
  root (32 bytes when flag == 1)``; a flag of 0 encodes the empty trie.

The commit marker is the durability boundary: a node record only *counts*
once a later valid commit marker covers it.  Recovery replays every segment
in order, validating CRCs, and truncates the log back to the byte just
after the last valid commit marker — torn tails and uncommitted node
records simply vanish, which is the recovery invariant
``docs/STORAGE.md`` documents and ``repro.verify.crash`` fuzzes.

The log knows nothing about tries or indexes; it moves bytes, rolls
segments, syncs, truncates, and injects faults (:mod:`repro.db.faults`).
Interpretation lives in :mod:`repro.db.engine`.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import ReproError
from .faults import NO_FAULTS, FaultPlan, InjectedCrash

MAGIC = b"REPRODB\x01"
HEADER = struct.Struct("<BII")  # kind, payload length, crc32

KIND_NODE = 1
KIND_COMMIT = 2

DEFAULT_SEGMENT_BYTES = 4 << 20


class LogError(ReproError):
    """A structural problem with the log directory itself (not a torn
    tail, which recovery handles silently)."""


def _crc(kind: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bytes((kind,)))) & 0xFFFFFFFF


class SegmentedLog:
    """Byte-level segment manager with CRC-framed records.

    One writer handle stays open on the *active* (highest-numbered)
    segment; reads open per-segment handles lazily.  ``appended_bytes``
    counts every byte this handle has appended — the engine diffs it to
    report per-commit I/O.

    Reads and appends may come from different threads (the pipeline's
    stream lane reads sealed trie nodes while the commit lane appends the
    next batch), so everything touching the shared handles — the seek+read
    pair on a per-segment reader, the writer swap on a roll, truncation —
    runs under one internal lock.  The ``fsync`` syscall itself stays
    *outside* the lock: it is the slow part the pipeline exists to overlap,
    and only the single commit lane ever syncs or rolls the writer.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        faults: Optional[FaultPlan] = None,
        fsync_delay: float = 0.0,
    ) -> None:
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.faults = faults if faults is not None else NO_FAULTS
        # Emulated extra fsync latency (seconds), for benchmarking.  The
        # pure-Python execute/seal stages run ~100x slower than a compiled
        # client while fsync runs at real-hardware speed, which shrinks the
        # persist stage to noise; the delay restores a commodity-disk
        # weight.  Implemented as a sleep *after* the real fsync, so the
        # durability semantics are untouched and (sleep releases the GIL)
        # the overlap a pipeline can claim against it is genuine.
        self.fsync_delay = fsync_delay
        self.appended_bytes = 0
        self._crash_budget = self.faults.crash_after_bytes
        self._lock = threading.RLock()
        os.makedirs(directory, exist_ok=True)
        self._readers: Dict[int, object] = {}
        ids = self._discover()
        if not ids:
            self._create_segment(0)
            ids = [0]
        self._ids: List[int] = ids
        self._open_writer(ids[-1])

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------

    def _discover(self) -> List[int]:
        ids = []
        for name in os.listdir(self.directory):
            if name.startswith("seg-") and name.endswith(".log"):
                try:
                    ids.append(int(name[4:-4]))
                except ValueError:
                    raise LogError(f"unparseable segment name {name!r}")
        return sorted(ids)

    def path(self, segment_id: int) -> str:
        return os.path.join(self.directory, f"seg-{segment_id:08d}.log")

    def _create_segment(self, segment_id: int) -> None:
        with open(self.path(segment_id), "wb") as handle:
            handle.write(MAGIC)
            handle.flush()
            os.fsync(handle.fileno())

    def _open_writer(self, segment_id: int) -> None:
        self._active_id = segment_id
        self._writer = open(self.path(segment_id), "ab")
        self._active_size = os.path.getsize(self.path(segment_id))

    @property
    def active_id(self) -> int:
        return self._active_id

    def segment_ids(self) -> List[int]:
        return list(self._ids)

    def total_bytes(self) -> int:
        with self._lock:
            self._writer.flush()
            return sum(os.path.getsize(self.path(i)) for i in self._ids)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _write(self, data: bytes) -> None:
        """One fault-aware write.  A crash budget that runs out mid-buffer
        persists only the prefix that fits — a torn record on disk."""
        if self._crash_budget is not None:
            if len(data) > self._crash_budget:
                kept = data[: self._crash_budget]
                if kept:
                    self._writer.write(kept)
                self._writer.flush()
                self._crash_budget = 0
                raise InjectedCrash(
                    f"injected crash after {self.appended_bytes + len(kept)} bytes"
                )
            self._crash_budget -= len(data)
        self._writer.write(data)
        self.appended_bytes += len(data)
        self._active_size += len(data)

    def append(self, kind: int, payload: bytes) -> Tuple[int, int]:
        """Append one record; returns ``(segment_id, payload_offset)``."""
        with self._lock:
            offset = self._active_size
            header = HEADER.pack(kind, len(payload), _crc(kind, payload))
            self._write(header + payload)
            return self._active_id, offset + HEADER.size

    def sync(self) -> float:
        """Flush and fsync the active segment; returns the fsync seconds
        (0.0 when the fault plan skips fsync)."""
        with self._lock:
            self._writer.flush()
            if self.faults.skip_fsync:
                return 0.0
            fd = self._writer.fileno()
        # fsync outside the lock: concurrent reads of already-flushed bytes
        # need not wait out the disk, and only this (commit-lane) thread
        # ever rolls or closes the writer, so fd stays valid.
        start = time.perf_counter()
        os.fsync(fd)
        if self.fsync_delay:
            time.sleep(self.fsync_delay)
        return time.perf_counter() - start

    def maybe_roll(self) -> bool:
        """Start a fresh segment once the active one exceeds its budget.
        Called between commits so segments end on commit boundaries."""
        if self._active_size < self.segment_bytes:
            return False
        self.roll()
        return True

    def roll(self) -> None:
        with self._lock:
            self._writer.flush()
            self._writer.close()
            next_id = self._active_id + 1
            self._create_segment(next_id)
            self._ids.append(next_id)
            self._open_writer(next_id)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def read(self, segment_id: int, offset: int, length: int) -> bytes:
        with self._lock:
            if segment_id == self._active_id:
                self._writer.flush()
            reader = self._readers.get(segment_id)
            if reader is None:
                reader = open(self.path(segment_id), "rb")
                self._readers[segment_id] = reader
            reader.seek(offset)
            data = reader.read(length)
        if len(data) != length:
            raise LogError(
                f"short read in segment {segment_id} at {offset} "
                f"(wanted {length}, got {len(data)})"
            )
        return data

    def scan(self) -> Iterator[Tuple[int, bytes, int, int, int]]:
        """Replay every structurally valid record in order.

        Yields ``(kind, payload, segment_id, payload_offset, end_offset)``.
        Stops cleanly at the first corruption — a short header, an
        impossible kind, a short payload, or a CRC mismatch — and ignores
        every later segment (a torn write never has valid data after it).
        """
        self._writer.flush()
        for segment_id in self._ids:
            size = os.path.getsize(self.path(segment_id))
            with open(self.path(segment_id), "rb") as handle:
                if handle.read(len(MAGIC)) != MAGIC:
                    return
                offset = len(MAGIC)
                while offset + HEADER.size <= size:
                    handle.seek(offset)
                    kind, length, crc = HEADER.unpack(handle.read(HEADER.size))
                    if kind not in (KIND_NODE, KIND_COMMIT):
                        return
                    if offset + HEADER.size + length > size:
                        return  # torn payload
                    payload = handle.read(length)
                    if _crc(kind, payload) != crc:
                        return
                    end = offset + HEADER.size + length
                    yield kind, payload, segment_id, offset + HEADER.size, end
                    offset = end
                if offset != size:
                    return  # torn header at the tail

    # ------------------------------------------------------------------
    # Truncation & deletion
    # ------------------------------------------------------------------

    def truncate_to(self, segment_id: int, offset: int) -> int:
        """Drop everything after ``offset`` in ``segment_id`` (deleting all
        later segments); returns the number of bytes removed."""
        with self._lock:
            return self._truncate_to(segment_id, offset)

    def _truncate_to(self, segment_id: int, offset: int) -> int:
        self._writer.flush()
        self._writer.close()
        self._close_readers()
        removed = 0
        for sid in [i for i in self._ids if i > segment_id]:
            removed += os.path.getsize(self.path(sid))
            os.remove(self.path(sid))
            self._ids.remove(sid)
        size = os.path.getsize(self.path(segment_id))
        if size > offset:
            removed += size - offset
            with open(self.path(segment_id), "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
        self._open_writer(segment_id)
        return removed

    def delete_segments_before(self, segment_id: int) -> int:
        """Unlink every segment older than ``segment_id`` (compaction's
        final step); returns the bytes reclaimed."""
        with self._lock:
            self._close_readers()
            reclaimed = 0
            for sid in [i for i in self._ids if i < segment_id]:
                reclaimed += os.path.getsize(self.path(sid))
                os.remove(self.path(sid))
                self._ids.remove(sid)
            return reclaimed

    def _close_readers(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()

    def close(self) -> None:
        with self._lock:
            self._writer.flush()
            if self.faults.torn_tail_bytes:
                size = os.path.getsize(self.path(self._active_id))
                keep = max(size - self.faults.torn_tail_bytes, len(MAGIC))
                self._writer.close()
                with open(self.path(self._active_id), "r+b") as handle:
                    handle.truncate(keep)
            else:
                self._writer.close()
            self._close_readers()


def encode_node_payload(digest: bytes, encoded: bytes) -> bytes:
    return digest + encoded


def decode_node_payload(payload: bytes) -> Tuple[bytes, bytes]:
    return payload[:32], payload[32:]


def encode_commit_payload(height: int, root: Optional[bytes]) -> bytes:
    if root is None:
        return struct.pack("<Q", height) + b"\x00"
    return struct.pack("<Q", height) + b"\x01" + root


def decode_commit_payload(payload: bytes) -> Tuple[int, Optional[bytes]]:
    (height,) = struct.unpack_from("<Q", payload)
    if payload[8] == 0:
        return height, None
    return height, payload[9:41]
