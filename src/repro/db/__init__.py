"""repro.db — durable, crash-safe, prunable node storage under the trie.

The subsystem in one paragraph: trie nodes are appended to a segmented log
as CRC-framed records, a per-block *commit marker* makes everything before
it durable (fsync happens there), opening a store replays the log to
rebuild the hash→location index — truncating any torn tail past the last
valid marker — and reference-counted compaction rewrites just the nodes
reachable from roots inside a retention window, reclaiming the rest.  See
``docs/STORAGE.md`` for the format and invariants.

Everything above :class:`NodeBackend` is storage-agnostic:
``StateDB()`` keeps the in-memory dict (:class:`MemoryBackend`) and
``StateDB.open(path)`` swaps in :class:`DurableBackend` with no other code
changes.
"""

from .backend import CommitIO, MemoryBackend, NodeBackend
from .engine import (
    CompactionReport,
    DBStats,
    DurableBackend,
    FsckReport,
)
from .faults import FaultPlan, InjectedCrash
from .log import SegmentedLog

__all__ = [
    "CommitIO",
    "CompactionReport",
    "DBStats",
    "DurableBackend",
    "FaultPlan",
    "FsckReport",
    "InjectedCrash",
    "MemoryBackend",
    "NodeBackend",
    "SegmentedLog",
]
