"""``python -m repro db`` — operator tooling for the durable node store.

Subcommands
-----------
stats PATH             segment/node/root/cache accounting
fsck PATH              recovery replay + reachability/hash integrity walk
compact PATH           reference-counted pruning outside the retention window
"""

from __future__ import annotations

import sys

from .engine import DurableBackend


def _open(args) -> DurableBackend:
    return DurableBackend(args.path, retention=args.retention)


def cmd_db_stats(args) -> int:
    backend = _open(args)
    try:
        stats = backend.stats()
        print(stats.render())
        if backend.truncated_on_recovery:
            print(
                f"note: recovery dropped a {backend.truncated_on_recovery}-byte "
                "torn tail on open",
                file=sys.stderr,
            )
    finally:
        backend.close()
    return 0


def cmd_db_fsck(args) -> int:
    backend = _open(args)
    try:
        report = backend.fsck()
        print(report.render())
    finally:
        backend.close()
    return 0 if report.ok else 1


def cmd_db_compact(args) -> int:
    backend = _open(args)
    try:
        report = backend.compact()
        print(report.render())
        ok = backend.fsck().ok
        if not ok:
            print("compact: post-compaction fsck FAILED", file=sys.stderr)
    finally:
        backend.close()
    return 0 if ok else 1


def add_db_parser(sub) -> None:
    """Attach the ``db`` subcommand tree to the top-level CLI parser."""
    db = sub.add_parser(
        "db", help="inspect and maintain a durable node store directory"
    )
    db_sub = db.add_subparsers(dest="db_command", required=True)
    for name, func, help_text in (
        ("stats", cmd_db_stats, "print segment/node/root/cache accounting"),
        ("fsck", cmd_db_fsck, "verify every retained root's reachable nodes"),
        ("compact", cmd_db_compact,
         "prune nodes only reachable from expired roots"),
    ):
        cmd = db_sub.add_parser(name, help=help_text)
        cmd.add_argument("path", help="store directory (as in StateDB.open)")
        cmd.add_argument("--retention", type=int, default=64,
                         help="roots to keep when compacting (default 64)")
        cmd.set_defaults(func=func)
