"""Synthetic Ethereum-mainnet workload generator.

Reproduces the traffic mix of the paper's dataset (Jan–Apr 2022):

* 31% plain Ether transfers / 69% contract calls;
* of contract traffic: 60% ERC20, 29% DeFi (AMM swaps / liquidity),
  10% NFT (mints and transfers), ~1% ICO contributions;
* optional *hot-contract skew* for the high-contention experiments: a
  small set of hot targets that each transaction hits with probability
  ``hot_access_prob`` (the paper uses 1% hot contracts, 50% probability).

All randomness flows from one seeded RNG; a given config produces a
bit-identical transaction stream and genesis state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chain.transaction import Transaction
from ..core.types import Address, StateKey
from ..executors.serial import SerialExecutor
from ..lang.compiler import CompiledContract, compile_source
from ..state.statedb import StateDB
from .contracts import DEX_POOL_SOURCE, ERC20_SOURCE, ICO_SOURCE, NFT_SOURCE

ETHER = 10**18


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for one synthetic workload."""

    users: int = 2_000
    erc20_tokens: int = 20
    dex_pools: int = 8
    nft_collections: int = 6
    icos: int = 2
    # Traffic mix (paper §V-B).
    contract_fraction: float = 0.69
    erc20_share: float = 0.60
    defi_share: float = 0.29
    nft_share: float = 0.10   # remainder (~1%) goes to ICO contributions
    # Contention control (paper RQ2/RQ3 high-contention setting).
    hot_access_prob: float = 0.0
    hot_contract_count: int = 1      # per category when skew is on
    capped_ico: bool = True          # capped ICOs make the counter non-commutative
    exchange_deposit_prob: float = 0.5  # P(hot ERC20 tx is a deposit to the exchange)
    # Mainnet transfer traffic is heavily skewed toward a few popular
    # recipients (exchanges, routers): ~1% of accounts receive a large
    # share of credits.  Those credits are blind increments.
    popular_recipient_prob: float = 0.25
    popular_account_fraction: float = 0.01
    # DeFi traffic mixes swaps (read-write reserve chains) with liquidity
    # provision (commutative reserve adds), as mainnet DeFi does.
    liquidity_prob: float = 0.5
    # NFT traffic mixes fresh mints (hot counter) with transfers of
    # already-minted tokens (disjoint keys).
    nft_mint_prob: float = 0.4
    nft_premint_per_user: int = 2
    # Contract popularity follows a Zipf law on mainnet: the top token /
    # pool / collection receives a disproportionate share of its category's
    # traffic.  alpha=0 gives uniform choice.
    zipf_alpha: float = 1.1
    seed: int = 2023
    user_funds: int = 1_000 * ETHER
    token_funds: int = 10**12
    # Adversarial scenario overlay (see .scenarios).  ``scenario`` names one
    # scenario, a comma-separated list, or "mix" to rotate over all of them;
    # empty string disables the overlay entirely (pure mainnet mix).  Each
    # transaction is drawn from the scenario with ``scenario_fraction``
    # probability and from the base mix otherwise.
    scenario: str = ""
    scenario_fraction: float = 0.8
    # Cross-shard storm (repro.shard): the shard count the storm assumes
    # and the fraction of its traffic that deliberately spans shards.
    shard_count: int = 4
    cross_shard_ratio: float = 0.15
    reentrancy_depth: int = 6        # max nested self-call depth
    airdrop_amount: int = 50         # tokens per successful claim
    composition_legs: int = 3        # pools chained per routed DeFi tx
    abort_hot_keys: int = 8          # Example-contract keys the storm fights over


@dataclass
class DeployedContracts:
    """Addresses and compiled artefacts of everything on chain."""

    erc20: List[Address] = field(default_factory=list)
    pools: List[Address] = field(default_factory=list)
    nfts: List[Address] = field(default_factory=list)
    icos: List[Address] = field(default_factory=list)
    compiled: Dict[str, CompiledContract] = field(default_factory=dict)
    exchange: Optional[Address] = None  # hot ERC20 deposit sink

    def all_addresses(self) -> List[Address]:
        return self.erc20 + self.pools + self.nfts + self.icos


class Workload:
    """A fully initialised chain state plus a deterministic tx stream."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self._zipf_cache: Dict[int, List[float]] = {}
        self.users = [Address.derive(f"user:{i}:{config.seed}") for i in range(config.users)]
        self.contracts = DeployedContracts()
        self.db = StateDB()
        if config.scenario:
            from .scenarios import ScenarioPack

            self.scenarios: Optional[ScenarioPack] = ScenarioPack(self)
        else:
            self.scenarios = None
        self._compile()
        self._deploy()
        self._seed_state()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _compile(self) -> None:
        self.contracts.compiled = {
            "ERC20": compile_source(ERC20_SOURCE),
            "DEXPool": compile_source(DEX_POOL_SOURCE),
            "NFT": compile_source(NFT_SOURCE),
            "ICO": compile_source(ICO_SOURCE),
        }
        if self.scenarios is not None:
            self.scenarios.compile_extra(self.contracts.compiled)

    def _deploy(self) -> None:
        cfg = self.config
        compiled = self.contracts.compiled
        for i in range(cfg.erc20_tokens):
            addr = Address.derive(f"erc20:{i}:{cfg.seed}")
            self.db.deploy_contract(addr, compiled["ERC20"].code, f"ERC20-{i}")
            self.contracts.erc20.append(addr)
        for i in range(cfg.dex_pools):
            addr = Address.derive(f"pool:{i}:{cfg.seed}")
            self.db.deploy_contract(addr, compiled["DEXPool"].code, f"Pool-{i}")
            self.contracts.pools.append(addr)
        for i in range(cfg.nft_collections):
            addr = Address.derive(f"nft:{i}:{cfg.seed}")
            self.db.deploy_contract(addr, compiled["NFT"].code, f"NFT-{i}")
            self.contracts.nfts.append(addr)
        for i in range(cfg.icos):
            addr = Address.derive(f"ico:{i}:{cfg.seed}")
            self.db.deploy_contract(addr, compiled["ICO"].code, f"ICO-{i}")
            self.contracts.icos.append(addr)
        self.contracts.exchange = Address.derive(f"exchange:{cfg.seed}")
        if self.scenarios is not None:
            self.scenarios.deploy()

    def _seed_state(self) -> None:
        """Seed balances, token holdings, pool reserves, and ICO parameters
        directly into the genesis trie (equivalent to — but far faster
        than — executing setup blocks serially), so later C-SAG
        pre-executions see realistic state."""
        from ..core.hashing import mapping_slot
        from ..core.types import StateKey

        cfg = self.config
        compiled = self.contracts.compiled
        balances = {user: cfg.user_funds for user in self.users}
        balances[self.contracts.exchange] = cfg.user_funds

        storage: Dict[StateKey, int] = {}
        erc20 = compiled["ERC20"]
        bal_slot = erc20.slot_of("balanceOf")
        supply_slot = erc20.slot_of("totalSupply")
        for token in self.contracts.erc20:
            for user in self.users:
                storage[StateKey(token, mapping_slot(user.to_word(), bal_slot))] = (
                    cfg.token_funds
                )
            storage[StateKey(token, supply_slot)] = cfg.token_funds * len(self.users)

        pool_c = compiled["DEXPool"]
        rx_slot = pool_c.slot_of("reserveX")
        ry_slot = pool_c.slot_of("reserveY")
        bx_slot = pool_c.slot_of("balanceX")
        by_slot = pool_c.slot_of("balanceY")
        for pool in self.contracts.pools:
            # Deep reserves so swaps rarely drain a side.
            storage[StateKey(pool, rx_slot)] = 10**15
            storage[StateKey(pool, ry_slot)] = 10**15
            for user in self.users:
                storage[StateKey(pool, mapping_slot(user.to_word(), bx_slot))] = (
                    cfg.token_funds
                )
                storage[StateKey(pool, mapping_slot(user.to_word(), by_slot))] = (
                    cfg.token_funds
                )

        ico_c = compiled["ICO"]
        cap_slot = ico_c.slot_of("cap")
        rate_slot = ico_c.slot_of("rate")
        for ico in self.contracts.icos:
            if cfg.capped_ico:
                storage[StateKey(ico, cap_slot)] = 10**15
            storage[StateKey(ico, rate_slot)] = 100

        # Pre-minted NFTs: token i of each collection starts owned by user
        # i mod users, so transfer traffic has real tokens to move.
        nft_c = compiled["NFT"]
        next_id_slot = nft_c.slot_of("nextTokenId")
        owner_slot = nft_c.slot_of("ownerOf")
        nft_bal_slot = nft_c.slot_of("balanceOf")
        self._nft_owners: Dict[Address, List[Address]] = {}
        premint = min(len(self.users), 500) * cfg.nft_premint_per_user
        for collection in self.contracts.nfts:
            owners: List[Address] = []
            counts: Dict[Address, int] = {}
            for token_id in range(premint):
                owner = self.users[token_id % len(self.users)]
                owners.append(owner)
                counts[owner] = counts.get(owner, 0) + 1
                storage[StateKey(collection, mapping_slot(token_id, owner_slot))] = (
                    owner.to_word()
                )
            for owner, count in counts.items():
                storage[StateKey(collection, mapping_slot(owner.to_word(), nft_bal_slot))] = count
            storage[StateKey(collection, next_id_slot)] = premint
            self._nft_owners[collection] = owners

        if self.scenarios is not None:
            self.scenarios.seed(storage)
        self.db.seed_genesis(balances, storage)

    def commit_serially(self, txs: List[Transaction], chunk: int = 5_000) -> None:
        """Execute and commit transactions serially in chunked blocks.

        Used to advance the workload's chain (e.g. warming state between
        generated blocks); raises if any setup transaction fails.  Before
        the first post-seed commit the genesis root is re-derived from the
        snapshot's contents and asserted byte-identical (the root must be a
        pure function of the seeded state, or later root-parity checks are
        meaningless), and each chunk commit is surfaced through the DB's
        obs bus instead of looping silently.
        """
        from ..core.errors import StateError
        from ..trie.mpt import Trie

        if self.db.height == 0:
            rebuilt = Trie(self.db._store)
            rebuilt.commit_batch(self.db.latest.items())
            if rebuilt.root_hash != self.db.latest.root_hash:
                raise StateError(
                    "post-seed root unstable: rebuilding the genesis trie "
                    f"gave {rebuilt.root_hash.hex()[:12]}… instead of "
                    f"{self.db.latest.root_hash.hex()[:12]}…"
                )
        executor = SerialExecutor()
        obs = self.db.obs
        committed = 0
        for start in range(0, len(txs), chunk):
            block = txs[start : start + chunk]
            result = executor.execute_block(block, self.db.latest, self.db.codes.code_of)
            failed = [r for r in result.receipts if not r.result.success]
            if failed:
                raise RuntimeError(f"workload setup tx failed: {failed[0]}")
            previous_root = self.db.latest.root_hash
            snapshot = self.db.commit(result.writes)
            if not result.writes and snapshot.root_hash != previous_root:
                raise StateError("empty commit drifted the state root")
            committed += len(block)
            if obs is not None:
                obs.workload_chunk(
                    0.0, snapshot.height, committed, len(txs), snapshot.root_hash,
                )

    def declared_merges(self):
        """A :class:`~repro.state.merge.MergeRegistry` declaring this
        workload's provably commutative keys.

        Only ERC-20 balances and total supplies qualify: their values feed
        nothing but the declared bounds guard (``balance >= amount``) and
        the ``±`` arithmetic itself, which is exactly what outcome-stable
        merge validation covers.  Everything else stays undeclared — NFT id
        counters pick derived storage keys, AMM reserves price the opposite
        side, ICO counters gate a cap — so declaring them would change
        semantics (a wrong declaration, the contract author's liability).
        """
        from ..core.hashing import mapping_slot
        from ..state.merge import MergeOp, MergeRegistry

        registry = MergeRegistry()
        erc20 = self.contracts.compiled["ERC20"]
        bal_slot = erc20.slot_of("balanceOf")
        supply_slot = erc20.slot_of("totalSupply")
        holders = list(self.users)
        if self.contracts.exchange is not None:
            holders.append(self.contracts.exchange)
        for token in self.contracts.erc20:
            registry.declare(StateKey(token, supply_slot), MergeOp.SUB, lower=0)
            for holder in holders:
                registry.declare(
                    StateKey(token, mapping_slot(holder.to_word(), bal_slot)),
                    MergeOp.SUB, lower=0,
                )
        return registry

    # ------------------------------------------------------------------
    # Transaction stream
    # ------------------------------------------------------------------

    def _pick_hot(self, pool: List[Address]) -> List[Address]:
        return pool[: max(1, self.config.hot_contract_count)]

    def _pick_zipf(self, pool: List[Address]) -> Address:
        """Zipf-weighted contract choice (rank-1/rank^alpha)."""
        alpha = self.config.zipf_alpha
        if alpha <= 0 or len(pool) == 1:
            return self.rng.choice(pool)
        weights = self._zipf_weights(len(pool), alpha)
        return self.rng.choices(pool, cum_weights=weights, k=1)[0]

    def _zipf_weights(self, n: int, alpha: float) -> List[float]:
        cached = self._zipf_cache.get(n)
        if cached is None:
            total = 0.0
            cached = []
            for rank in range(1, n + 1):
                total += 1.0 / rank**alpha
                cached.append(total)
            self._zipf_cache[n] = cached
        return cached

    def transactions(self, count: int) -> List[Transaction]:
        """Generate ``count`` transactions with the configured mix."""
        return [self._one_transaction() for _ in range(count)]

    def blocks(self, block_count: int, txs_per_block: int) -> List[List[Transaction]]:
        """The paper's repacking: fixed-size blocks from the stream."""
        return [
            self.transactions(txs_per_block)
            for _ in range(block_count)
        ]

    def _one_transaction(self) -> Transaction:
        cfg = self.config
        rng = self.rng
        if self.scenarios is not None:
            scenario_tx = self.scenarios.maybe_transaction()
            if scenario_tx is not None:
                return scenario_tx
        hot = cfg.hot_access_prob > 0 and rng.random() < cfg.hot_access_prob
        if rng.random() >= cfg.contract_fraction:
            return self._ether_transfer(hot)
        share = rng.random()
        if share < cfg.erc20_share:
            return self._erc20_tx(hot)
        if share < cfg.erc20_share + cfg.defi_share:
            return self._defi_tx(hot)
        if share < cfg.erc20_share + cfg.defi_share + cfg.nft_share:
            return self._nft_tx(hot)
        return self._ico_tx(hot)

    def _user(self) -> Address:
        return self.rng.choice(self.users)

    def _recipient(self, sender: Address) -> Address:
        """Pick a transfer recipient with mainnet-style popularity skew."""
        cfg = self.config
        if self.rng.random() < cfg.popular_recipient_prob:
            popular = max(1, int(len(self.users) * cfg.popular_account_fraction))
            return self.rng.choice(self.users[:popular])
        recipient = self._user()
        while recipient == sender:
            recipient = self._user()
        return recipient

    def _ether_transfer(self, hot: bool) -> Transaction:
        sender = self._user()
        if hot:
            # Everyone pays the same hot account (exchange deposits).
            recipient = self.contracts.exchange
        else:
            recipient = self._recipient(sender)
        return Transaction(
            sender, recipient, self.rng.randint(1, 10**9), label="ether",
        )

    def _erc20_tx(self, hot: bool) -> Transaction:
        erc20 = self.contracts.compiled["ERC20"]
        rng = self.rng
        sender = self._user()
        token = (
            rng.choice(self._pick_hot(self.contracts.erc20))
            if hot else self._pick_zipf(self.contracts.erc20)
        )
        if hot and rng.random() < self.config.exchange_deposit_prob:
            recipient = self.contracts.exchange  # commutative hot credit
        else:
            recipient = self._recipient(sender)
        roll = rng.random()
        if roll < 0.85:
            data = erc20.encode_call("transfer", recipient, rng.randint(1, 1_000))
            label = "erc20:transfer"
        elif roll < 0.95:
            data = erc20.encode_call("approve", recipient, rng.randint(1, 10_000))
            label = "erc20:approve"
        else:
            data = erc20.encode_call("mint", recipient, rng.randint(1, 1_000))
            label = "erc20:mint"
        return Transaction(sender, token, 0, data, label=label)

    def _defi_tx(self, hot: bool) -> Transaction:
        pool_c = self.contracts.compiled["DEXPool"]
        rng = self.rng
        sender = self._user()
        pool = (
            rng.choice(self._pick_hot(self.contracts.pools))
            if hot else rng.choice(self.contracts.pools)
        )
        amount = rng.randint(1, 500)
        if rng.random() < self.config.liquidity_prob:
            # Liquidity provision: reserve updates are blind increments.
            data = pool_c.encode_call("addLiquidity", amount, amount)
            label = "defi:addLiquidity"
        elif rng.random() < 0.5:
            data = pool_c.encode_call("swapXForY", amount)
            label = "defi:swapX"
        else:
            data = pool_c.encode_call("swapYForX", amount)
            label = "defi:swapY"
        return Transaction(sender, pool, 0, data, label=label)

    def _nft_tx(self, hot: bool) -> Transaction:
        nft_c = self.contracts.compiled["NFT"]
        rng = self.rng
        collection = (
            rng.choice(self._pick_hot(self.contracts.nfts))
            if hot else self._pick_zipf(self.contracts.nfts)
        )
        owners = self._nft_owners[collection]
        if rng.random() < self.config.nft_mint_prob or not owners:
            sender = self._user()
            self._nft_owners[collection].append(sender)
            return Transaction(
                sender, collection, 0, nft_c.encode_call("mint"), label="nft:mint",
            )
        token_id = rng.randrange(len(owners))
        sender = owners[token_id]
        recipient = self._recipient(sender)
        owners[token_id] = recipient
        return Transaction(
            sender, collection, 0,
            nft_c.encode_call("transfer", recipient, token_id),
            label="nft:transfer",
        )

    def _ico_tx(self, hot: bool) -> Transaction:
        ico_c = self.contracts.compiled["ICO"]
        rng = self.rng
        sender = self._user()
        ico = (
            rng.choice(self._pick_hot(self.contracts.icos))
            if hot else self._pick_zipf(self.contracts.icos)
        )
        return Transaction(
            sender, ico, 0,
            ico_c.encode_call("contribute", rng.randint(1, 10_000)),
            label="ico:contribute",
        )


def low_contention_config(**overrides) -> WorkloadConfig:
    """The paper's mainnet-mix setting (Fig. 7(a) / Fig. 8(a))."""
    return WorkloadConfig(**overrides)


def high_contention_config(**overrides) -> WorkloadConfig:
    """The paper's skewed setting: hot contracts hit with 50% probability
    (Fig. 7(b) / Fig. 8(b))."""
    defaults = dict(hot_access_prob=0.5, hot_contract_count=1)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)
