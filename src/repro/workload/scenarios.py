"""Adversarial workload scenarios: the traffic the paper's mix under-represents.

Garamvölgyi et al. (PAPERS.md) show real Ethereum throughput is dominated
by *application-inherent* hot-key conflicts — airdrop claim floods and NFT
mint storms hammering a single counter — while DeFi composition routes one
transaction through several contracts, and adversarial orderings exist that
deliberately maximize mispredictions.  Each scenario here is a named
:class:`~repro.workload.generator.WorkloadConfig` preset, so the soak
harness (``python -m repro soak``), the differential fuzzer
(``repro verify --scenarios``), and the benchmarks all draw from one
corpus:

* **mint_storm** — every transaction mints on one hot NFT collection:
  the shared ``nextTokenId`` counter is a non-commutative serial chain.
* **airdrop_flood** — thousands of distinct claimants read-check and
  decrement one ``remaining`` counter (θ) while their per-user writes stay
  disjoint; a small fraction double-claims (deterministic reverts).
* **flash_loan** — a hand-assembled hub contract that, in ONE transaction,
  bumps its hot ``outstanding`` counter, CALLs ``swapXForY`` on pool A and
  ``swapYForX`` on pool B (real nested message calls), then repays the
  counter — mixed with direct pool traffic that conflicts with the bundles.
* **defi_composition** — a router that chains swaps across three pools in
  one transaction: cross-contract read-write chains only early-write
  visibility can pipeline.
* **reentrancy** — a contract that re-enters itself via CALL to a seeded
  depth, writing the same hot counter in every nested frame (writes
  interleaved with abortable CALLs stress release-point placement).
* **abort_storm** — the adversarial orderer: interleaves ``setA(x, v)``
  and ``UpdateB(x, y)`` pairs on the paper's Fig. 1 contract so nearly
  every pre-executed C-SAG is invalidated by the transaction right before
  it — deliberately maximizing aborts.
* **cross_shard_storm** — shardable base traffic (single-token ERC-20
  transfers spread uniformly over many tokens) laced with a controlled
  fraction of deliberately cross-shard transactions: Ether transfers
  between accounts hashed to different shards and routed swaps through
  pools on different shards.  Exercises the two-phase handoff of
  :mod:`repro.shard` at a tunable cross rate.

The contracts the scenarios need beyond the base mix are one Minisol
source (``Airdrop``, :mod:`.contracts`), the paper's ``Example`` contract,
and two hand-assembled bytecode programs built here (Minisol has no
external-call syntax; the EVM does).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..chain.transaction import Transaction
from ..core.hashing import array_element_slot, mapping_slot
from ..core.types import Address, StateKey
from ..evm.assembler import assemble

# Every scenario name, in registry order ("mix" rotates over all of them).
SCENARIO_NAMES = (
    "mint_storm",
    "airdrop_flood",
    "flash_loan",
    "defi_composition",
    "reentrancy",
    "abort_storm",
    "cross_shard_storm",
)

# Deep hub inventory in every pool, so bundles never fail on balance.
HUB_POOL_FUNDS = 10**15
AIRDROP_POOL = 10**12


# ---------------------------------------------------------------------------
# Hand-assembled contracts (real cross-contract CALLs)
# ---------------------------------------------------------------------------

def build_router_code(
    swap_x_selector: int,
    swap_y_selector: int,
    legs: int,
    track_outstanding: bool,
) -> bytes:
    """Bytecode for a swap router: calldata is ``legs`` pool addresses then
    one amount, each leg a real CALL into ``swapXForY``/``swapYForX``
    (alternating) that must succeed.

    With ``track_outstanding`` the router is a flash-loan hub: slot 0 is
    read-incremented before the legs and decremented after (a hot θ key
    bracketing abortable CALLs); slot 1 counts completed bundles either way.
    """
    amount_off = 32 * legs
    lines: List[str] = []
    emit = lines.append
    if track_outstanding:
        # outstanding += amount   (read-modify-write of the hot hub key)
        emit("PUSH 0"); emit("SLOAD")
        emit(f"PUSH {amount_off}"); emit("CALLDATALOAD")
        emit("ADD")
        emit("PUSH 0"); emit("SSTORE")
    for i in range(legs):
        selector = swap_x_selector if i % 2 == 0 else swap_y_selector
        # mem[0..36) = selector ++ amount
        emit(f"PUSH {selector << 224}")
        emit("PUSH 0"); emit("MSTORE")
        emit(f"PUSH {amount_off}"); emit("CALLDATALOAD")
        emit("PUSH 4"); emit("MSTORE")
        # CALL(gas, pool_i, 0, in=[0,36), out=[0,0))
        emit("PUSH 0")   # out_len
        emit("PUSH 0")   # out_off
        emit("PUSH 36")  # in_len
        emit("PUSH 0")   # in_off
        emit("PUSH 0")   # value
        emit(f"PUSH {32 * i}"); emit("CALLDATALOAD")  # pool address
        emit("GAS")
        emit("CALL")
        emit("ISZERO"); emit("PUSH :fail"); emit("JUMPI")
    if track_outstanding:
        # outstanding -= amount   (the repayment leg of the bundle)
        emit("PUSH 0"); emit("SLOAD")
        emit(f"PUSH {amount_off}"); emit("CALLDATALOAD")
        emit("SWAP1"); emit("SUB")
        emit("PUSH 0"); emit("SSTORE")
    # bundles += 1
    emit("PUSH 1"); emit("SLOAD"); emit("PUSH 1"); emit("ADD")
    emit("PUSH 1"); emit("SSTORE")
    emit("STOP")
    emit("fail:")
    emit("JUMPDEST")
    emit("PUSH 0"); emit("PUSH 0"); emit("REVERT")
    return assemble("\n".join(lines))


def build_reentrant_code() -> bytes:
    """Bytecode for the re-entrancy storm contract: calldata word 0 is a
    depth; each frame increments hot slot 0, CALLs *itself* with depth-1
    (a genuine re-entrant frame), requires success, then increments slot 1
    after the inner frame returns.  Depth 0 bumps the leaf counter (slot 2).
    """
    return assemble("""
        PUSH 0
        CALLDATALOAD
        DUP1
        ISZERO
        PUSH :leaf
        JUMPI
        ; pre-reentry write of the hot counter
        PUSH 0
        SLOAD
        PUSH 1
        ADD
        PUSH 0
        SSTORE
        ; mem[0] = depth - 1
        PUSH 1
        SWAP1
        SUB
        PUSH 0
        MSTORE
        ; CALL(gas, self, 0, in=[0,32), out=[0,0))
        PUSH 0
        PUSH 0
        PUSH 32
        PUSH 0
        PUSH 0
        ADDRESS
        GAS
        CALL
        ISZERO
        PUSH :fail
        JUMPI
        ; post-reentry write (the frame resumes after its inner call)
        PUSH 1
        SLOAD
        PUSH 1
        ADD
        PUSH 1
        SSTORE
        STOP
    leaf:
        JUMPDEST
        POP
        PUSH 2
        SLOAD
        PUSH 1
        ADD
        PUSH 2
        SSTORE
        STOP
    fail:
        JUMPDEST
        PUSH 0
        PUSH 0
        REVERT
    """)


# ---------------------------------------------------------------------------
# The pack: deploy/seed/generate hooks the Workload calls into
# ---------------------------------------------------------------------------

class ScenarioPack:
    """Scenario-specific contracts, genesis state, and traffic generators.

    Constructed by :class:`~repro.workload.generator.Workload` when its
    config names a scenario.  All randomness flows from the workload's one
    seeded RNG, so scenario streams are bit-reproducible like the base mix.
    """

    def __init__(self, workload) -> None:
        self.w = workload
        config = workload.config
        scenario = config.scenario
        if scenario == "mix":
            self.names = list(SCENARIO_NAMES)
        else:
            names = [s.strip() for s in scenario.split(",") if s.strip()]
            unknown = [s for s in names if s not in SCENARIO_NAMES]
            if unknown:
                raise ValueError(
                    f"unknown scenario(s) {', '.join(unknown)} "
                    f"(choose from {', '.join(SCENARIO_NAMES)} or 'mix')"
                )
            self.names = names
        seed = config.seed
        self.hub = Address.derive(f"flashhub:{seed}")
        self.router = Address.derive(f"router:{seed}")
        self.reentrant = Address.derive(f"reentrant:{seed}")
        self.airdrop = Address.derive(f"airdrop:{seed}")
        self.example = Address.derive(f"example:{seed}")
        # Generator-side tracking (all deterministic under the seed):
        self._pending: List[Transaction] = []
        self._claimants: List[Address] = []
        self._branch_toggle: Dict[Address, bool] = {}
        self.hot_keys: List[Address] = []

    # -- setup hooks ---------------------------------------------------

    def compile_extra(self, compiled: Dict[str, object]) -> None:
        from ..lang.compiler import compile_source
        from .contracts import AIRDROP_SOURCE, PAPER_EXAMPLE_SOURCE

        compiled["Airdrop"] = compile_source(AIRDROP_SOURCE)
        compiled["Example"] = compile_source(PAPER_EXAMPLE_SOURCE)

    def deploy(self) -> None:
        w = self.w
        compiled = w.contracts.compiled
        pool_c = compiled["DEXPool"]
        sel_x = pool_c.abi("swapXForY").selector
        sel_y = pool_c.abi("swapYForX").selector
        w.db.deploy_contract(
            self.hub,
            build_router_code(sel_x, sel_y, legs=2, track_outstanding=True),
            "FlashLoanHub",
        )
        w.db.deploy_contract(
            self.router,
            build_router_code(
                sel_x, sel_y,
                legs=max(2, w.config.composition_legs),
                track_outstanding=False,
            ),
            "Router",
        )
        w.db.deploy_contract(self.reentrant, build_reentrant_code(), "Reentrant")
        w.db.deploy_contract(self.airdrop, compiled["Airdrop"].code, "Airdrop")
        w.db.deploy_contract(self.example, compiled["Example"].code, "Example")
        self.hot_keys = w.users[: max(1, w.config.abort_hot_keys)]

    def seed(self, storage: Dict[StateKey, int]) -> None:
        """Contribute scenario state to the genesis storage batch."""
        w = self.w
        cfg = w.config
        compiled = w.contracts.compiled
        # Airdrop: a deep pool and the per-claim amount.
        airdrop_c = compiled["Airdrop"]
        storage[StateKey(self.airdrop, airdrop_c.slot_of("remaining"))] = AIRDROP_POOL
        storage[StateKey(self.airdrop, airdrop_c.slot_of("claimAmount"))] = (
            max(1, cfg.airdrop_amount)
        )
        # Hub/router inventory in every pool, so legs never fail on balance.
        pool_c = compiled["DEXPool"]
        bx_slot = pool_c.slot_of("balanceX")
        by_slot = pool_c.slot_of("balanceY")
        for pool in w.contracts.pools:
            for agent in (self.hub, self.router):
                storage[StateKey(pool, mapping_slot(agent.to_word(), bx_slot))] = (
                    HUB_POOL_FUNDS
                )
                storage[StateKey(pool, mapping_slot(agent.to_word(), by_slot))] = (
                    HUB_POOL_FUNDS
                )
        # Example: B holds 40 seeded elements; A[x] alternates branch classes
        # over the hot keys so the very first UpdateBs already split paths.
        example_c = compiled["Example"]
        a_slot = example_c.slot_of("A")
        b_slot = example_c.slot_of("B")
        storage[StateKey(self.example, b_slot)] = 40
        for i in range(40):
            storage[StateKey(self.example, array_element_slot(b_slot, i))] = i + 3
        for j, x in enumerate(self.w.users[: max(1, cfg.abort_hot_keys)]):
            storage[StateKey(self.example, mapping_slot(x.to_word(), a_slot))] = (
                0 if j % 2 == 0 else 6
            )

    # -- traffic -------------------------------------------------------

    def maybe_transaction(self) -> Optional[Transaction]:
        """The scenario's next transaction, or None to fall back to the
        base mainnet mix (probability ``1 - scenario_fraction``)."""
        if self._pending:
            return self._pending.pop(0)
        rng = self.w.rng
        if rng.random() >= self.w.config.scenario_fraction:
            return None
        name = self.names[0] if len(self.names) == 1 else rng.choice(self.names)
        return getattr(self, f"_tx_{name}")()

    def _tx_mint_storm(self) -> Transaction:
        w = self.w
        collections = w.contracts.nfts
        collection = (
            collections[0]
            if w.rng.random() < 0.9 or len(collections) == 1
            else w.rng.choice(collections[1:])
        )
        sender = w._user()
        w._nft_owners[collection].append(sender)
        return Transaction(
            sender, collection, 0,
            w.contracts.compiled["NFT"].encode_call("mint"),
            label="nft:mint_storm",
        )

    def _tx_airdrop_flood(self) -> Transaction:
        w = self.w
        rng = w.rng
        airdrop_c = w.contracts.compiled["Airdrop"]
        if self._claimants and rng.random() < 0.03:
            # A double claim: require(claimed == 0) reverts deterministically.
            sender = rng.choice(self._claimants)
            label = "airdrop:reclaim"
        else:
            sender = Address.derive(f"claimant:{len(self._claimants)}:{w.config.seed}")
            self._claimants.append(sender)
            label = "airdrop:claim"
        return Transaction(
            sender, self.airdrop, 0, airdrop_c.encode_call("claim"), label=label,
        )

    def _pick_pools(self, count: int) -> List[Address]:
        pools = self.w.contracts.pools
        picked: List[Address] = []
        for _ in range(count):
            pool = self.w._pick_zipf(pools)
            if len(pools) > 1:
                while picked and pool == picked[-1]:
                    pool = self.w._pick_zipf(pools)
            picked.append(pool)
        return picked

    @staticmethod
    def _route_data(pools: List[Address], amount: int) -> bytes:
        words = [pool.to_word() for pool in pools] + [amount]
        return b"".join(word.to_bytes(32, "big") for word in words)

    def _tx_flash_loan(self) -> Transaction:
        w = self.w
        rng = w.rng
        if rng.random() < 0.25:
            # Direct pool traffic that conflicts with in-flight bundles.
            return w._defi_tx(hot=False)
        pools = self._pick_pools(2)
        # amountIn >= 2: a 1-wei swap rounds amountOut to zero and reverts.
        data = self._route_data(pools, rng.randint(2, 400))
        return Transaction(w._user(), self.hub, 0, data, label="flash:bundle")

    def _tx_defi_composition(self) -> Transaction:
        w = self.w
        rng = w.rng
        if rng.random() < 0.2:
            return w._defi_tx(hot=False)
        legs = max(2, w.config.composition_legs)
        data = self._route_data(self._pick_pools(legs), rng.randint(2, 400))
        return Transaction(w._user(), self.router, 0, data, label="defi:route")

    def _tx_reentrancy(self) -> Transaction:
        w = self.w
        depth = w.rng.randint(1, max(1, w.config.reentrancy_depth))
        return Transaction(
            w._user(), self.reentrant, 0,
            depth.to_bytes(32, "big"),
            label="reentrancy:storm",
        )

    def _tx_cross_shard_storm(self) -> Transaction:
        """Mostly shard-local ERC-20 transfers, salted with deliberate
        cross-shard traffic at the configured ``cross_shard_ratio``."""
        from ..shard.partition import shard_of

        w = self.w
        rng = w.rng
        cfg = w.config
        shards = max(2, cfg.shard_count)
        if rng.random() < cfg.cross_shard_ratio:
            if rng.random() < 0.6 or len(w.contracts.pools) < 2:
                # Ether transfer across the partition boundary: sender and
                # recipient balances live in different shards.
                sender = w._user()
                recipient = w._recipient(sender)
                for _ in range(16):
                    if shard_of(recipient, shards) != shard_of(sender, shards):
                        break
                    recipient = w._recipient(sender)
                return Transaction(
                    sender, recipient, rng.randint(1, 10**9),
                    label="storm:cross_ether",
                )
            # Routed swap through two pools hashed to different shards.
            pools = self._pick_pools(2)
            for _ in range(16):
                if shard_of(pools[0], shards) != shard_of(pools[1], shards):
                    break
                pools = self._pick_pools(2)
            data = self._route_data(pools, rng.randint(2, 400))
            return Transaction(w._user(), self.router, 0, data,
                               label="storm:cross_route")
        # Shard-local: a transfer inside one uniformly chosen token.
        erc20 = w.contracts.compiled["ERC20"]
        sender = w._user()
        token = rng.choice(w.contracts.erc20)
        data = erc20.encode_call(
            "transfer", w._recipient(sender), rng.randint(1, 1_000))
        return Transaction(sender, token, 0, data, label="storm:local")

    def _tx_abort_storm(self) -> Transaction:
        """Deliberately ordered conflicting pairs: ``setA(x, v)`` flips the
        branch class of ``A[x]``, and the ``UpdateB(x, y)`` queued right
        behind it was (when pooled) pre-executed against the *old* value —
        a near-guaranteed C-SAG misprediction and abort."""
        w = self.w
        rng = w.rng
        example_c = w.contracts.compiled["Example"]
        x = rng.choice(self.hot_keys)
        toggle = not self._branch_toggle.get(x, False)
        self._branch_toggle[x] = toggle
        v = rng.randint(4, 11) if toggle else rng.randint(0, 1)
        self._pending.append(Transaction(
            w._user(), self.example, 0,
            example_c.encode_call("UpdateB", x, rng.randint(1, 10)),
            label="abort:update",
        ))
        if rng.random() < 0.3:
            self._pending.append(Transaction(
                w._user(), self.example, 0,
                example_c.encode_call("UpdateB", x, rng.randint(1, 10)),
                label="abort:update",
            ))
        return Transaction(
            w._user(), self.example, 0,
            example_c.encode_call("setA", x, v),
            label="abort:set",
        )


# ---------------------------------------------------------------------------
# Named presets
# ---------------------------------------------------------------------------

def mint_storm_config(**overrides):
    """NFT mint storm: one hot collection's ``nextTokenId`` counter."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="mint_storm", scenario_fraction=0.9)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def airdrop_flood_config(**overrides):
    """Airdrop claim flood: one hot read-checked ``remaining`` counter."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="airdrop_flood", scenario_fraction=0.9)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def flash_loan_config(**overrides):
    """Flash-loan-style multi-contract bundles through the assembled hub."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="flash_loan", scenario_fraction=0.85)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def defi_composition_config(**overrides):
    """Cross-contract DeFi composition: three-pool routed swaps."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="defi_composition", scenario_fraction=0.85)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def reentrancy_config(**overrides):
    """Re-entrancy-heavy traffic: nested self-calls on hot counters."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="reentrancy", scenario_fraction=0.9)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def abort_storm_config(**overrides):
    """The abort-maximizer: adversarially ordered conflicting writes."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="abort_storm", scenario_fraction=0.95)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def cross_shard_storm_config(**overrides):
    """Shardable traffic with a controlled cross-shard fraction."""
    from .generator import WorkloadConfig

    defaults = dict(
        scenario="cross_shard_storm",
        scenario_fraction=0.95,
        erc20_tokens=16,
        zipf_alpha=0.0,       # uniform token choice spreads load over shards
        hot_access_prob=0.0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def soak_mix_config(**overrides):
    """Every adversarial scenario rotating over one chain — the soak diet."""
    from .generator import WorkloadConfig

    defaults = dict(scenario="mix", scenario_fraction=0.8)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


SCENARIOS = {
    "mint_storm": mint_storm_config,
    "airdrop_flood": airdrop_flood_config,
    "flash_loan": flash_loan_config,
    "defi_composition": defi_composition_config,
    "reentrancy": reentrancy_config,
    "abort_storm": abort_storm_config,
    "cross_shard_storm": cross_shard_storm_config,
    "mix": soak_mix_config,
}


def scenario_config(name: str, **overrides):
    """Look up a preset by name; raises ``ValueError`` on unknown names."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (choose from {', '.join(SCENARIOS)})"
        ) from None
    return factory(**overrides)
