"""Minisol sources for the workload contracts.

These model the contract families dominating the paper's mainnet dataset:
ERC20 tokens (60% of contract traffic), DeFi/AMM pools (29%), NFT
collections (10%), plus the ICO contract motivating the high-contention
experiment.  Each family has a distinct conflict signature:

* **ERC20** — recipient credits are blind increments (commutative ω̄);
  sender debits read-check first (θ).  Transfers to a shared exchange
  address are the classic commutative hot spot.
* **DEXPool** — swaps read *and* write both reserves: a per-pool serial
  chain that only early-write visibility can pipeline.
* **NFT** — ``nextTokenId`` is read to derive the token key, so mints form
  a non-commutative hot chain (the paper's shared-counter example).
* **ICO** — capped: the cap check reads ``totalRaised`` (hot, θ);
  uncapped: the counter update is a pure increment (ω̄), showcasing
  commutative writes.
"""

ERC20_SOURCE = """
contract ERC20 {
    uint totalSupply;
    mapping(address => uint) balanceOf;
    mapping(address => mapping(address => uint)) allowance;

    event Transfer(address, address, uint);

    function mint(address to, uint amount) public {
        totalSupply += amount;
        balanceOf[to] += amount;
    }

    function transfer(address to, uint amount) public {
        require(balanceOf[msg.sender] >= amount);
        balanceOf[msg.sender] -= amount;
        balanceOf[to] += amount;
        emit Transfer(msg.sender, to, amount);
    }

    function approve(address spender, uint amount) public {
        allowance[msg.sender][spender] = amount;
    }

    function transferFrom(address owner, address to, uint amount) public {
        require(allowance[owner][msg.sender] >= amount);
        require(balanceOf[owner] >= amount);
        allowance[owner][msg.sender] -= amount;
        balanceOf[owner] -= amount;
        balanceOf[to] += amount;
        emit Transfer(owner, to, amount);
    }

    function burn(uint amount) public {
        require(balanceOf[msg.sender] >= amount);
        balanceOf[msg.sender] -= amount;
        totalSupply -= amount;
    }

    function getBalance(address who) public view returns (uint) {
        return balanceOf[who];
    }
}
"""

DEX_POOL_SOURCE = """
contract DEXPool {
    uint reserveX;
    uint reserveY;
    mapping(address => uint) balanceX;
    mapping(address => uint) balanceY;

    event Swap(address, uint, uint);

    function fund(address user, uint amountX, uint amountY) public {
        balanceX[user] += amountX;
        balanceY[user] += amountY;
    }

    function addLiquidity(uint amountX, uint amountY) public {
        require(balanceX[msg.sender] >= amountX);
        require(balanceY[msg.sender] >= amountY);
        balanceX[msg.sender] -= amountX;
        balanceY[msg.sender] -= amountY;
        reserveX += amountX;
        reserveY += amountY;
    }

    function swapXForY(uint amountIn) public {
        require(amountIn > 0);
        require(balanceX[msg.sender] >= amountIn);
        uint newX = reserveX + amountIn;
        // Round the output down so the invariant never shrinks.
        uint amountOut = reserveY * amountIn / newX;
        require(amountOut > 0);
        require(amountOut < reserveY);
        balanceX[msg.sender] -= amountIn;
        balanceY[msg.sender] += amountOut;
        reserveX = newX;
        reserveY -= amountOut;
        emit Swap(msg.sender, amountIn, amountOut);
    }

    function swapYForX(uint amountIn) public {
        require(amountIn > 0);
        require(balanceY[msg.sender] >= amountIn);
        uint newY = reserveY + amountIn;
        // Round the output down so the invariant never shrinks.
        uint amountOut = reserveX * amountIn / newY;
        require(amountOut > 0);
        require(amountOut < reserveX);
        balanceY[msg.sender] -= amountIn;
        balanceX[msg.sender] += amountOut;
        reserveY = newY;
        reserveX -= amountOut;
        emit Swap(msg.sender, amountIn, amountOut);
    }
}
"""

NFT_SOURCE = """
contract NFT {
    uint nextTokenId;
    mapping(uint => address) ownerOf;
    mapping(address => uint) balanceOf;

    event Minted(address, uint);

    function mint() public {
        uint tokenId = nextTokenId;
        nextTokenId = tokenId + 1;
        ownerOf[tokenId] = msg.sender;
        balanceOf[msg.sender] += 1;
        emit Minted(msg.sender, tokenId);
    }

    function transfer(address to, uint tokenId) public {
        require(ownerOf[tokenId] == msg.sender);
        ownerOf[tokenId] = to;
        balanceOf[msg.sender] -= 1;
        balanceOf[to] += 1;
    }

    function ownerOfToken(uint tokenId) public view returns (address) {
        return ownerOf[tokenId];
    }
}
"""

ICO_SOURCE = """
contract ICO {
    uint totalRaised;
    uint cap;
    uint rate;
    mapping(address => uint) contributions;
    mapping(address => uint) tokens;

    event Contributed(address, uint);

    function setup(uint newCap, uint newRate) public {
        cap = newCap;
        rate = newRate;
    }

    function contribute(uint amount) public {
        require(amount > 0);
        if (cap > 0) {
            require(totalRaised + amount <= cap);
        }
        totalRaised += amount;
        contributions[msg.sender] += amount;
        tokens[msg.sender] += amount * rate;
        emit Contributed(msg.sender, amount);
    }

    function raised() public view returns (uint) {
        return totalRaised;
    }
}
"""

# Airdrop claim floods are the canonical application-inherent hot spot on
# mainnet (Garamvölgyi et al.): every claimant read-checks and decrements
# the same ``remaining`` counter (θ, non-commutative) while the per-user
# ``claimed`` flag and balance credit stay disjoint.
AIRDROP_SOURCE = """
contract Airdrop {
    uint remaining;
    uint claimAmount;
    uint claims;
    mapping(address => uint) claimed;
    mapping(address => uint) balanceOf;

    event Claimed(address, uint);

    function fund(uint amount) public {
        remaining += amount;
    }

    function claim() public {
        require(claimed[msg.sender] == 0);
        uint amount = claimAmount;
        require(remaining >= amount);
        remaining -= amount;
        claimed[msg.sender] = 1;
        balanceOf[msg.sender] += amount;
        claims += 1;
        emit Claimed(msg.sender, amount);
    }

    function left() public view returns (uint) {
        return remaining;
    }
}
"""

COUNTER_SOURCE = """
contract Counter {
    uint value;

    function increment(uint amount) public {
        value += amount;
    }

    function incrementChecked(uint amount) public {
        require(value + amount >= value);
        value += amount;
    }

    function current() public view returns (uint) {
        return value;
    }
}
"""


# An English auction: the "highest bid" pair is a classic hot read-write
# key; refunds are commutative credits.  Uses internal helpers (compiled by
# inlining) to exercise structured contracts.
AUCTION_SOURCE = """
contract Auction {
    address seller;
    uint endTime;
    uint highestBid;
    address highestBidder;
    mapping(address => uint) refunds;
    bool settled;

    event Outbid(address, uint);

    function open(address who, uint duration) public {
        require(endTime == 0);
        seller = who;
        endTime = block.timestamp + duration;
    }

    function creditRefund(address to, uint amount) internal {
        refunds[to] += amount;
    }

    function bid(uint amount) public {
        require(endTime > 0);
        require(block.timestamp < endTime);
        require(amount > highestBid);
        if (highestBidder != 0) {
            creditRefund(highestBidder, highestBid);
        }
        highestBid = amount;
        highestBidder = msg.sender;
        emit Outbid(msg.sender, amount);
    }

    function withdrawRefund() public returns (uint) {
        uint owed = refunds[msg.sender];
        require(owed > 0);
        refunds[msg.sender] = 0;
        return owed;
    }

    function settle() public {
        require(endTime > 0);
        require(block.timestamp >= endTime);
        require(!settled);
        settled = true;
        creditRefund(seller, highestBid);
    }
}
"""

# Fig. 1 of the paper, transcribed to Minisol: the loop bound and the array
# keys depend on a state value (A[x]) that only the snapshot can resolve.
PAPER_EXAMPLE_SOURCE = """
contract Example {
    mapping(address => uint) A;
    uint[] B;

    function setA(address x, uint v) public {
        A[x] = v;
    }

    function pushB(uint v) public {
        B.push(v);
    }

    function UpdateB(address x, uint y) public {
        uint idx = A[x];
        if (idx > 1) {
            for (uint i = idx; i > 1; i -= 1) {
                B[i] = B[i - 2] + y;
            }
        } else {
            B[0] = 0;
            assert(y <= 10);
            B[1] = B[1] + y;
        }
    }
}
"""

ALL_SOURCES = {
    "Airdrop": AIRDROP_SOURCE,
    "Auction": AUCTION_SOURCE,
    "ERC20": ERC20_SOURCE,
    "DEXPool": DEX_POOL_SOURCE,
    "NFT": NFT_SOURCE,
    "ICO": ICO_SOURCE,
    "Counter": COUNTER_SOURCE,
    "Example": PAPER_EXAMPLE_SOURCE,
}
