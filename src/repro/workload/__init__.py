"""Synthetic mainnet-style workloads over real Minisol contracts."""

from .contracts import (
    ALL_SOURCES,
    COUNTER_SOURCE,
    DEX_POOL_SOURCE,
    ERC20_SOURCE,
    ICO_SOURCE,
    NFT_SOURCE,
    PAPER_EXAMPLE_SOURCE,
)
from .generator import (
    DeployedContracts,
    Workload,
    WorkloadConfig,
    high_contention_config,
    low_contention_config,
)

__all__ = [
    "ALL_SOURCES",
    "COUNTER_SOURCE",
    "DEX_POOL_SOURCE",
    "DeployedContracts",
    "ERC20_SOURCE",
    "ICO_SOURCE",
    "NFT_SOURCE",
    "PAPER_EXAMPLE_SOURCE",
    "Workload",
    "WorkloadConfig",
    "high_contention_config",
    "low_contention_config",
]
