"""Recursive-descent parser for Minisol."""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import ParseError
from . import ast
from .lexer import Token, parse_number, tokenize

# Binary operator precedence, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses one source file containing a single contract definition."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._current.text == text and self._current.kind in ("op", "keyword")

    def _match(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(
                f"expected {text!r}, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind != "ident":
            raise ParseError(
                f"expected identifier, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._current.line, self._current.column)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_contract(self) -> ast.ContractDef:
        self._expect("contract")
        name = self._expect_ident().text
        contract = ast.ContractDef(name=name, line=self._current.line)
        self._expect("{")
        while not self._match("}"):
            if self._check("function"):
                contract.functions.append(self._parse_function())
            elif self._check("event"):
                self._skip_event_declaration()
            else:
                contract.state_vars.append(self._parse_state_var())
        if self._current.kind != "eof":
            raise self._error(f"trailing input after contract: {self._current.text!r}")
        return contract

    def _skip_event_declaration(self) -> None:
        """Events need no codegen info beyond their name at the emit site."""
        self._expect("event")
        self._expect_ident()
        self._expect("(")
        depth = 1
        while depth:
            token = self._advance()
            if token.kind == "eof":
                raise self._error("unterminated event declaration")
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
        self._expect(";")

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_type(self) -> ast.Type:
        token = self._current
        if self._match("uint") or self._match("uint256"):
            base: ast.Type = ast.UINT
        elif self._match("address"):
            base = ast.ADDRESS
        elif self._match("bool"):
            base = ast.BOOL
        elif self._match("mapping"):
            self._expect("(")
            key = self._parse_type()
            self._expect("=>")
            value = self._parse_type()
            self._expect(")")
            return ast.MappingType(key, value)
        else:
            raise ParseError(f"expected type, found {token.text!r}", token.line, token.column)
        if self._match("["):
            self._expect("]")
            return ast.ArrayType(base)
        return base

    def _parse_state_var(self) -> ast.StateVarDecl:
        line = self._current.line
        type_ = self._parse_type()
        self._skip_modifiers()
        name = self._expect_ident().text
        self._expect(";")
        return ast.StateVarDecl(name=name, type=type_, line=line)

    def _skip_modifiers(self) -> "tuple[bool, bool]":
        payable = False
        internal = False
        while self._current.kind == "keyword" and self._current.text in (
            "public", "view", "external", "internal", "pure", "payable",
        ):
            if self._current.text == "payable":
                payable = True
            elif self._current.text == "internal":
                internal = True
            self._advance()
        return payable, internal

    def _parse_function(self) -> ast.FunctionDef:
        line = self._current.line
        self._expect("function")
        name = self._expect_ident().text
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            while True:
                ptype = self._parse_type()
                if not ast.is_word_type(ptype):
                    raise self._error("function parameters must be word types")
                self._match("memory")
                pname = self._expect_ident().text
                params.append(ast.Param(name=pname, type=ptype, line=line))
                if not self._match(","):
                    break
        self._expect(")")
        payable, internal = self._skip_modifiers()
        returns_value = False
        if self._match("returns"):
            self._expect("(")
            self._parse_type()
            if self._current.kind == "ident":
                self._advance()  # optional named return, ignored
            self._expect(")")
            returns_value = True
        body = self._parse_block()
        return ast.FunctionDef(
            name=name, params=params, returns_value=returns_value, body=body,
            payable=payable, internal=internal, line=line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect("{")
        body: List[ast.Stmt] = []
        while not self._match("}"):
            body.append(self._parse_statement())
        return body

    def _parse_statement(self) -> ast.Stmt:
        line = self._current.line
        if self._check("{"):
            raise self._error("bare blocks are not supported; use if (true) {...}")
        if self._check("uint") or self._check("uint256") or self._check("address") or self._check("bool"):
            return self._parse_var_decl()
        if self._match("require"):
            self._expect("(")
            cond = self._parse_expression()
            self._expect(")")
            self._expect(";")
            return ast.Require(cond=cond, line=line)
        if self._match("assert"):
            self._expect("(")
            cond = self._parse_expression()
            self._expect(")")
            self._expect(";")
            return ast.AssertStmt(cond=cond, line=line)
        if self._match("revert"):
            self._expect("(")
            self._expect(")")
            self._expect(";")
            return ast.RevertStmt(line=line)
        if self._match("return"):
            value = None if self._check(";") else self._parse_expression()
            self._expect(";")
            return ast.Return(value=value, line=line)
        if self._match("if"):
            return self._parse_if(line)
        if self._match("while"):
            self._expect("(")
            cond = self._parse_expression()
            self._expect(")")
            body = self._parse_block()
            return ast.While(cond=cond, body=body, line=line)
        if self._match("for"):
            return self._parse_for(line)
        if self._match("emit"):
            event = self._expect_ident().text
            self._expect("(")
            args: List[ast.Expr] = []
            if not self._check(")"):
                while True:
                    args.append(self._parse_expression())
                    if not self._match(","):
                        break
            self._expect(")")
            self._expect(";")
            return ast.Emit(event=event, args=args, line=line)
        return self._parse_simple_statement(line, require_semi=True)

    def _parse_var_decl(self) -> ast.VarDecl:
        line = self._current.line
        type_ = self._parse_type()
        if not ast.is_word_type(type_):
            raise self._error("local variables must be word types")
        name = self._expect_ident().text
        init = None
        if self._match("="):
            init = self._parse_expression()
        self._expect(";")
        return ast.VarDecl(name=name, type=type_, init=init, line=line)

    def _parse_if(self, line: int) -> ast.If:
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self._match("else"):
            if self._check("if"):
                self._advance()
                else_body = [self._parse_if(self._current.line)]
            else:
                else_body = self._parse_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, line=line)

    def _parse_for(self, line: int) -> ast.For:
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            if self._current.text in ("uint", "uint256", "address", "bool"):
                init = self._parse_var_decl()  # consumes the ';'
            else:
                init = self._parse_simple_statement(line, require_semi=True)
        else:
            self._expect(";")
        cond = None if self._check(";") else self._parse_expression()
        self._expect(";")
        post = None
        if not self._check(")"):
            post = self._parse_simple_statement(line, require_semi=False)
        self._expect(")")
        body = self._parse_block()
        return ast.For(init=init, cond=cond, post=post, body=body, line=line)

    def _parse_simple_statement(self, line: int, require_semi: bool) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or array push."""
        stmt = self._parse_assignment_like(line)
        if require_semi:
            self._expect(";")
        return stmt

    def _parse_assignment_like(self, line: int) -> ast.Stmt:
        # array.push(value)
        if (
            self._current.kind == "ident"
            and self._tokens[self._pos + 1].text == "."
            and self._tokens[self._pos + 2].text == "push"
        ):
            array = self._advance().text
            self._advance()  # '.'
            self._advance()  # 'push'
            self._expect("(")
            value = self._parse_expression()
            self._expect(")")
            return ast.ArrayPush(array=array, value=value, line=line)

        target = self._parse_postfix()
        if isinstance(target, ast.CallExpr):
            return ast.ExprStmt(expr=target, line=line)
        if not isinstance(target, (ast.Name, ast.Index)):
            raise self._error("assignment target must be a variable or index expression")
        if self._match("++"):
            return ast.Assign(target=target, value=ast.IntLit(value=1, line=line), op="+", line=line)
        if self._match("--"):
            return ast.Assign(target=target, value=ast.IntLit(value=1, line=line), op="-", line=line)
        for text, op in (("=", ""), ("+=", "+"), ("-=", "-"), ("*=", "*")):
            if self._match(text):
                value = self._parse_expression()
                return ast.Assign(target=target, value=value, op=op, line=line)
        raise self._error(f"expected assignment operator, found {self._current.text!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expression(self, level: int = 0) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_expression(level + 1)
        while self._current.kind == "op" and self._current.text in _PRECEDENCE[level]:
            op = self._advance().text
            right = self._parse_expression(level + 1)
            left = ast.Binary(op=op, left=left, right=right, line=self._current.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        line = self._current.line
        if self._match("!"):
            return ast.Unary(op="!", operand=self._parse_unary(), line=line)
        if self._match("-"):
            return ast.Unary(op="-", operand=self._parse_unary(), line=line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._match("["):
                index = self._parse_expression()
                self._expect("]")
                expr = ast.Index(base=expr, index=index, line=self._current.line)
            elif self._check(".") and self._tokens[self._pos + 1].text == "length":
                if not isinstance(expr, ast.Name):
                    raise self._error(".length only applies to storage arrays")
                self._advance()
                self._advance()
                expr = ast.Member(base=expr.ident, member="length", line=self._current.line)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            return ast.IntLit(value=parse_number(token), line=token.line)
        if self._match("true"):
            return ast.BoolLit(value=True, line=token.line)
        if self._match("false"):
            return ast.BoolLit(value=False, line=token.line)
        if self._match("msg"):
            self._expect(".")
            member = self._advance().text
            if member not in ("sender", "value"):
                raise self._error(f"unknown msg member {member!r}")
            return ast.Member(base="msg", member=member, line=token.line)
        if self._match("block"):
            self._expect(".")
            member = self._advance().text
            if member not in ("number", "timestamp"):
                raise self._error(f"unknown block member {member!r}")
            return ast.Member(base="block", member=member, line=token.line)
        if self._match("balance"):
            self._expect("(")
            operand = self._parse_expression()
            self._expect(")")
            return ast.BalanceOf(operand=operand, line=token.line)
        if self._match("("):
            expr = self._parse_expression()
            self._expect(")")
            return expr
        if token.kind == "ident":
            self._advance()
            if self._check("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._match(","):
                            break
                self._expect(")")
                return ast.CallExpr(name=token.text, args=args, line=token.line)
            return ast.Name(ident=token.text, line=token.line)
        raise self._error(f"unexpected token {token.text!r} in expression")


def parse_contract(source: str) -> ast.ContractDef:
    """Parse one Minisol contract from source text."""
    return Parser(source).parse_contract()
