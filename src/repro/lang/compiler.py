"""Minisol → EVM bytecode compiler.

The compiler follows Solidity's conventions everywhere they matter for the
paper's analysis:

* **storage layout** — state variables get consecutive slots in declaration
  order; ``mapping[key]`` lives at ``keccak(key . slot)``; dynamic-array
  lengths live at the base slot with elements at ``keccak(slot) + i``;
* **dispatch** — calldata starts with a 4-byte selector (``keccak`` of the
  canonical signature), arguments are 32-byte words;
* **abort semantics** — ``require``/unknown-selector/value-to-non-payable
  produce REVERT, ``assert`` and array bounds violations produce INVALID
  (consuming all gas), exactly the "abortable statements" the release-point
  analysis reasons about;
* **unchecked arithmetic** — the paper targets Solidity 0.6, which does not
  insert overflow checks, so neither do we;
* **internal calls** — same-contract function calls are compiled by
  inlining (recursion is rejected), so the bytecode-level analysis sees one
  flat function per selector.

Function-wide local scoping (no block shadowing) is the one simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import TypeError_
from ..core.hashing import keccak
from ..core.types import Address
from ..core.words import WORD_BYTES
from ..evm.assembler import Assembler
from ..evm.opcodes import Op
from . import ast
from .parser import parse_contract

# Memory map (byte offsets)
HASH_SCRATCH = 0x00      # 0x00-0x3F: two-word scratch for keccak slot math
RETURN_SCRATCH = 0x40    # 0x40-0x5F: return-value staging
LOCALS_BASE = 0x60       # one 32-byte cell per local/parameter


def canonical_type_name(type_: ast.Type) -> str:
    if isinstance(type_, ast.UIntType):
        return "uint256"
    if isinstance(type_, ast.AddressType):
        return "address"
    if isinstance(type_, ast.BoolType):
        return "bool"
    raise TypeError_(f"type {type_} cannot appear in a signature")


def function_signature(name: str, params: Sequence[ast.Param]) -> str:
    return f"{name}({','.join(canonical_type_name(p.type) for p in params)})"


def selector_of(signature: str) -> int:
    return int.from_bytes(keccak(signature.encode())[:4], "big")


@dataclass(frozen=True)
class FunctionABI:
    """Callable-interface metadata for one public function."""

    name: str
    signature: str
    selector: int
    param_types: Tuple[str, ...]
    returns_value: bool
    payable: bool
    entry_label: str

    def encode_call(self, *args: Union[int, Address]) -> bytes:
        """ABI-encode a call to this function."""
        if len(args) != len(self.param_types):
            raise TypeError_(
                f"{self.name} expects {len(self.param_types)} args, got {len(args)}"
            )
        data = self.selector.to_bytes(4, "big")
        for arg in args:
            word = arg.to_word() if isinstance(arg, Address) else int(arg)
            data += word.to_bytes(WORD_BYTES, "big")
        return data


@dataclass(frozen=True)
class StorageVariable:
    """Layout record for one state variable."""

    name: str
    type: ast.Type
    slot: int


@dataclass
class CompiledContract:
    """The compiler's output: bytecode plus everything tools need."""

    name: str
    code: bytes
    functions: Dict[str, FunctionABI]
    layout: Dict[str, StorageVariable]
    source: str = ""
    ast: Optional[ast.ContractDef] = None

    def abi(self, function: str) -> FunctionABI:
        try:
            return self.functions[function]
        except KeyError:
            raise TypeError_(f"{self.name} has no function {function!r}") from None

    def encode_call(self, function: str, *args: Union[int, Address]) -> bytes:
        return self.abi(function).encode_call(*args)

    def slot_of(self, variable: str) -> int:
        try:
            return self.layout[variable].slot
        except KeyError:
            raise TypeError_(f"{self.name} has no state variable {variable!r}") from None


class _FunctionContext:
    """Per-function symbol table: parameters and locals → memory offsets."""

    def __init__(self, fn: ast.FunctionDef, storage: Dict[str, StorageVariable]) -> None:
        self.fn = fn
        self.storage = storage
        self.locals: Dict[str, Tuple[int, ast.Type]] = {}
        for param in fn.params:
            self._declare(param.name, param.type, param.line)
        for stmt in ast.walk_statements(fn.body):
            if isinstance(stmt, ast.VarDecl):
                self._declare(stmt.name, stmt.type, stmt.line)

    @property
    def emit_buffer(self) -> int:
        """Scratch area just past the current locals (grows with inlining)."""
        return LOCALS_BASE + WORD_BYTES * len(self.locals)

    def declare_inline(self, name: str, type_: ast.Type) -> int:
        """Allocate a fresh memory cell for an inlined callee's variable;
        returns its offset.  Names are pre-uniquified by the caller."""
        self.locals[name] = (LOCALS_BASE + WORD_BYTES * len(self.locals), type_)
        return self.locals[name][0]

    def _declare(self, name: str, type_: ast.Type, line: int) -> None:
        if name in self.locals:
            raise TypeError_(f"duplicate local {name!r} in {self.fn.name}", line)
        if name in self.storage:
            raise TypeError_(f"local {name!r} shadows a state variable", line)
        self.locals[name] = (LOCALS_BASE + WORD_BYTES * len(self.locals), type_)

    def local_offset(self, name: str) -> Optional[int]:
        entry = self.locals.get(name)
        return entry[0] if entry else None


class Compiler:
    """Compiles one parsed contract to bytecode."""

    def __init__(self, contract: ast.ContractDef, source: str = "") -> None:
        self._contract = contract
        self._source = source
        self._asm = Assembler()
        self._label_counter = 0
        self._inline_stack: List[str] = []
        self._inline_frames: List[Tuple[Optional[int], str]] = []
        self._inline_counter = 0
        self._layout: Dict[str, StorageVariable] = {}
        for slot, var in enumerate(contract.state_vars):
            if var.name in self._layout:
                raise TypeError_(f"duplicate state variable {var.name!r}", var.line)
            var.slot = slot
            self._layout[var.name] = StorageVariable(var.name, var.type, slot)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def compile(self) -> CompiledContract:
        abis = self._build_abis()
        self._emit_dispatcher(abis)
        self._emit_runtime_tails()
        for fn in self._contract.functions:
            # Internal functions exist only inlined into their callers.
            if not fn.internal:
                self._emit_function(fn, abis[fn.name])
        return CompiledContract(
            name=self._contract.name,
            code=self._asm.assemble(),
            functions=abis,
            layout=dict(self._layout),
            source=self._source,
            ast=self._contract,
        )

    def _build_abis(self) -> Dict[str, FunctionABI]:
        abis: Dict[str, FunctionABI] = {}
        seen = set()
        for fn in self._contract.functions:
            if fn.name in seen:
                raise TypeError_(f"duplicate function {fn.name!r}", fn.line)
            seen.add(fn.name)
            if fn.internal:
                continue  # no selector, not externally callable
            signature = function_signature(fn.name, fn.params)
            abis[fn.name] = FunctionABI(
                name=fn.name,
                signature=signature,
                selector=selector_of(signature),
                param_types=tuple(canonical_type_name(p.type) for p in fn.params),
                returns_value=fn.returns_value,
                payable=fn.payable,
                entry_label=f"fn_{fn.name}",
            )
        return abis

    # ------------------------------------------------------------------
    # Skeleton: dispatcher and shared revert/panic tails
    # ------------------------------------------------------------------

    def _emit_dispatcher(self, abis: Dict[str, FunctionABI]) -> None:
        asm = self._asm
        # selector = calldata[0:4] >> 224
        asm.push(0).op(Op.CALLDATALOAD).push(224).op(Op.SHR)
        for abi in abis.values():
            asm.op(Op.DUP1).push(abi.selector).op(Op.EQ).jumpi(abi.entry_label)
        # Unknown selector (or bare Ether send): revert.
        asm.jump("revert_tail")

    def _emit_runtime_tails(self) -> None:
        self._asm.jumpdest("revert_tail").push(0).push(0).op(Op.REVERT)
        self._asm.jumpdest("panic_tail").op(Op.INVALID)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _emit_function(self, fn: ast.FunctionDef, abi: FunctionABI) -> None:
        asm = self._asm
        ctx = _FunctionContext(fn, self._layout)
        asm.jumpdest(abi.entry_label)
        asm.op(Op.POP)  # drop the dup'd selector
        if not fn.payable:
            # Reject Ether sent to a non-payable function (Solidity semantics).
            asm.op(Op.CALLVALUE).op(Op.ISZERO)
            ok = self._fresh("nonpayable_ok")
            asm.jumpi(ok)
            asm.jump("revert_tail")
            asm.jumpdest(ok)
        # Copy arguments from calldata into local memory cells.
        for i, param in enumerate(fn.params):
            offset = ctx.local_offset(param.name)
            assert offset is not None
            asm.push(4 + WORD_BYTES * i).op(Op.CALLDATALOAD)
            asm.push(offset).op(Op.MSTORE)
        self._emit_body(fn.body, ctx)
        # Implicit return (void functions falling off the end).
        asm.op(Op.STOP)

    def _fresh(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _emit_body(self, body: List[ast.Stmt], ctx: _FunctionContext) -> None:
        for stmt in body:
            self._emit_statement(stmt, ctx)

    def _emit_statement(self, stmt: ast.Stmt, ctx: _FunctionContext) -> None:
        asm = self._asm
        if isinstance(stmt, ast.VarDecl):
            offset = ctx.local_offset(stmt.name)
            assert offset is not None
            if stmt.init is not None:
                self._emit_expression(stmt.init, ctx)
            else:
                asm.push(0)
            asm.push(offset).op(Op.MSTORE)
        elif isinstance(stmt, ast.Assign):
            self._emit_assign(stmt, ctx)
        elif isinstance(stmt, ast.Require):
            self._emit_expression(stmt.cond, ctx)
            ok = self._fresh("require_ok")
            asm.jumpi(ok)
            asm.jump("revert_tail")
            asm.jumpdest(ok)
        elif isinstance(stmt, ast.AssertStmt):
            self._emit_expression(stmt.cond, ctx)
            ok = self._fresh("assert_ok")
            asm.jumpi(ok)
            asm.jump("panic_tail")
            asm.jumpdest(ok)
        elif isinstance(stmt, ast.RevertStmt):
            asm.jump("revert_tail")
        elif isinstance(stmt, ast.Return):
            if self._inline_frames:
                # Return from an inlined callee: stash the value (if any)
                # and jump to the inline-end label of the innermost frame.
                ret_offset, end_label = self._inline_frames[-1]
                if stmt.value is not None:
                    if ret_offset is None:
                        raise TypeError_("void function returns a value", stmt.line)
                    self._emit_expression(stmt.value, ctx)
                    asm.push(ret_offset).op(Op.MSTORE)
                asm.jump(end_label)
            elif stmt.value is not None:
                self._emit_expression(stmt.value, ctx)
                asm.push(RETURN_SCRATCH).op(Op.MSTORE)
                asm.push(WORD_BYTES).push(RETURN_SCRATCH).op(Op.RETURN)
            else:
                asm.op(Op.STOP)
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt, ctx)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt, ctx)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt, ctx)
        elif isinstance(stmt, ast.ArrayPush):
            self._emit_array_push(stmt, ctx)
        elif isinstance(stmt, ast.Emit):
            self._emit_emit(stmt, ctx)
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.CallExpr):
                raise TypeError_("expression statements must be calls", stmt.line)
            self._emit_inline_call(stmt.expr, ctx, want_value=False)
        else:  # pragma: no cover - parser produces no other node kinds
            raise TypeError_(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def _emit_if(self, stmt: ast.If, ctx: _FunctionContext) -> None:
        asm = self._asm
        then_label = self._fresh("if_then")
        end_label = self._fresh("if_end")
        self._emit_expression(stmt.cond, ctx)
        asm.jumpi(then_label)
        self._emit_body(stmt.else_body, ctx)
        asm.jump(end_label)
        asm.jumpdest(then_label)
        self._emit_body(stmt.then_body, ctx)
        asm.jumpdest(end_label)

    def _emit_while(self, stmt: ast.While, ctx: _FunctionContext) -> None:
        asm = self._asm
        head = self._fresh("while_head")
        body = self._fresh("while_body")
        end = self._fresh("while_end")
        asm.jumpdest(head)
        self._emit_expression(stmt.cond, ctx)
        asm.jumpi(body)
        asm.jump(end)
        asm.jumpdest(body)
        self._emit_body(stmt.body, ctx)
        asm.jump(head)
        asm.jumpdest(end)

    def _emit_for(self, stmt: ast.For, ctx: _FunctionContext) -> None:
        asm = self._asm
        head = self._fresh("for_head")
        body = self._fresh("for_body")
        end = self._fresh("for_end")
        if stmt.init is not None:
            self._emit_statement(stmt.init, ctx)
        asm.jumpdest(head)
        if stmt.cond is not None:
            self._emit_expression(stmt.cond, ctx)
            asm.jumpi(body)
            asm.jump(end)
            asm.jumpdest(body)
        self._emit_body(stmt.body, ctx)
        if stmt.post is not None:
            self._emit_statement(stmt.post, ctx)
        asm.jump(head)
        asm.jumpdest(end)

    def _emit_assign(self, stmt: ast.Assign, ctx: _FunctionContext) -> None:
        asm = self._asm
        target = stmt.target
        # Build the value expression; compound ops read the target first.
        if stmt.op:
            value_expr: ast.Expr = ast.Binary(
                op=stmt.op, left=_clone_readable(target), right=stmt.value, line=stmt.line
            )
        else:
            value_expr = stmt.value

        if isinstance(target, ast.Name):
            local = ctx.local_offset(target.ident)
            if local is not None:
                self._emit_expression(value_expr, ctx)
                asm.push(local).op(Op.MSTORE)
                return
            var = self._layout.get(target.ident)
            if var is None:
                raise TypeError_(f"unknown variable {target.ident!r}", stmt.line)
            if not ast.is_word_type(var.type):
                raise TypeError_(
                    f"cannot assign whole {var.type} {target.ident!r}", stmt.line
                )
            self._emit_expression(value_expr, ctx)
            asm.push(var.slot).op(Op.SSTORE)
            return
        # Indexed target: value first, then the slot on top (SSTORE pops key).
        self._emit_expression(value_expr, ctx)
        self._emit_slot_of_index(target, ctx, for_write=True)
        asm.op(Op.SSTORE)

    def _emit_array_push(self, stmt: ast.ArrayPush, ctx: _FunctionContext) -> None:
        asm = self._asm
        var = self._layout.get(stmt.array)
        if var is None or not isinstance(var.type, ast.ArrayType):
            raise TypeError_(f"{stmt.array!r} is not a storage array", stmt.line)
        # element_slot = keccak(base_slot) + old_len ; then len = old_len + 1
        # (stack diagrams are bottom → top)
        self._emit_expression(stmt.value, ctx)          # [value]
        asm.push(var.slot).op(Op.SLOAD)                 # [value, len]
        asm.op(Op.DUP1)                                 # [value, len, len]
        self._emit_array_data_slot(var.slot)            # [value, len, len, data]
        asm.op(Op.ADD)                                  # [value, len, eslot]
        asm.op(Op.SWAP2)                                # [eslot, len, value]
        asm.op(Op.SWAP1)                                # [eslot, value, len]
        asm.push(1).op(Op.ADD)                          # [eslot, value, len+1]
        asm.push(var.slot).op(Op.SSTORE)                # [eslot, value]   base ← len+1
        asm.op(Op.SWAP1)                                # [value, eslot]
        asm.op(Op.SSTORE)                               # []               eslot ← value

    def _emit_emit(self, stmt: ast.Emit, ctx: _FunctionContext) -> None:
        asm = self._asm
        if len(stmt.args) > 8:
            raise TypeError_("emit supports at most 8 arguments", stmt.line)
        buffer = ctx.emit_buffer
        for i, arg in enumerate(stmt.args):
            self._emit_expression(arg, ctx)
            asm.push(buffer + WORD_BYTES * i).op(Op.MSTORE)
        topic = int.from_bytes(keccak(stmt.event.encode())[:32], "big")
        asm.push(topic)
        asm.push(WORD_BYTES * len(stmt.args))
        asm.push(buffer)
        asm.op(Op.LOG1)

    # ------------------------------------------------------------------
    # Expressions (net stack effect: +1)
    # ------------------------------------------------------------------

    def _emit_expression(self, expr: ast.Expr, ctx: _FunctionContext) -> None:
        asm = self._asm
        if isinstance(expr, ast.IntLit):
            asm.push(expr.value)
        elif isinstance(expr, ast.BoolLit):
            asm.push(1 if expr.value else 0)
        elif isinstance(expr, ast.Name):
            self._emit_name(expr, ctx)
        elif isinstance(expr, ast.Member):
            self._emit_member(expr, ctx)
        elif isinstance(expr, ast.Index):
            self._emit_slot_of_index(expr, ctx, for_write=False)
            asm.op(Op.SLOAD)
        elif isinstance(expr, ast.Binary):
            self._emit_binary(expr, ctx)
        elif isinstance(expr, ast.Unary):
            if expr.op == "!":
                self._emit_expression(expr.operand, ctx)
                asm.op(Op.ISZERO)
            else:  # unary minus
                self._emit_expression(expr.operand, ctx)
                asm.push(0)
                asm.op(Op.SUB)
        elif isinstance(expr, ast.BalanceOf):
            self._emit_expression(expr.operand, ctx)
            asm.op(Op.BALANCE)
        elif isinstance(expr, ast.CallExpr):
            self._emit_inline_call(expr, ctx, want_value=True)
        else:  # pragma: no cover
            raise TypeError_(f"unsupported expression {type(expr).__name__}", expr.line)

    def _emit_name(self, expr: ast.Name, ctx: _FunctionContext) -> None:
        asm = self._asm
        local = ctx.local_offset(expr.ident)
        if local is not None:
            asm.push(local).op(Op.MLOAD)
            return
        var = self._layout.get(expr.ident)
        if var is None:
            raise TypeError_(f"unknown variable {expr.ident!r}", expr.line)
        if not ast.is_word_type(var.type):
            raise TypeError_(
                f"{expr.ident!r} ({var.type}) must be indexed, not read whole", expr.line
            )
        asm.push(var.slot).op(Op.SLOAD)

    def _emit_member(self, expr: ast.Member, ctx: _FunctionContext) -> None:
        asm = self._asm
        if expr.base == "msg":
            asm.op(Op.CALLER if expr.member == "sender" else Op.CALLVALUE)
            return
        if expr.base == "block":
            asm.op(Op.NUMBER if expr.member == "number" else Op.TIMESTAMP)
            return
        var = self._layout.get(expr.base)
        if var is None or not isinstance(var.type, ast.ArrayType):
            raise TypeError_(f"{expr.base!r} is not a storage array", expr.line)
        asm.push(var.slot).op(Op.SLOAD)  # array length lives at the base slot

    def _emit_binary(self, expr: ast.Binary, ctx: _FunctionContext) -> None:
        asm = self._asm
        if expr.op in ("&&", "||"):
            self._emit_short_circuit(expr, ctx)
            return
        # Operand order: emit right first so the left operand ends on top,
        # matching the EVM's a-on-top convention for SUB/DIV/LT/...
        self._emit_expression(expr.right, ctx)
        self._emit_expression(expr.left, ctx)
        simple = {
            "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
            "<": Op.LT, ">": Op.GT, "==": Op.EQ,
        }
        if expr.op in simple:
            asm.op(simple[expr.op])
        elif expr.op == "!=":
            asm.op(Op.EQ).op(Op.ISZERO)
        elif expr.op == "<=":
            asm.op(Op.GT).op(Op.ISZERO)
        elif expr.op == ">=":
            asm.op(Op.LT).op(Op.ISZERO)
        else:  # pragma: no cover
            raise TypeError_(f"unsupported binary operator {expr.op!r}", expr.line)

    def _emit_short_circuit(self, expr: ast.Binary, ctx: _FunctionContext) -> None:
        """&& and || with genuine short-circuiting, so the right operand's
        SLOADs never execute (and never enter read sets) when skipped."""
        asm = self._asm
        end = self._fresh("sc_end")
        self._emit_expression(expr.left, ctx)
        asm.op(Op.ISZERO).op(Op.ISZERO)  # normalise to 0/1
        asm.op(Op.DUP1)
        if expr.op == "&&":
            asm.op(Op.ISZERO)
        asm.jumpi(end)
        asm.op(Op.POP)
        self._emit_expression(expr.right, ctx)
        asm.op(Op.ISZERO).op(Op.ISZERO)
        asm.jumpdest(end)

    # ------------------------------------------------------------------
    # Storage slot computation
    # ------------------------------------------------------------------

    def _emit_array_data_slot(self, base_slot: int) -> None:
        """Push keccak(base_slot): the first element slot of a dynamic array."""
        asm = self._asm
        asm.push(base_slot).push(HASH_SCRATCH).op(Op.MSTORE)
        asm.push(WORD_BYTES).push(HASH_SCRATCH).op(Op.SHA3)

    def _emit_mapping_slot(self) -> None:
        """Stack [... key, base] → [... keccak(key . base)]."""
        asm = self._asm
        asm.push(HASH_SCRATCH + WORD_BYTES).op(Op.MSTORE)  # base → scratch+32
        asm.push(HASH_SCRATCH).op(Op.MSTORE)               # key  → scratch
        asm.push(2 * WORD_BYTES).push(HASH_SCRATCH).op(Op.SHA3)

    def _emit_slot_of_index(
        self, expr: ast.Index, ctx: _FunctionContext, for_write: bool
    ) -> None:
        """Push the storage slot of ``expr`` (a possibly-nested index chain)."""
        # Unwind the chain: innermost base must be a Name of a mapping/array.
        chain: List[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            chain.append(node.index)
            node = node.base
        if not isinstance(node, ast.Name):
            raise TypeError_("index base must be a state variable", expr.line)
        var = self._layout.get(node.ident)
        if var is None:
            raise TypeError_(f"unknown state variable {node.ident!r}", expr.line)
        chain.reverse()  # outermost-first index order

        asm = self._asm
        current_type: ast.Type = var.type
        asm.push(var.slot)  # running slot value on the stack
        for index_expr in chain:
            if isinstance(current_type, ast.MappingType):
                # stack: [base]; need [key, base] then hash
                self._emit_expression(index_expr, ctx)   # [base, key]
                asm.op(Op.SWAP1)                          # [key, base]
                self._emit_mapping_slot()                 # [slot']
                current_type = current_type.value
            elif isinstance(current_type, ast.ArrayType):
                # Bounds check (Solidity panics on OOB) then keccak(base)+i.
                self._emit_expression(index_expr, ctx)    # [base, i]
                asm.op(Op.DUP2).op(Op.SLOAD)              # [base, i, len]
                asm.op(Op.DUP2).op(Op.LT)                 # [base, i, i<len]
                ok = self._fresh("bounds_ok")
                asm.jumpi(ok)
                asm.jump("panic_tail")
                asm.jumpdest(ok)                          # [base, i]
                asm.op(Op.SWAP1)                          # [i, base]
                asm.push(HASH_SCRATCH).op(Op.MSTORE)      # [i]
                asm.push(WORD_BYTES).push(HASH_SCRATCH).op(Op.SHA3)  # [i, keccak]
                asm.op(Op.ADD)                            # [slot']
                current_type = current_type.element
            else:
                raise TypeError_(f"cannot index into {current_type}", expr.line)
        if not ast.is_word_type(current_type):
            raise TypeError_("index chain does not reach a word value", expr.line)


    # ------------------------------------------------------------------
    # Internal calls (compiled by inlining)
    # ------------------------------------------------------------------

    def _emit_inline_call(
        self, call: ast.CallExpr, ctx: _FunctionContext, want_value: bool
    ) -> None:
        """Inline a same-contract call: arguments land in fresh locals, the
        callee body is emitted with its names uniquified, and its returns
        become jumps to a shared end label.

        Inlining (rather than a JUMP-based calling convention) matches the
        memory-cell locals model and keeps the access-site analysis flat:
        the callee's SLOAD/SSTOREs become ordinary sites of the caller.
        Recursion is rejected at compile time.
        """
        asm = self._asm
        fn = next(
            (f for f in self._contract.functions if f.name == call.name), None
        )
        if fn is None:
            raise TypeError_(f"unknown function {call.name!r}", call.line)
        if fn.name in self._inline_stack:
            raise TypeError_(
                f"recursive call to {fn.name!r} cannot be inlined", call.line
            )
        if len(call.args) != len(fn.params):
            raise TypeError_(
                f"{fn.name} expects {len(fn.params)} arguments, "
                f"got {len(call.args)}", call.line,
            )
        if want_value and not fn.returns_value:
            raise TypeError_(f"{fn.name} returns no value", call.line)

        self._inline_counter += 1
        tag = self._inline_counter
        rename: Dict[str, str] = {}

        # Bind arguments (evaluated in the caller's scope, left to right).
        for param, arg in zip(fn.params, call.args):
            fresh_name = f"__inl{tag}_{param.name}"
            offset = ctx.declare_inline(fresh_name, param.type)
            rename[param.name] = fresh_name
            self._emit_expression(arg, ctx)
            asm.push(offset).op(Op.MSTORE)

        # Uniquify the callee's own locals.
        for stmt in ast.walk_statements(fn.body):
            if isinstance(stmt, ast.VarDecl):
                fresh_name = f"__inl{tag}_{stmt.name}"
                ctx.declare_inline(fresh_name, stmt.type)
                rename[stmt.name] = fresh_name

        ret_offset: Optional[int] = None
        if fn.returns_value:
            ret_offset = ctx.declare_inline(f"__inl{tag}__ret", ast.UINT)
        end_label = self._fresh(f"inline_{fn.name}_end")

        body = [_rename_stmt(stmt, rename) for stmt in fn.body]
        self._inline_stack.append(fn.name)
        self._inline_frames.append((ret_offset, end_label))
        self._emit_body(body, ctx)
        self._inline_frames.pop()
        self._inline_stack.pop()
        asm.jumpdest(end_label)
        if want_value:
            assert ret_offset is not None
            asm.push(ret_offset).op(Op.MLOAD)


def _rename_expr(expr: ast.Expr, rename: Dict[str, str]) -> ast.Expr:
    """Deep-copy an expression with local names substituted."""
    if isinstance(expr, ast.Name):
        return ast.Name(ident=rename.get(expr.ident, expr.ident), line=expr.line)
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            op=expr.op,
            left=_rename_expr(expr.left, rename),
            right=_rename_expr(expr.right, rename),
            line=expr.line,
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(op=expr.op, operand=_rename_expr(expr.operand, rename),
                         line=expr.line)
    if isinstance(expr, ast.Index):
        return ast.Index(
            base=_rename_expr(expr.base, rename),
            index=_rename_expr(expr.index, rename),
            line=expr.line,
        )
    if isinstance(expr, ast.BalanceOf):
        return ast.BalanceOf(operand=_rename_expr(expr.operand, rename),
                             line=expr.line)
    if isinstance(expr, ast.CallExpr):
        return ast.CallExpr(
            name=expr.name,
            args=[_rename_expr(a, rename) for a in expr.args],
            line=expr.line,
        )
    # IntLit, BoolLit, Member: no locals inside.
    return expr


def _rename_stmt(stmt: ast.Stmt, rename: Dict[str, str]) -> ast.Stmt:
    """Deep-copy a statement with local names substituted."""
    if isinstance(stmt, ast.VarDecl):
        return ast.VarDecl(
            name=rename.get(stmt.name, stmt.name),
            type=stmt.type,
            init=_rename_expr(stmt.init, rename) if stmt.init is not None else None,
            line=stmt.line,
        )
    if isinstance(stmt, ast.Assign):
        return ast.Assign(
            target=_rename_expr(stmt.target, rename),  # type: ignore[arg-type]
            value=_rename_expr(stmt.value, rename),
            op=stmt.op,
            line=stmt.line,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=_rename_expr(stmt.cond, rename),
            then_body=[_rename_stmt(s, rename) for s in stmt.then_body],
            else_body=[_rename_stmt(s, rename) for s in stmt.else_body],
            line=stmt.line,
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            cond=_rename_expr(stmt.cond, rename),
            body=[_rename_stmt(s, rename) for s in stmt.body],
            line=stmt.line,
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            init=_rename_stmt(stmt.init, rename) if stmt.init is not None else None,
            cond=_rename_expr(stmt.cond, rename) if stmt.cond is not None else None,
            post=_rename_stmt(stmt.post, rename) if stmt.post is not None else None,
            body=[_rename_stmt(s, rename) for s in stmt.body],
            line=stmt.line,
        )
    if isinstance(stmt, ast.Require):
        return ast.Require(cond=_rename_expr(stmt.cond, rename), line=stmt.line)
    if isinstance(stmt, ast.AssertStmt):
        return ast.AssertStmt(cond=_rename_expr(stmt.cond, rename), line=stmt.line)
    if isinstance(stmt, ast.Return):
        return ast.Return(
            value=_rename_expr(stmt.value, rename) if stmt.value is not None else None,
            line=stmt.line,
        )
    if isinstance(stmt, ast.ArrayPush):
        return ast.ArrayPush(
            array=stmt.array,
            value=_rename_expr(stmt.value, rename),
            line=stmt.line,
        )
    if isinstance(stmt, ast.Emit):
        return ast.Emit(
            event=stmt.event,
            args=[_rename_expr(a, rename) for a in stmt.args],
            line=stmt.line,
        )
    if isinstance(stmt, ast.ExprStmt):
        return ast.ExprStmt(expr=_rename_expr(stmt.expr, rename), line=stmt.line)
    return stmt  # RevertStmt


def _clone_readable(target: Union[ast.Name, ast.Index]) -> ast.Expr:
    """Targets are re-read for compound assignment; the AST nodes are
    immutable in practice, so sharing them is safe."""
    return target


def compile_source(source: str) -> CompiledContract:
    """Front door: parse and compile one Minisol contract."""
    contract = parse_contract(source)
    return Compiler(contract, source).compile()
