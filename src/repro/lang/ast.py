"""Abstract syntax tree for Minisol.

Minisol is a deliberately small Solidity subset — just enough to express the
contracts that dominate the paper's mainnet workload (ERC20 tokens, AMM-style
DeFi, NFT mints, ICO sales) while keeping Solidity's *storage layout rules*,
which is what makes the paper's fine-grained slot-level analysis meaningful.

All scalar values are 256-bit words; ``uint``, ``address``, and ``bool`` are
word types distinguished only for light semantic checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UIntType:
    def __str__(self) -> str:
        return "uint"


@dataclass(frozen=True)
class AddressType:
    def __str__(self) -> str:
        return "address"


@dataclass(frozen=True)
class BoolType:
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class MappingType:
    key: "Type"
    value: "Type"

    def __str__(self) -> str:
        return f"mapping({self.key} => {self.value})"


@dataclass(frozen=True)
class ArrayType:
    element: "Type"

    def __str__(self) -> str:
        return f"{self.element}[]"


Type = Union[UIntType, AddressType, BoolType, MappingType, ArrayType]

UINT = UIntType()
ADDRESS = AddressType()
BOOL = BoolType()


def is_word_type(type_: Type) -> bool:
    return isinstance(type_, (UIntType, AddressType, BoolType))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Node:
    line: int = field(default=0, compare=False)


@dataclass
class IntLit(Node):
    value: int = 0


@dataclass
class BoolLit(Node):
    value: bool = False


@dataclass
class Name(Node):
    """A local variable, parameter, or storage variable reference."""

    ident: str = ""


@dataclass
class Index(Node):
    """``base[index]`` — mapping or array access; chains for nested maps."""

    base: "Expr" = None  # type: ignore[assignment]
    index: "Expr" = None  # type: ignore[assignment]


@dataclass
class Member(Node):
    """``base.member`` — only ``<array>.length``, ``msg.*``, ``block.*``."""

    base: str = ""
    member: str = ""


@dataclass
class Binary(Node):
    op: str = ""
    left: "Expr" = None  # type: ignore[assignment]
    right: "Expr" = None  # type: ignore[assignment]


@dataclass
class Unary(Node):
    op: str = ""
    operand: "Expr" = None  # type: ignore[assignment]


@dataclass
class BalanceOf(Node):
    """``balance(expr)`` builtin: Ether balance of an address."""

    operand: "Expr" = None  # type: ignore[assignment]


@dataclass
class CallExpr(Node):
    """``helper(args...)`` — a call to another function of the same
    contract (compiled by inlining)."""

    name: str = ""
    args: List["Expr"] = field(default_factory=list)


Expr = Union[IntLit, BoolLit, Name, Index, Member, Binary, Unary, BalanceOf, CallExpr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class VarDecl(Node):
    name: str = ""
    type: Type = UINT
    init: Optional[Expr] = None


@dataclass
class Assign(Node):
    """``target op= value``; op is '' for plain assignment, '+'/'-'/'*' for
    compound forms."""

    target: Union[Name, Index] = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    op: str = ""


@dataclass
class If(Node):
    cond: Expr = None  # type: ignore[assignment]
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Expr = None  # type: ignore[assignment]
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class For(Node):
    init: Optional["Stmt"] = None
    cond: Optional[Expr] = None
    post: Optional["Stmt"] = None
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class Require(Node):
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class AssertStmt(Node):
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class RevertStmt(Node):
    pass


@dataclass
class Return(Node):
    value: Optional[Expr] = None


@dataclass
class ArrayPush(Node):
    array: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Emit(Node):
    event: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class ExprStmt(Node):
    """A bare expression statement (an internal call for its effects)."""

    expr: Expr = None  # type: ignore[assignment]


Stmt = Union[
    VarDecl, Assign, If, While, For, Require, AssertStmt, RevertStmt, Return,
    ArrayPush, Emit, ExprStmt,
]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type: Type = UINT


@dataclass
class StateVarDecl(Node):
    name: str = ""
    type: Type = UINT
    slot: int = -1  # assigned by the compiler's layout pass


@dataclass
class FunctionDef(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    returns_value: bool = False
    body: List[Stmt] = field(default_factory=list)
    payable: bool = False
    internal: bool = False  # no selector; reachable only through inlining


@dataclass
class ContractDef(Node):
    name: str = ""
    state_vars: List[StateVarDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)


def walk_statements(body: List[Stmt]):
    """Depth-first iterator over every statement, including nested bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, For):
            inner = [s for s in (stmt.init, stmt.post) if s is not None]
            yield from walk_statements(inner + stmt.body)


def walk_expressions(expr: Expr):
    """Depth-first iterator over an expression tree."""
    yield expr
    if isinstance(expr, Binary):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
    elif isinstance(expr, Unary):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, Index):
        yield from walk_expressions(expr.base)
        yield from walk_expressions(expr.index)
    elif isinstance(expr, BalanceOf):
        yield from walk_expressions(expr.operand)
    elif isinstance(expr, CallExpr):
        for arg in expr.args:
            yield from walk_expressions(arg)
