"""Tokeniser for Minisol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..core.errors import LexError

KEYWORDS = {
    "contract", "mapping", "uint", "uint256", "address", "bool", "function",
    "returns", "return", "if", "else", "while", "for", "require", "assert",
    "revert", "emit", "true", "false", "msg", "block", "public", "view",
    "payable", "external", "internal", "pure", "memory", "storage", "event",
    "balance", "push",
}

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "=>", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}", "[",
    "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "keyword" | "op" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Convert source text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    while i < length:
        ch = source[i]
        # Whitespace
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # Comments
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = length if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, column)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        # Numbers
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and (source[i] in "0123456789abcdefABCDEF" or source[i] == "_"):
                    i += 1
            else:
                while i < length and (source[i].isdigit() or source[i] == "_"):
                    i += 1
            text = source[start:i]
            tokens.append(Token("number", text, line, column))
            column += i - start
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        # Operators / punctuation
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens


def parse_number(token: Token) -> int:
    text = token.text.replace("_", "")
    try:
        return int(text, 0)
    except ValueError:
        raise LexError(f"bad numeric literal {token.text!r}", token.line, token.column) from None
