"""Minisol: a small Solidity subset compiled to EVM bytecode."""

from . import ast
from .compiler import (
    CompiledContract,
    Compiler,
    FunctionABI,
    StorageVariable,
    compile_source,
    function_signature,
    selector_of,
)
from .lexer import Token, tokenize
from .parser import Parser, parse_contract

__all__ = [
    "CompiledContract",
    "Compiler",
    "FunctionABI",
    "Parser",
    "StorageVariable",
    "Token",
    "ast",
    "compile_source",
    "function_signature",
    "parse_contract",
    "selector_of",
    "tokenize",
]
