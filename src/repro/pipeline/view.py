"""Speculative read views over unsealed state.

The pipeline lets block *N+1* start executing before block *N*'s trie
commit has sealed, so the executor cannot read from a :class:`Snapshot`
that does not exist yet.  A :class:`PendingView` is the bridge: the latest
*sealed* snapshot plus the final write batches of every in-flight block
between it and the speculative head, flattened into one overlay dict.

Values are exact — an in-flight batch is the block's *final* write set
(execution is already finished; only sealing/fsync are pending) — so a
read through the view returns byte-for-byte what the eventual snapshot
will contain.  That is the pipeline's ordering invariant: the commit of
block *N* can land arbitrarily late, but the view block *N+1* executes
against already observes exactly *N*'s writes (``tests/pipeline`` asserts
this as a property).

The view quacks like a :class:`~repro.state.statedb.Snapshot` everywhere
executors and the C-SAG builder look: ``get`` / ``get_uncached``,
``balance_of`` / ``nonce_of``, ``height``, ``root_hash`` and the
``flat_hits``/``flat_misses`` counters.  ``root_hash`` is the *base*
snapshot's root (the newest sealed commitment) — the overlay has no root
until its blocks seal, and C-SAG cache keys only need a stable identity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from ..core.types import Address, StateKey

_MISS = object()


class PendingView:
    """Read-only composite of a sealed snapshot and in-flight writes."""

    def __init__(
        self,
        base,
        batches: Iterable[Tuple[int, Mapping[StateKey, int]]] = (),
    ) -> None:
        """``batches`` are ``(height, final_writes)`` pairs in ascending
        height order.  Batches at or below the base height are tolerated
        (they re-assert values the base already contains — the benign race
        when a seal lands between capturing the pending set and the base).
        """
        self._base = base
        self._overlay: Dict[StateKey, int] = {}
        height = base.height
        for batch_height, writes in batches:
            self._overlay.update(writes)
            height = max(height, batch_height)
        self.height = height
        self.flat_hits = 0
        self.flat_misses = 0

    @property
    def base(self):
        return self._base

    @property
    def pending_writes(self) -> int:
        return len(self._overlay)

    @property
    def root_hash(self) -> bytes:
        return self._base.root_hash

    def get(self, key: StateKey) -> int:
        value = self._overlay.get(key, _MISS)
        if value is not _MISS:
            self.flat_hits += 1
            return value
        return self._base.get(key)

    def get_uncached(self, key: StateKey) -> int:
        value = self._overlay.get(key, _MISS)
        if value is not _MISS:
            return value
        return self._base.get_uncached(key)

    def balance_of(self, address: Address) -> int:
        return self.get(StateKey.balance(address))

    def nonce_of(self, address: Address) -> int:
        return self.get(StateKey.nonce(address))

    def __repr__(self) -> str:
        return (
            f"PendingView(height={self.height}, "
            f"base={self._base.height}, "
            f"pending_writes={len(self._overlay)})"
        )
