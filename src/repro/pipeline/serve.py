"""``python -m repro serve`` — stream a scenario through the pipeline.

The serving analogue of :mod:`repro.soak`: instead of feeding and
proposing one block at a time, the scenario generator becomes a continuous
:class:`~repro.pipeline.source.WorkloadStream` (nonce- and fee-stamped)
pulled through the full mempool → analyse → pack → execute → seal →
persist pipeline, with backpressure hysteresis at the front and a bounded
seal queue in the middle.

``--check`` keeps the PR-1/PR-6 invariants *online* while streaming:

* **serializability oracle** — every block's parallel execution is
  trace-recorded and differentially checked against a fresh serial run of
  the same packed order over the same speculative
  :class:`~repro.pipeline.view.PendingView` it executed against;
* **root-parity twin** — an in-memory StateDB commits the same write
  batches on the stream lane; as blocks seal on the commit lane (possibly
  several blocks behind the speculative head) their headers' state roots
  are compared against the twin's root at the same height — byte-for-byte,
  pipelining notwithstanding.

The defaults are sized so backpressure genuinely engages: the stream
produces faster than a block consumes and the mempool is small enough to
hit its high watermark within a few blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..chain.txpool import Packer, TransactionPool
from ..executors.serial import SerialExecutor
from ..soak import _executor_for
from ..verify.oracle import SerializabilityOracle
from ..verify.trace import TraceRecorder
from ..workload.generator import Workload
from ..workload.scenarios import scenario_config
from .driver import PipelinedValidator, PipelineReport
from .source import WorkloadStream


@dataclass
class ServeReport:
    """One serve run: the pipeline's report plus the online invariants."""

    scenario: str = ""
    backend: str = "durable"
    seed: int = 0
    check: bool = False
    pipeline: PipelineReport = field(default_factory=PipelineReport)
    oracle_checks: int = 0
    oracle_violations: List[str] = field(default_factory=list)
    oracle_time: float = 0.0
    root_parity_checks: int = 0
    root_mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.oracle_violations or self.root_mismatches)

    def render(self) -> str:
        lines = [self.pipeline.render()]
        if self.check:
            verdict = "OK" if self.ok else "FAILED"
            lines.append(
                f"  oracle: {self.oracle_checks} online check(s), "
                f"{len(self.oracle_violations)} violation(s), "
                f"{self.oracle_time:.1f}s total"
            )
            lines.append(
                f"  root parity: {self.root_parity_checks} sealed root(s) "
                f"checked, {len(self.root_mismatches)} mismatch(es): {verdict}"
            )
            for detail in (
                self.oracle_violations[:5] + self.root_mismatches[:5]
            ):
                lines.append(f"    {detail}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        data = self.pipeline.as_dict()
        data["config"].update({
            "scenario": self.scenario,
            "backend": self.backend,
            "seed": self.seed,
            "check": self.check,
        })
        data["invariants"] = {
            "oracle_checks": self.oracle_checks,
            "oracle_violations": self.oracle_violations,
            "oracle_time_s": round(self.oracle_time, 2),
            "root_parity_checks": self.root_parity_checks,
            "root_mismatches": self.root_mismatches,
        }
        data["ok"] = self.ok
        return data


class _RecordingExecutor:
    """Wrap an executor so each ``execute_block`` runs under a fresh
    :class:`TraceRecorder`; the stream lane reads ``last_trace`` right
    after the execute stage (same thread, so never racy)."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.last_trace: Optional[TraceRecorder] = None

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def obs(self):
        return self.inner.obs

    @obs.setter
    def obs(self, bus) -> None:
        self.inner.obs = bus

    def execute_block(self, *args, **kwargs):
        recorder = TraceRecorder()
        previous = self.inner.recorder
        self.inner.recorder = recorder
        try:
            return self.inner.execute_block(*args, **kwargs)
        finally:
            self.inner.recorder = previous
            self.last_trace = recorder


def run_serve(
    blocks: int = 500,
    txs_per_block: int = 32,
    scenario: str = "mix",
    scheduler: str = "dmvcc",
    threads: int = 8,
    seed: int = 2023,
    backend: str = "durable",
    max_inflight: int = 2,
    pool_size: Optional[int] = None,
    min_fee: int = 0,
    per_sender_cap: int = 0,
    max_nonce_gap: Optional[int] = None,
    high_watermark: float = 0.9,
    low_watermark: float = 0.5,
    ingest_rate: Optional[int] = None,
    gas_limit: Optional[int] = None,
    check: bool = False,
    fsync_delay: float = 0.0,
    durable_dir: Optional[str] = None,
    workload_overrides: Optional[Dict] = None,
    profile_db: Optional[str] = None,
    obs=None,
    progress: Optional[Callable[[str], None]] = None,
    progress_every: int = 50,
    report_path: Optional[str] = None,
) -> ServeReport:
    """Stream ``blocks`` blocks of a scenario through the pipeline.

    ``pool_size`` defaults to six blocks' worth, ``ingest_rate`` to two
    blocks' worth per cycle, and the watermark band is wide (0.5–0.9): the
    stream outruns consumption, occupancy climbs over the high watermark
    within a few blocks, and draining back under the low watermark takes
    several packed blocks — so ingest genuinely skips pull cycles, it does
    not just toggle.  ``max_inflight=0`` runs the same loop strictly
    sequentially.
    """
    if backend not in ("memory", "durable"):
        raise ValueError(f"unknown backend {backend!r}")
    import shutil
    import tempfile

    config = scenario_config(scenario, seed=seed, **(workload_overrides or {}))
    workload = Workload(config)
    twin = workload.db
    own_dir = durable_dir is None
    if backend == "durable":
        directory = durable_dir or tempfile.mkdtemp(prefix="repro-serve-")
        db = twin.mirror_durable(directory, fsync_delay=fsync_delay)
    else:
        directory = None
        db = twin.fork()

    executor = _executor_for(scheduler)
    if check:
        executor = _RecordingExecutor(executor)
    # Learned-profile continuity across serve runs: with --profile-db the
    # lane planner boots from the persisted heat (if any) and writes the
    # updated store back when the stream drains.
    planner = None
    if profile_db:
        from ..scheduling.planner import LanePlanner
        from ..scheduling.profile import ConflictProfileStore

        try:
            profiles = ConflictProfileStore.load(profile_db)
        except OSError:
            profiles = ConflictProfileStore()
        planner = LanePlanner(profiles=profiles)
    pool = TransactionPool(
        max_size=pool_size or txs_per_block * 6,
        min_fee=min_fee,
        per_sender_cap=per_sender_cap,
        nonce_tracking=True,
        max_nonce_gap=max_nonce_gap,
        high_watermark=high_watermark,
        low_watermark=low_watermark,
        obs=obs,
    )
    packer = Packer(max_txs=txs_per_block, gas_limit=gas_limit, order="fee")
    driver = PipelinedValidator(
        "serve", db, executor, threads=threads,
        pool=pool, packer=packer, max_inflight=max_inflight,
        ingest_rate=ingest_rate or txs_per_block * 2, obs=obs,
        planner=planner,
    )
    source = WorkloadStream(workload, limit=blocks * txs_per_block)

    report = ServeReport(
        scenario=scenario, backend=backend, seed=seed, check=check,
    )
    serial = SerialExecutor()
    twin_roots: Dict[int, bytes] = {}
    parity_cursor = [0]  # index into driver.chain already compared

    def check_sealed_roots() -> None:
        """Compare every newly sealed header against the twin (online —
        called from the stream lane each block and once after the drain)."""
        with driver._lock:
            headers = driver.chain[parity_cursor[0]:]
        for header in headers:
            parity_cursor[0] += 1
            report.root_parity_checks += 1
            expected = twin_roots.get(header.number)
            if expected is None:
                report.root_mismatches.append(
                    f"block {header.number}: sealed with no twin root"
                )
            elif header.state_root != expected:
                report.root_mismatches.append(
                    f"block {header.number}: sealed root "
                    f"{header.state_root.hex()[:16]} != twin "
                    f"{expected.hex()[:16]}"
                )

    def on_block(height, view, txs, execution) -> None:
        if check:
            oracle_start = time.perf_counter()
            serial_run = serial.execute_block(
                txs, view, twin.codes.code_of, threads=1,
            )
            oracle = SerializabilityOracle(snapshot_get=view.get_uncached)
            verdict = oracle.check(
                trace=executor.last_trace,
                parallel_writes=execution.writes,
                parallel_receipts=execution.receipts,
                serial_writes=serial_run.writes,
                serial_receipts=serial_run.receipts,
                scheduler=executor.name,
            )
            report.oracle_time += time.perf_counter() - oracle_start
            report.oracle_checks += 1
            if not verdict.ok:
                for divergence in verdict.divergences[:3]:
                    report.oracle_violations.append(
                        f"block {height}: {divergence}"
                    )
            twin.commit(execution.writes)
            twin_roots[height] = twin.latest.root_hash
            check_sealed_roots()
        if progress is not None and height % max(progress_every, 1) == 0:
            progress(
                f"block {height}/{blocks}: pool {len(driver.pool)}, "
                f"{driver._report.queue_stalls} stall(s), "
                f"{driver._report.backpressure_engagements} backpressure "
                f"engagement(s)"
            )

    try:
        report.pipeline = driver.run(source, blocks, on_block=on_block)
        if check:
            check_sealed_roots()  # headers sealed after the last on_block
    finally:
        driver.close()
        if planner is not None:
            planner.profiles.save(profile_db)
        db.close()
        if backend == "durable" and own_dir:
            shutil.rmtree(directory, ignore_errors=True)

    if report_path:
        import os

        from ..bench.reporting import save_results_json

        parent = os.path.dirname(report_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        save_results_json(report_path, report.as_dict())
    return report
