"""Transaction sources feeding the pipeline's ingest stage.

A source is anything with ``pull(n) -> List[Transaction]`` (an empty list
means the stream is exhausted *for now*; ``exhausted`` says whether it can
ever produce again).  Ingest pulls, it is never pushed to — which is what
makes backpressure a throttle instead of a drop: when the mempool is above
its high watermark the driver simply stops pulling until occupancy drains
below the low watermark, and the unpulled traffic waits in the source.

:class:`WorkloadStream` adapts the PR-6 scenario generator into a mempool
-shaped stream: the raw generator emits every transaction with ``nonce=0``
and ``fee=0``, so the stream stamps each one with the sender's next nonce
(a per-sender counter) and a seeded fee drawn from a skewed ladder (most
senders bid low, a few bid aggressively — enough spread for fee ordering
and fee-priority eviction to have something to decide).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional

from ..chain.transaction import Transaction
from ..core.types import Address

# Fee ladder: (weight, low, high) bands, roughly mainnet-shaped — a fat
# band of minimal bidders, a mid band, and a thin band of fee outbidders.
FEE_BANDS = ((70, 1, 10), (25, 10, 100), (5, 100, 1_000))


class IteratorSource:
    """Wrap any transaction iterable as a pull source."""

    def __init__(self, txs: Iterable[Transaction]) -> None:
        self._iter: Iterator[Transaction] = iter(txs)
        self.exhausted = False
        self.pulled = 0

    def pull(self, n: int) -> List[Transaction]:
        out: List[Transaction] = []
        while len(out) < n:
            try:
                out.append(next(self._iter))
            except StopIteration:
                self.exhausted = True
                break
        self.pulled += len(out)
        return out


class WorkloadStream:
    """A continuous, nonce- and fee-stamped stream over a Workload.

    ``limit`` bounds the total transactions the stream will ever emit
    (``None`` streams forever — the serve loop bounds by block count).
    Stamping is deterministic: the fee RNG is seeded from the workload's
    seed, and nonces are per-sender counters starting at ``base_nonce``.
    """

    def __init__(
        self,
        workload,
        limit: Optional[int] = None,
        fee_seed: Optional[int] = None,
    ) -> None:
        self.workload = workload
        self.limit = limit
        seed = fee_seed if fee_seed is not None else workload.config.seed ^ 0xFEE5
        self._rng = random.Random(seed)
        self._nonces: Dict[Address, int] = {}
        self._cum_weights: List[int] = []
        total = 0
        for weight, _, _ in FEE_BANDS:
            total += weight
            self._cum_weights.append(total)
        self.pulled = 0
        self.exhausted = False

    def _fee(self) -> int:
        bands = [band for band in FEE_BANDS]
        (_, low, high) = self._rng.choices(bands, cum_weights=self._cum_weights, k=1)[0]
        return self._rng.randint(low, high)

    def _stamp(self, tx: Transaction) -> Transaction:
        nonce = self._nonces.get(tx.sender, 0)
        self._nonces[tx.sender] = nonce + 1
        return replace(tx, nonce=nonce, fee=self._fee())

    def pull(self, n: int) -> List[Transaction]:
        if self.limit is not None:
            n = min(n, self.limit - self.pulled)
        if n <= 0:
            if self.limit is not None and self.pulled >= self.limit:
                self.exhausted = True
            return []
        txs = [self._stamp(tx) for tx in self.workload.transactions(n)]
        self.pulled += len(txs)
        if self.limit is not None and self.pulled >= self.limit:
            self.exhausted = True
        return txs
