"""repro.pipeline — the streaming block pipeline (the serving layer).

Decomposes block production into overlapping stages — **ingest** (mempool
admission), **analyse** (C-SAG building against the latest sealed
snapshot), **pack** (fee-ordered drafting), **execute** (any of the four
schedulers), **seal** (the batched trie-overlay commit), and **persist**
(the durable fsync boundary) — so block *N+1* executes while block *N* is
still sealing and fsyncing.  See ``docs/PIPELINE.md``.
"""

from .driver import (
    STAGES,
    PipelinedValidator,
    PipelineReport,
    StageStats,
)
from .serve import ServeReport, run_serve
from .source import IteratorSource, WorkloadStream
from .view import PendingView

__all__ = [
    "STAGES",
    "IteratorSource",
    "PendingView",
    "PipelineReport",
    "PipelinedValidator",
    "ServeReport",
    "StageStats",
    "WorkloadStream",
    "run_serve",
]
