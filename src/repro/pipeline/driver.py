"""The pipelined chain driver: overlapping block production stages.

``PipelinedValidator`` decomposes the strictly-sequential
execute→commit→persist loop of :class:`~repro.chain.validator.Validator`
into six stages on two lanes:

* the **stream lane** (caller's thread): *ingest* (pull from the source,
  mempool admission, backpressure hysteresis), *analyse* (C-SAG building
  against the latest sealed snapshot, the paper's arrival-time analysis),
  *pack* (fee-ordered, gas-capped drafting), *execute* (any scheduler,
  reading through a :class:`~repro.pipeline.view.PendingView`);
* the **commit lane** (one worker thread): *seal* (the PR-4 batched
  trie-overlay commit) and *persist* (the PR-5 durable fsync boundary),
  consumed from a bounded queue.

Block *N+1* therefore executes while block *N* seals and fsyncs.  The
queue bound (``max_inflight``) is the pipeline's depth: when the commit
lane falls behind, the stream lane blocks on submit (a *stall*, counted) —
backpressure inside the pipeline, mirroring the mempool watermarks that
throttle ingest at the front.

``max_inflight=0`` degenerates to the strictly-sequential driver (seal and
persist run inline on the stream lane) — the baseline
``benchmarks/bench_pipeline.py`` compares against, sharing every other
code path.

Miner-packs / validator-replays is preserved: the packed order travels in
the sealed :class:`~repro.chain.block.Block`, so any ordinary
``Validator.import_block`` replays the stream and must re-derive the same
roots (``tests/pipeline`` asserts this).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.csag import CSAGBuilder
from ..analysis.sag import PSAGCache
from ..chain.block import GENESIS_PARENT, Block, BlockHeader, make_block
from ..chain.transaction import Transaction
from ..chain.txpool import Packer, PoolStats, TransactionPool
from ..core.types import Address, StateKey
from ..evm.environment import BlockContext
from ..executors.base import BlockExecution, Executor
from ..scheduling.planner import LanePlanner
from ..scheduling.schedule import BlockSidecar, Schedule
from ..state.statedb import StateDB
from .view import PendingView

STAGES = ("ingest", "analyse", "pack", "execute", "seal", "persist")

_STOP = object()


@dataclass
class StageStats:
    """Wall-clock accounting of one pipeline stage."""

    name: str
    completions: int = 0
    items: int = 0
    busy: float = 0.0          # total wall seconds the stage was occupied
    max_latency: float = 0.0

    def record(self, latency: float, items: int = 0) -> None:
        self.completions += 1
        self.items += items
        self.busy += latency
        if latency > self.max_latency:
            self.max_latency = latency

    @property
    def mean_latency(self) -> float:
        return self.busy / self.completions if self.completions else 0.0

    def occupancy(self, elapsed: float) -> float:
        """Fraction of the run this stage was busy (lane utilisation)."""
        return self.busy / elapsed if elapsed > 0 else 0.0

    def as_dict(self, elapsed: float) -> dict:
        return {
            "completions": self.completions,
            "items": self.items,
            "busy_s": round(self.busy, 4),
            "mean_latency_ms": round(self.mean_latency * 1e3, 3),
            "max_latency_ms": round(self.max_latency * 1e3, 3),
            "occupancy": round(self.occupancy(elapsed), 4),
        }


@dataclass
class PipelineReport:
    """Aggregate outcome of one pipelined run."""

    scheduler: str = ""
    threads: int = 0
    pipelined: bool = True
    blocks: int = 0
    txs: int = 0
    elapsed: float = 0.0
    stages: Dict[str, StageStats] = field(default_factory=dict)
    pool: Optional[PoolStats] = None
    pool_peak: int = 0
    backpressure_engagements: int = 0
    throttled_pulls: int = 0       # ingest cycles skipped while engaged
    queue_stalls: int = 0          # submits that blocked on a full queue
    stall_time: float = 0.0        # wall seconds the stream lane blocked
    overlap_seconds: float = 0.0   # execute-lane busy ∩ commit-lane busy
    aborts: int = 0
    executions: int = 0
    deterministic_failures: int = 0
    total_gas: int = 0
    planner_repairs: int = 0       # C-SAGs re-refined against lane overlays
    planner_reorders: int = 0      # blocks whose planned order moved txs

    @property
    def blocks_per_sec(self) -> float:
        return self.blocks / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def txs_per_sec(self) -> float:
        return self.txs / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        mode = "pipelined" if self.pipelined else "sequential"
        lines = [
            f"pipeline [{self.scheduler}/{mode}]: {self.blocks} block(s), "
            f"{self.txs} tx(s) in {self.elapsed:.2f}s "
            f"({self.blocks_per_sec:.2f} blocks/s, "
            f"{self.txs_per_sec:.1f} tx/s)",
            f"  overlap: {self.overlap_seconds:.3f}s execute∩commit; "
            f"{self.queue_stalls} stall(s) ({self.stall_time:.3f}s) on the "
            f"seal queue",
            f"  backpressure: {self.backpressure_engagements} engagement(s), "
            f"{self.throttled_pulls} throttled ingest cycle(s), "
            f"pool peak {self.pool_peak}",
            f"  aborts: {self.aborts}/{self.executions} attempts, "
            f"{self.deterministic_failures} deterministic revert(s)",
            "  stage      blocks   items      busy      mean       max   occupancy",
        ]
        if self.planner_repairs or self.planner_reorders:
            lines.insert(-1, (
                f"  planner: {self.planner_repairs} prediction repair(s), "
                f"{self.planner_reorders} reordered block(s)"
            ))
        for name in STAGES:
            stage = self.stages.get(name)
            if stage is None:
                continue
            lines.append(
                f"  {name:<9} {stage.completions:>6} {stage.items:>7} "
                f"{stage.busy:>8.3f}s {stage.mean_latency * 1e3:>7.2f}ms "
                f"{stage.max_latency * 1e3:>7.2f}ms {stage.occupancy(self.elapsed):>9.2%}"
            )
        if self.pool is not None:
            rejected = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.pool.rejected.items())
            ) or "none"
            lines.append(
                f"  mempool: {self.pool.admitted}/{self.pool.received} "
                f"admitted, {self.pool.replacements} replaced, "
                f"{self.pool.evictions} evicted "
                f"({self.pool.evicted_analysed} analysed), rejected: {rejected}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "config": {
                "scheduler": self.scheduler,
                "threads": self.threads,
                "pipelined": self.pipelined,
            },
            "totals": {
                "blocks": self.blocks,
                "txs": self.txs,
                "elapsed_s": round(self.elapsed, 3),
                "blocks_per_sec": round(self.blocks_per_sec, 3),
                "txs_per_sec": round(self.txs_per_sec, 2),
                "overlap_s": round(self.overlap_seconds, 4),
                "queue_stalls": self.queue_stalls,
                "stall_time_s": round(self.stall_time, 4),
                "backpressure_engagements": self.backpressure_engagements,
                "throttled_pulls": self.throttled_pulls,
                "pool_peak": self.pool_peak,
                "aborts": self.aborts,
                "executions": self.executions,
                "deterministic_failures": self.deterministic_failures,
                "total_gas": self.total_gas,
                "planner_repairs": self.planner_repairs,
                "planner_reorders": self.planner_reorders,
            },
            "stages": {
                name: stage.as_dict(self.elapsed)
                for name, stage in self.stages.items()
            },
            "mempool": self.pool.as_dict() if self.pool is not None else {},
        }


@dataclass
class _SealJob:
    height: int
    txs: List[Transaction]
    execution: BlockExecution
    timestamp: int


@dataclass
class ExecuteRecord:
    """What the execute stage observed for one block (for the stage-overlap
    property tests): the sealed base it read through and the in-flight
    heights overlaid on top — together they must cover exactly
    ``1..height-1``."""

    height: int
    base_height: int
    pending_heights: Tuple[int, ...]


class PipelinedValidator:
    """One full node driving the streaming block pipeline."""

    def __init__(
        self,
        name: str,
        statedb: StateDB,
        executor: Executor,
        threads: int = 8,
        pool: Optional[TransactionPool] = None,
        packer: Optional[Packer] = None,
        psag_cache: Optional[PSAGCache] = None,
        max_inflight: int = 2,
        ingest_rate: int = 0,
        obs=None,
        planner: Optional[LanePlanner] = None,
        emit_schedules: bool = False,
    ) -> None:
        if max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        self.name = name
        self.db = statedb
        self.executor = executor
        self.threads = threads
        self.pool = pool if pool is not None else TransactionPool(
            max_size=4096, nonce_tracking=True,
            base_nonce=lambda a: statedb.latest.nonce_of(a),
        )
        self.packer = packer if packer is not None else Packer(
            max_txs=256, order="fee",
        )
        self.psag_cache = psag_cache if psag_cache is not None else PSAGCache()
        self.max_inflight = max_inflight
        # Default ingest rate: enough to keep the packer fed with headroom.
        self.ingest_rate = ingest_rate or self.packer.max_txs * 2
        self.obs = obs
        if self.pool.obs is None:
            self.pool.obs = obs
        self.planner = planner
        self.emit_schedules = emit_schedules
        self.address = Address.derive(f"validator:{name}")
        self.chain: List[BlockHeader] = []
        self.blocks: List[Block] = []
        # Schedule artifacts sealed alongside produced blocks, by number.
        self.sidecars: Dict[int, BlockSidecar] = {}
        self.execute_log: List[ExecuteRecord] = []
        self.stages: Dict[str, StageStats] = {
            name: StageStats(name) for name in STAGES
        }
        self._lock = threading.Lock()
        self._pending: Dict[int, Dict[StateKey, int]] = {}
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(max_inflight, 1))
        self._worker: Optional[threading.Thread] = None
        self._worker_error: Optional[BaseException] = None
        self._execute_intervals: List[Tuple[float, float]] = []
        self._commit_intervals: List[Tuple[float, float]] = []
        self._backpressure = False
        self._report = PipelineReport(
            scheduler=executor.name, threads=threads,
            pipelined=max_inflight > 0, stages=self.stages,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the newest *sealed* block."""
        return self.db.height

    @property
    def pipelined(self) -> bool:
        return self.max_inflight > 0

    def run(
        self,
        source,
        blocks: int,
        on_block: Optional[Callable[[int, PendingView, List[Transaction], BlockExecution], None]] = None,
    ) -> PipelineReport:
        """Stream up to ``blocks`` blocks out of ``source``.

        ``on_block`` (if given) runs on the stream lane right after the
        execute stage, with the speculative view the block executed
        against still intact — the hook the serve loop uses for its online
        serializability oracle and root-parity twin.

        Stops early when the source is exhausted and the mempool can field
        no further draft.  Returns the :class:`PipelineReport`; the sealed
        :class:`Block` objects are in ``self.blocks`` for replay.
        """
        report = self._report
        started = time.perf_counter()
        if self.pipelined and self._worker is None:
            self._worker = threading.Thread(
                target=self._commit_lane, name=f"{self.name}-commit",
                daemon=True,
            )
            self._worker.start()
        produced = 0
        idle_cycles = 0
        next_height = self._speculative_height() + 1
        try:
            while produced < blocks:
                self._raise_worker_error()
                ingested = self._ingest(source)
                self._analyse()
                pooled = self._pack(next_height)
                if not pooled:
                    if ingested == 0:
                        idle_cycles += 1
                        # Stop when nothing can ever arrive (dry source /
                        # dry pool) or nothing drains despite arrivals —
                        # e.g. every pooled entry parked behind a nonce gap.
                        if (
                            getattr(source, "exhausted", False)
                            or len(self.pool) == 0
                            or idle_cycles >= 8
                        ):
                            break
                    continue
                idle_cycles = 0
                txs = [p.tx for p in pooled]
                execution, view = self._execute(txs, pooled, next_height)
                if on_block is not None:
                    on_block(next_height, view, txs, execution)
                self._submit(_SealJob(
                    height=next_height, txs=txs, execution=execution,
                    timestamp=next_height,
                ))
                produced += 1
                report.blocks += 1
                report.txs += len(txs)
                next_height += 1
        finally:
            self._drain()
            report.elapsed = time.perf_counter() - started
            report.pool = self.pool.stats
            report.overlap_seconds = _interval_overlap(
                self._execute_intervals, self._commit_intervals,
            )
        self._raise_worker_error()
        return report

    def close(self) -> None:
        """Stop the commit lane (idempotent); the StateDB stays open."""
        self._drain()

    # ------------------------------------------------------------------
    # Stream-lane stages
    # ------------------------------------------------------------------

    def _ingest(self, source) -> int:
        start = time.perf_counter()
        report = self._report
        pool = self.pool
        admitted = 0
        if self._backpressure:
            if pool.below_low:
                self._backpressure = False
                self._emit_backpressure(False)
            else:
                report.throttled_pulls += 1
                self.stages["ingest"].record(time.perf_counter() - start, 0)
                return 0
        # Never pull more than the pool has room for: backpressure exists
        # so admitted work is throttled upstream, not evicted downstream.
        room = max(pool.max_size - len(pool), 0)
        pulled = source.pull(min(self.ingest_rate, room))
        for tx in pulled:
            if pool.add(tx):
                admitted += 1
        if pool.above_high and not self._backpressure:
            self._backpressure = True
            report.backpressure_engagements += 1
            self._emit_backpressure(True)
        report.pool_peak = max(report.pool_peak, len(pool))
        latency = time.perf_counter() - start
        self.stages["ingest"].record(latency, admitted)
        self._emit_stage("ingest", latency, admitted)
        return len(pulled)

    def _analyse(self) -> int:
        start = time.perf_counter()
        base = self.db.latest  # newest sealed snapshot (thread-safe read)
        stale = None
        if self.planner is not None:
            # Learned hot keys: force re-analysis of pooled predictions that
            # read contention-prone state, so they track the newest seal.
            stale = {entry.key for entry in self.planner.profiles.hot_keys()}
        built = self.pool.analyse(self._builder(), base, stale_keys=stale)
        latency = time.perf_counter() - start
        self.stages["analyse"].record(latency, built)
        self._emit_stage("analyse", latency, built)
        return built

    def _pack(self, height: int):
        start = time.perf_counter()
        pooled = self.packer.pack(self.pool)
        self.pool.mark_included([p.tx for p in pooled])
        latency = time.perf_counter() - start
        self.stages["pack"].record(latency, len(pooled))
        self._emit_stage("pack", latency, len(pooled), block=height)
        return pooled

    def _execute(self, txs, pooled, height: int):
        start = time.perf_counter()
        view = self._speculative_view()
        self.execute_log.append(ExecuteRecord(
            height=height,
            base_height=view.base.height,
            pending_heights=tuple(sorted(
                h for h in self._pending_heights() if h > view.base.height
            )),
        ))
        builder = self._builder()
        csags = [
            p.csag if p.csag is not None else builder.build(p.tx, view)
            for p in pooled
        ]
        report = self._report
        if self.planner is not None and len(txs) > 1:
            plan = self.planner.plan(txs, csags, view, builder)
            # In-place so the caller's list (travels into the sealed block
            # and the on_block hook) sees the planned order too.
            txs[:] = plan.apply(txs)
            csags = plan.apply(csags)
            report.planner_repairs += plan.repairs
            report.planner_reorders += int(plan.moved)
        kwargs = {}
        if self.executor.name.startswith(("dag", "dmvcc")):
            kwargs["csags"] = csags
        from ..chain.validator import _abort_capture, _trace_capture
        with _trace_capture(self.executor, enabled=self.emit_schedules) as capture:
            with _abort_capture(self.executor,
                                enabled=self.planner is not None) as aborts:
                execution = self.executor.execute_block(
                    txs,
                    view,
                    self.db.codes.code_of,
                    threads=self.threads,
                    block=BlockContext(number=height, timestamp=height),
                    **kwargs,
                )
        if self.emit_schedules:
            execution.schedule = Schedule.from_trace(
                capture.trace(), len(txs), block_number=height,
                producer=self.executor.name,
            )
        if self.planner is not None:
            self.planner.observe(aborts.attribution(), height)
        end = time.perf_counter()
        metrics = execution.metrics
        report.aborts += metrics.aborts
        report.executions += metrics.executions
        report.deterministic_failures += metrics.deterministic_failures
        report.total_gas += metrics.total_gas
        self._execute_intervals.append((start, end))
        latency = end - start
        self.stages["execute"].record(latency, len(txs))
        self._emit_stage("execute", latency, len(txs), block=height)
        return execution, view

    def _submit(self, job: _SealJob) -> None:
        with self._lock:
            self._pending[job.height] = job.execution.writes
        if not self.pipelined:
            self._seal(job)
            return
        if self._queue.full():
            report = self._report
            report.queue_stalls += 1
            stall_start = time.perf_counter()
            self._queue.put(job)
            report.stall_time += time.perf_counter() - stall_start
        else:
            self._queue.put(job)

    # ------------------------------------------------------------------
    # Commit lane (seal + persist)
    # ------------------------------------------------------------------

    def _commit_lane(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            try:
                self._seal(job)
            except BaseException as error:  # surfaced on the stream lane
                self._worker_error = error
                return

    def _seal(self, job: _SealJob) -> None:
        start = time.perf_counter()
        snapshot = self.db.commit(job.execution.writes)
        end = time.perf_counter()
        commit = self.db.last_commit
        metrics = job.execution.metrics
        persist_latency = 0.0
        if commit is not None:
            metrics.commit_time = commit.wall_time
            metrics.commit_hashes = commit.hashes_computed
            metrics.commit_nodes_sealed = commit.nodes_sealed
            if commit.durable:
                persist_latency = commit.fsync_time
                metrics.db_bytes_appended = commit.bytes_appended
                metrics.db_fsync_time = commit.fsync_time
                metrics.db_cache_hits = commit.db_cache_hits
                metrics.db_cache_misses = commit.db_cache_misses
                metrics.db_pruned_nodes = commit.pruned_nodes
        seal_latency = (end - start) - persist_latency
        block = make_block(
            number=snapshot.height,
            parent_hash=self.chain[-1].block_hash if self.chain else GENESIS_PARENT,
            state_root=snapshot.root_hash,
            txs=job.txs,
            timestamp=job.timestamp,
            miner=self.address,
            gas_used=metrics.total_gas,
        )
        with self._lock:
            self.chain.append(block.header)
            self.blocks.append(block)
            if job.execution.schedule is not None:
                self.sidecars[block.number] = BlockSidecar(
                    block.header.block_hash, job.execution.schedule)
            self._pending.pop(job.height, None)
        self._commit_intervals.append((start, end))
        self.stages["seal"].record(seal_latency, len(job.execution.writes))
        self.stages["persist"].record(
            persist_latency,
            commit.bytes_appended if commit is not None and commit.durable else 0,
        )
        self._emit_stage("seal", seal_latency, len(job.execution.writes),
                         block=job.height)
        self._emit_stage("persist", persist_latency,
                         commit.bytes_appended
                         if commit is not None and commit.durable else 0,
                         block=job.height)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _builder(self) -> CSAGBuilder:
        return CSAGBuilder(self.db.codes.code_of, self.psag_cache)

    def _pending_heights(self) -> List[int]:
        with self._lock:
            return list(self._pending)

    def _speculative_height(self) -> int:
        heights = self._pending_heights()
        return max([self.db.height] + heights)

    def _speculative_view(self) -> PendingView:
        """Compose the read view for the next execute: pending batches are
        captured first, the sealed base second — a batch whose seal lands
        in between is then covered by *both*, which is safe because the
        overlay re-asserts exactly the values the base already contains."""
        with self._lock:
            pending = sorted(self._pending.items())
        base = self.db.latest
        return PendingView(base, pending)

    def _drain(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            self._queue.put(_STOP)
            self._worker.join()
        self._worker = None

    def _raise_worker_error(self) -> None:
        if self._worker_error is not None:
            error = self._worker_error
            self._worker_error = None
            raise error

    def _emit_stage(self, stage: str, latency: float, items: int,
                    block: int = -1) -> None:
        if self.obs is not None:
            with self._lock:
                self.obs.stage_completed(
                    0.0, stage=stage, block=block,
                    latency=latency, items=items,
                )

    def _emit_backpressure(self, engaged: bool) -> None:
        if self.obs is not None:
            with self._lock:
                self.obs.backpressure_changed(
                    0.0, engaged=engaged, pool_size=len(self.pool),
                    capacity=self.pool.max_size,
                )


def _interval_overlap(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]],
) -> float:
    """Total overlap between two interval lists (each internally sorted by
    construction: both lanes append in time order)."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            total += end - start
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total
