"""Abstract interpretation of EVM bytecode over symbolic expressions.

One forward pass over the CFG (reverse post-order, states merged at joins)
computes, for every SLOAD/SSTORE/BALANCE site:

* a **symbolic key expression** — the paper's state-access dependency
  ``D_I(V, E)``: slots expressed over calldata, msg.sender, snapshot values
  (``sload(...)``), hashes, and arithmetic; and
* **commutative-increment sites** — SSTOREs of the shape
  ``store(k, load(k) + delta)`` where the loaded value has no other use,
  the paper's §IV-D "incrementing without reading the original value".

The interpreter is deliberately *sound-by-degradation*: anything it cannot
model precisely becomes ``Unknown``, which downstream consumers treat as
"resolve at refinement time or fall back to the abort protocol".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.words import WORD_BYTES
from ..evm.opcodes import Op
from .cfg import CFG, BasicBlock, build_cfg
from .symexpr import (
    BinOp,
    BlockNumber,
    Calldata,
    Caller,
    CallValue,
    Const,
    SLoadVal,
    Sha3,
    SymExpr,
    Timestamp,
    Unknown,
    make_binop,
)


@dataclass(frozen=True)
class AccessSite:
    """One static storage-access site in the bytecode."""

    pc: int
    kind: str  # "read" | "write" | "balance_read"
    key: SymExpr
    value: Optional[SymExpr] = None  # for writes


@dataclass
class ContractAnalysis:
    """Result of the abstract-interpretation pass for one code blob."""

    cfg: CFG
    access_sites: Dict[int, AccessSite] = field(default_factory=dict)
    increment_sites: Dict[int, int] = field(default_factory=dict)  # sstore pc -> sload pc
    branch_conditions: Dict[int, SymExpr] = field(default_factory=dict)  # jumpi pc -> cond

    def read_sites(self) -> List[AccessSite]:
        return [s for s in self.access_sites.values() if s.kind != "write"]

    def write_sites(self) -> List[AccessSite]:
        return [s for s in self.access_sites.values() if s.kind == "write"]


@dataclass
class _AbsState:
    """Symbolic machine state at a block boundary."""

    stack: List[SymExpr] = field(default_factory=list)
    memory: Dict[int, SymExpr] = field(default_factory=dict)
    underflowed: bool = False  # popped past the known stack

    def copy(self) -> "_AbsState":
        return _AbsState(list(self.stack), dict(self.memory), self.underflowed)


def _merge(a: _AbsState, b: _AbsState, fresh) -> _AbsState:
    """Join two predecessor states; disagreements degrade to Unknown."""
    if len(a.stack) != len(b.stack):
        return _AbsState([], {}, underflowed=True)
    stack = [
        x if x == y else fresh()
        for x, y in zip(a.stack, b.stack)
    ]
    memory = {
        off: expr
        for off, expr in a.memory.items()
        if b.memory.get(off) == expr
    }
    return _AbsState(stack, memory, a.underflowed or b.underflowed)


class _BlockInterpreter:
    """Executes one basic block symbolically."""

    def __init__(self, analysis: ContractAnalysis, fresh) -> None:
        self.analysis = analysis
        self._fresh = fresh

    def run(self, block: BasicBlock, state: _AbsState) -> _AbsState:
        st = state.copy()

        def pop() -> SymExpr:
            if st.stack:
                return st.stack.pop()
            st.underflowed = True
            return self._fresh()

        def push(expr: SymExpr) -> None:
            st.stack.append(expr)

        for instr in block.instructions:
            op = instr.op
            if Op.PUSH1 <= op <= Op.PUSH32:
                push(Const(instr.operand or 0))
            elif Op.DUP1 <= op <= Op.DUP16:
                depth = int(op) - int(Op.DUP1) + 1
                if len(st.stack) >= depth:
                    push(st.stack[-depth])
                else:
                    st.underflowed = True
                    push(self._fresh())
            elif Op.SWAP1 <= op <= Op.SWAP16:
                depth = int(op) - int(Op.SWAP1) + 1
                if len(st.stack) > depth:
                    st.stack[-1], st.stack[-1 - depth] = st.stack[-1 - depth], st.stack[-1]
                else:
                    st.underflowed = True
                    st.stack = []
            elif op is Op.POP:
                pop()
            elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.EXP,
                        Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
                        Op.LT, Op.GT, Op.EQ):
                a, b = pop(), pop()
                push(make_binop(_BINOP_NAME[op], a, b))
            elif op in (Op.SDIV, Op.SMOD, Op.SLT, Op.SGT, Op.SAR, Op.BYTE,
                        Op.ADDMOD, Op.MULMOD):
                pops = 3 if op in (Op.ADDMOD, Op.MULMOD) else 2
                for _ in range(pops):
                    pop()
                push(self._fresh())
            elif op is Op.ISZERO:
                push(make_binop("eq", pop(), Const(0)))
            elif op is Op.NOT:
                pop()
                push(self._fresh())
            elif op is Op.SHA3:
                offset, length = pop(), pop()
                push(self._sha3(st, offset, length))
            elif op is Op.CALLDATALOAD:
                offset = pop()
                push(Calldata(offset.value) if isinstance(offset, Const) else self._fresh())
            elif op is Op.CALLER or op is Op.ORIGIN:
                push(Caller())
            elif op is Op.CALLVALUE:
                push(CallValue())
            elif op is Op.NUMBER:
                push(BlockNumber())
            elif op is Op.TIMESTAMP:
                push(Timestamp())
            elif op is Op.PC:
                push(Const(instr.pc))
            elif op in (Op.ADDRESS, Op.CALLDATASIZE, Op.MSIZE, Op.GAS, Op.SELFBALANCE):
                push(self._fresh())
            elif op is Op.MLOAD:
                offset = pop()
                if isinstance(offset, Const) and offset.value in st.memory:
                    push(st.memory[offset.value])
                else:
                    push(self._fresh())
            elif op is Op.MSTORE:
                offset, value = pop(), pop()
                if isinstance(offset, Const):
                    st.memory[offset.value] = value
                else:
                    st.memory.clear()
            elif op is Op.MSTORE8:
                pop(), pop()
                st.memory.clear()
            elif op is Op.CALLDATACOPY:
                pop(), pop(), pop()
                st.memory.clear()
            elif op is Op.SLOAD:
                key = pop()
                value = SLoadVal(key, instr.pc)
                self.analysis.access_sites[instr.pc] = AccessSite(instr.pc, "read", key)
                push(value)
            elif op is Op.SSTORE:
                key, value = pop(), pop()
                self.analysis.access_sites[instr.pc] = AccessSite(
                    instr.pc, "write", key, value
                )
            elif op is Op.BALANCE:
                addr = pop()
                self.analysis.access_sites[instr.pc] = AccessSite(
                    instr.pc, "balance_read", addr
                )
                push(self._fresh())
            elif Op.LOG0 <= op <= Op.LOG3:
                for _ in range(2 + int(op) - int(Op.LOG0)):
                    pop()
            elif op is Op.CALL:
                for _ in range(7):
                    pop()
                st.memory.clear()
                push(self._fresh())
            elif op is Op.JUMP:
                pop()
            elif op is Op.JUMPI:
                pop()  # destination
                cond = pop()
                self.analysis.branch_conditions[instr.pc] = cond
            elif op in (Op.STOP, Op.JUMPDEST, Op.INVALID):
                pass
            elif op in (Op.RETURN, Op.REVERT):
                pop(), pop()
            else:
                # Unmodelled opcode: degrade its results to Unknown.
                push(self._fresh())
        return st

    def _sha3(self, st: _AbsState, offset: SymExpr, length: SymExpr) -> SymExpr:
        if not (isinstance(offset, Const) and isinstance(length, Const)):
            return self._fresh()
        if length.value % WORD_BYTES != 0 or length.value == 0 or length.value > 4 * WORD_BYTES:
            return self._fresh()
        parts = []
        for word_off in range(offset.value, offset.value + length.value, WORD_BYTES):
            part = st.memory.get(word_off)
            if part is None:
                return self._fresh()
            parts.append(part)
        from .symexpr import simplify

        return simplify(Sha3(tuple(parts)))


_BINOP_NAME = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.DIV: "/", Op.MOD: "%",
    Op.EXP: "exp", Op.AND: "and", Op.OR: "or", Op.XOR: "xor",
    Op.SHL: "shl", Op.SHR: "shr", Op.LT: "lt", Op.GT: "gt", Op.EQ: "eq",
}


def analyze_contract(code: bytes, cfg: Optional[CFG] = None) -> ContractAnalysis:
    """Run the abstract interpreter over a whole contract."""
    if cfg is None:
        cfg = build_cfg(code)
    analysis = ContractAnalysis(cfg=cfg)
    counter = [0]

    def fresh() -> Unknown:
        counter[0] += 1
        return Unknown(counter[0])

    interpreter = _BlockInterpreter(analysis, fresh)

    order = _reverse_post_order(cfg)
    out_states: Dict[int, _AbsState] = {}
    in_states: Dict[int, _AbsState] = {}
    for start in order:
        block = cfg.blocks[start]
        preds = [p for p in block.predecessors if p in out_states]
        if start == cfg.entry or not preds:
            state = _AbsState()
        else:
            state = out_states[preds[0]]
            for pred in preds[1:]:
                state = _merge(state, out_states[pred], fresh)
            if len(preds) < len(block.predecessors):
                # A back edge: loop-carried values are unknowable in one
                # forward pass.  Degrade every value to the "–" placeholder
                # (keeping the stack shape) — the paper's unresolved loop
                # accesses, to be filled in during C-SAG refinement.
                state = _AbsState(
                    stack=[fresh() for _ in state.stack],
                    memory={},
                    underflowed=state.underflowed,
                )
        in_states[start] = state
        out_states[start] = interpreter.run(block, state)

    _detect_increments(analysis)
    return analysis


def _reverse_post_order(cfg: CFG) -> List[int]:
    visited = set()
    order: List[int] = []

    def dfs(start: int) -> None:
        stack = [(start, iter(cfg.blocks[start].successors))]
        visited.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(cfg.blocks[succ].successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    if cfg.entry in cfg.blocks:
        dfs(cfg.entry)
    for start in sorted(cfg.blocks):
        if start not in visited:
            dfs(start)
    return list(reversed(order))


def _count_sload_uses(expr: SymExpr, site: int) -> int:
    """Occurrences of ``SLoadVal(site=site)`` inside ``expr``."""
    if isinstance(expr, SLoadVal):
        inner = _count_sload_uses(expr.key, site)
        return (1 if expr.site == site else 0) + inner
    if isinstance(expr, BinOp):
        return _count_sload_uses(expr.left, site) + _count_sload_uses(expr.right, site)
    if isinstance(expr, Sha3):
        return sum(_count_sload_uses(p, site) for p in expr.parts)
    return 0


def _detect_increments(analysis: ContractAnalysis) -> None:
    """Mark SSTORE sites of the form ``store(k, load(k) + delta)`` where the
    load's value escapes nowhere else (branch conditions, other writes,
    other keys).  Such writes commute with each other (paper §IV-D)."""
    # Total use count of each sload site across every expression we recorded.
    all_exprs: List[SymExpr] = []
    for site in analysis.access_sites.values():
        all_exprs.append(site.key)
        if site.value is not None:
            all_exprs.append(site.value)
    all_exprs.extend(analysis.branch_conditions.values())

    for site in analysis.access_sites.values():
        if site.kind != "write" or site.value is None:
            continue
        candidate = _match_increment(site.key, site.value)
        if candidate is None:
            continue
        sload_site = candidate
        total_uses = sum(_count_sload_uses(expr, sload_site) for expr in all_exprs)
        if total_uses == 1:  # exactly the use inside this increment
            analysis.increment_sites[site.pc] = sload_site


def _match_increment(key: SymExpr, value: SymExpr) -> Optional[int]:
    """If ``value`` is ``load(key) + delta`` (either operand order) with the
    delta independent of the load, return the load's site pc."""
    if not isinstance(value, BinOp) or value.op != "+":
        return None
    for load, delta in ((value.left, value.right), (value.right, value.left)):
        if (
            isinstance(load, SLoadVal)
            and load.key == key
            and _count_sload_uses(delta, load.site) == 0
        ):
            return load.site
    return None
