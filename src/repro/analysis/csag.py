"""C-SAG: refinement of a P-SAG with concrete transaction data.

The paper refines a P-SAG into a *complete* SAG by evaluating the state
access dependencies with (a) the transaction's inputs and (b) values read
from the latest committed snapshot ``S^{l-1}``, unrolling loops in the
process.  We implement refinement as *snapshot pre-execution*: the forward
slice evaluated with every input concrete is exactly an execution of the
contract against the snapshot, so we run the real VM against ``S^{l-1}``
and record the access trace, gas offsets, release-point crossings, and
commutative-increment matches.

The result can be stale — if an earlier transaction in the block overwrites
a snapshot value the refinement used, the predicted keys/branches may be
wrong.  That is expected: DMVCC's abort protocol (Algorithm 4) repairs it,
and the experiments measure how rarely that happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.types import Address, StateKey
from ..core.words import to_word
from ..evm.driver import drive
from ..evm.environment import BlockContext, HaltReason, Message
from ..evm.opcodes import intrinsic_gas
from ..evm.vm import EVM
from ..state.journal import WriteJournal
from .sag import PSAG, PSAGCache


class AccessType(Enum):
    """Per-key access classification (the paper's α symbols)."""

    READ = "ρ"
    WRITE = "ω"
    READ_WRITE = "θ"
    COMMUTATIVE = "ω̄"  # blind increment; commutes with other increments


@dataclass(frozen=True)
class PredictedAccess:
    """One access in the refined (concrete) trace."""

    kind: str  # "read" | "write"
    key: StateKey
    gas_offset: int
    value: int
    commutative: bool = False
    delta: int = 0  # commutative writes: the increment amount


@dataclass(frozen=True)
class ReleaseOffset:
    """A release point crossing observed during refinement."""

    pc: int
    gas_offset: int
    remaining_gas_bound: int  # concrete estimate for the rest of the run


@dataclass
class CSAG:
    """Complete state access graph for one transaction.

    ``accesses`` is the predicted, ordered trace; ``per_key`` classifies
    each touched key with the paper's ρ/ω/θ/ω̄ symbols.  ``speculative`` is
    False only for synthetic C-SAGs (plain Ether transfers) whose accesses
    are exact by construction.
    """

    accesses: List[PredictedAccess] = field(default_factory=list)
    release_offsets: List[ReleaseOffset] = field(default_factory=list)
    predicted_gas: int = 0
    predicted_success: bool = True
    snapshot_height: int = 0
    speculative: bool = True
    missing: bool = False  # True: no analysis available (pure OCC fallback)
    # Symbolically-resolved *potential* accesses of the dispatched function
    # (all branches, not just the pre-executed path).  A superset hint used
    # by conservative schedulers (the DAG baseline); may still be incomplete
    # when keys are unresolvable ("–").
    static_read_keys: Set[StateKey] = field(default_factory=set)
    static_write_keys: Set[StateKey] = field(default_factory=set)
    # Variable-granularity conflict units, as a coarse static analysis
    # (Slither-style, the prior work's granularity) would produce them:
    # a whole mapping/array is one unit.  Used by the DAG baseline.
    coarse_read_units: Set[object] = field(default_factory=set)
    coarse_write_units: Set[object] = field(default_factory=set)

    _per_key: Optional[Dict[StateKey, AccessType]] = None

    @property
    def per_key(self) -> Dict[StateKey, AccessType]:
        if self._per_key is None:
            self._per_key = _classify(self.accesses)
        return self._per_key

    @property
    def read_keys(self) -> Set[StateKey]:
        return {
            k for k, t in self.per_key.items()
            if t in (AccessType.READ, AccessType.READ_WRITE)
        }

    @property
    def write_keys(self) -> Set[StateKey]:
        return {
            k for k, t in self.per_key.items()
            if t in (AccessType.WRITE, AccessType.READ_WRITE, AccessType.COMMUTATIVE)
        }

    def keys(self) -> Set[StateKey]:
        return set(self.per_key)

    def first_release_offset(self) -> Optional[int]:
        if not self.release_offsets:
            return None
        return self.release_offsets[0].gas_offset


def _classify(accesses: List[PredictedAccess]) -> Dict[StateKey, AccessType]:
    per_key: Dict[StateKey, AccessType] = {}
    commutative_ok: Dict[StateKey, bool] = {}
    reads: Dict[StateKey, bool] = {}
    writes: Dict[StateKey, bool] = {}
    for access in accesses:
        key = access.key
        if access.kind == "read":
            if not access.commutative:
                reads[key] = True
        else:
            writes[key] = True
            commutative_ok.setdefault(key, True)
            if not access.commutative:
                commutative_ok[key] = False
    for key in set(reads) | set(writes):
        has_read = reads.get(key, False)
        has_write = writes.get(key, False)
        if has_write and commutative_ok.get(key, False) and not has_read:
            per_key[key] = AccessType.COMMUTATIVE
        elif has_read and has_write:
            per_key[key] = AccessType.READ_WRITE
        elif has_write:
            per_key[key] = AccessType.WRITE
        else:
            per_key[key] = AccessType.READ
    return per_key


class CSAGCache:
    """Content-addressed LRU cache of contract-call C-SAGs.

    Refinement (snapshot pre-execution) is deterministic in its inputs, so
    the result can be reused whenever the same (code, transaction shape,
    snapshot, block context) recurs — the common case on hot contracts
    where many near-identical transactions target the same code.  The key
    includes the snapshot's Merkle root: any committed state change
    invalidates every dependent entry for free.

    Plain transfers are never cached (their synthetic C-SAG is cheaper to
    build than to look up).  ``CSAG`` objects are immutable during block
    execution, so sharing one instance across transactions is safe.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._entries: "Dict[tuple, CSAG]" = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(tx, snapshot, block: BlockContext, code: bytes) -> tuple:
        from ..core.hashing import keccak

        return (
            keccak(code),
            tx.sender,
            tx.to,
            tx.value,
            tx.data,
            tx.gas_limit,
            snapshot.height,
            snapshot.root_hash,
            block.number,
            block.timestamp,
        )

    def get(self, key: tuple) -> Optional[CSAG]:
        csag = self._entries.get(key)
        if csag is None:
            self.misses += 1
            return None
        # LRU touch: re-insert to move the key to the recent end.
        self._entries.pop(key)
        self._entries[key] = csag
        self.hits += 1
        return csag

    def put(self, key: tuple, csag: CSAG) -> None:
        self._entries.pop(key, None)
        self._entries[key] = csag
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CSAGBuilder:
    """Builds C-SAGs for transactions against a given snapshot.

    One builder per (validator, block) pairing; it shares a process-wide
    :class:`PSAGCache` so static analysis runs once per contract, and
    optionally a :class:`CSAGCache` so refinement itself is skipped for
    repeated (code, calldata, snapshot) combinations.
    """

    def __init__(
        self,
        code_resolver: Callable,
        psag_cache: Optional[PSAGCache] = None,
        block: Optional[BlockContext] = None,
        csag_cache: Optional[CSAGCache] = None,
    ) -> None:
        self._resolve_code = code_resolver
        self._cache = psag_cache if psag_cache is not None else PSAGCache()
        self._block = block if block is not None else BlockContext()
        self._csag_cache = csag_cache

    def psag_for(self, code: bytes) -> PSAG:
        return self._cache.get(code)

    # ------------------------------------------------------------------
    # Contract-call refinement
    # ------------------------------------------------------------------

    def build(self, tx, snapshot) -> CSAG:
        """Refine the P-SAG of ``tx``'s target into a C-SAG using
        ``snapshot`` (the latest committed state) for every unresolved
        dependency.  Works for both contract calls and plain transfers."""
        code = self._resolve_code(tx.to)
        if not code:
            return self.build_transfer(tx, snapshot)
        if self._csag_cache is not None:
            key = CSAGCache.key_for(tx, snapshot, self._block, code)
            cached = self._csag_cache.get(key)
            if cached is not None:
                return cached
            csag = self._build_contract_call(tx, snapshot, code)
            self._csag_cache.put(key, csag)
            return csag
        return self._build_contract_call(tx, snapshot, code)

    def build_transfer(self, tx, snapshot) -> CSAG:
        """Synthetic exact C-SAG for a plain Ether transfer.

        The read/write set of a transfer is fully determined by the
        transaction itself (paper §V-B: "it is trivial to infer"): debit of
        the sender (a read-write: the balance check reads it) and credit of
        the recipient (a blind commutative increment).
        """
        base = intrinsic_gas(tx.data)
        sender_key = StateKey.balance(tx.sender)
        to_key = StateKey.balance(tx.to)
        sender_balance = snapshot.get(sender_key)
        accesses = [
            PredictedAccess("read", sender_key, 0, sender_balance),
        ]
        ok = sender_balance >= tx.value
        if ok:
            accesses.append(
                PredictedAccess("write", sender_key, base, sender_balance - tx.value)
            )
            accesses.append(
                PredictedAccess(
                    "write", to_key, base,
                    snapshot.get(to_key) + tx.value,
                    commutative=True, delta=tx.value,
                )
            )
        return CSAG(
            accesses=accesses,
            release_offsets=[ReleaseOffset(pc=0, gas_offset=0, remaining_gas_bound=base)],
            predicted_gas=base,
            predicted_success=ok,
            snapshot_height=snapshot.height,
            speculative=False,
            coarse_read_units={sender_key},
            coarse_write_units={sender_key, to_key} if ok else set(),
        )

    def _build_contract_call(self, tx, snapshot, code: bytes) -> CSAG:
        psag = self._cache.get(code)
        release_pcs = frozenset(psag.release_pcs())
        evm = EVM(
            self._resolve_code,
            block=self._block,
            watchpoints={tx.to: release_pcs},
        )
        journal = WriteJournal(snapshot.get)
        releases: List[Tuple[int, int]] = []

        def on_watchpoint(event) -> None:
            releases.append((event.pc, event.gas_used))

        base = intrinsic_gas(tx.data)
        message = Message(
            sender=tx.sender,
            to=tx.to,
            value=tx.value,
            data=tx.data,
            gas=max(tx.gas_limit - base, 0),
        )

        accesses: List[PredictedAccess] = []
        sender_key = StateKey.balance(tx.sender)
        sender_balance = snapshot.get(sender_key)
        funded = sender_balance >= tx.value
        if tx.value > 0:
            accesses.append(PredictedAccess("read", sender_key, 0, sender_balance))

        outcome = None
        if funded:
            if tx.value > 0:
                # The transfer into the contract happens before execution.
                journal.write(sender_key, sender_balance - tx.value)
                contract_key = StateKey.balance(tx.to)
                journal.write(contract_key, snapshot.get(contract_key) + tx.value)
            outcome = drive(
                evm, message, journal,
                on_watchpoint=on_watchpoint, collect_trace=True,
            )

        total_gas = base + (outcome.result.gas_used if outcome is not None else 0)
        if tx.value > 0 and funded and outcome is not None and outcome.result.success:
            accesses.append(
                PredictedAccess("write", sender_key, base, sender_balance - tx.value)
            )
            contract_key = StateKey.balance(tx.to)
            accesses.append(
                PredictedAccess(
                    "write", contract_key, base,
                    snapshot.get(contract_key) + tx.value,
                    commutative=True, delta=tx.value,
                )
            )

        if outcome is not None:
            if outcome.result.success:
                accesses.extend(_trace_to_accesses(outcome.trace, base, psag))
            else:
                # A predicted-fail execution still *read* along the way; the
                # reads matter for scheduling (the branch may flip once
                # earlier transactions commit).  Writes are dropped: they
                # would roll back on this path.
                accesses.extend(
                    PredictedAccess("read", r.key, base + r.gas_used, r.value)
                    for r in outcome.trace
                    if r.kind == "read"
                )

        static_reads, static_writes = _static_key_sets(tx, snapshot, psag, self._block)

        selector = int.from_bytes(tx.data[:4], "big") if len(tx.data) >= 4 else 0
        coarse_reads: set = set()
        coarse_writes: set = set()
        for site in psag.sites_for_selector(selector):
            if site.kind == "balance_read":
                coarse_reads.add(("balance", "*"))
                continue
            unit = coarse_unit(tx.to, site.key)
            if site.kind == "write":
                coarse_writes.add(unit)
            else:
                coarse_reads.add(unit)
        if tx.value > 0:
            coarse_reads.add(StateKey.balance(tx.sender))
            coarse_writes.add(StateKey.balance(tx.sender))
            coarse_writes.add(StateKey.balance(tx.to))

        # Message calls cross contract boundaries the target's static
        # analysis cannot see.  For every foreign contract the pre-execution
        # actually reached, over-approximate with *all* of its access sites
        # (any function — the dispatched callee selector is dynamic): a
        # coarse analysis that missed these would make DAG-style scheduling
        # unsound on cross-contract bundles, not merely imprecise.
        if outcome is not None:
            foreign = {
                entry.key.address
                for entry in outcome.trace
                if entry.key.address != tx.to
            }
            for address in sorted(foreign):
                foreign_code = self._resolve_code(address)
                if not foreign_code:
                    # Plain account: its concrete (balance) keys are the
                    # finest — and only — units available.
                    for entry in outcome.trace:
                        if entry.key.address != address:
                            continue
                        if entry.kind == "write":
                            coarse_writes.add(entry.key)
                        else:
                            coarse_reads.add(entry.key)
                    continue
                foreign_psag = self._cache.get(foreign_code)
                for site in foreign_psag.analysis.access_sites.values():
                    if site.kind == "balance_read":
                        coarse_reads.add(("balance", "*"))
                        continue
                    unit = coarse_unit(address, site.key)
                    if site.kind == "write":
                        coarse_writes.add(unit)
                    else:
                        coarse_reads.add(unit)

        release_offsets = [
            ReleaseOffset(pc, base + gas, max(total_gas - (base + gas), 0))
            for pc, gas in releases
        ]
        return CSAG(
            accesses=accesses,
            release_offsets=sorted(release_offsets, key=lambda r: r.gas_offset),
            predicted_gas=total_gas,
            predicted_success=funded and outcome is not None and outcome.result.success,
            snapshot_height=snapshot.height,
            speculative=True,
            static_read_keys=static_reads,
            static_write_keys=static_writes,
            coarse_read_units=coarse_reads,
            coarse_write_units=coarse_writes,
        )

    def build_missing(self, tx, snapshot) -> CSAG:
        """C-SAG stand-in for a transaction whose analysis is unavailable
        (paper §III-A: a validator may receive a block containing
        transactions it never saw).  Executed OCC-style: no predictions, no
        early visibility, validation-by-abort only."""
        return CSAG(
            accesses=[],
            release_offsets=[],
            predicted_gas=tx.gas_limit,
            predicted_success=True,
            snapshot_height=snapshot.height,
            speculative=True,
            missing=True,
        )


def coarse_unit(address, key_expr) -> object:
    """Variable-granularity conflict unit of a storage-access site.

    A coarse static analysis cannot resolve *which* mapping entry a
    transaction touches, only *which storage variable*: scalars map to
    their slot, mapping/array accesses map to the declaration's base slot,
    and anything unresolvable degrades to the whole contract.
    """
    from .symexpr import BinOp, Const, Sha3

    expr = key_expr
    # Array element: keccak(base) + i — unwrap the addition first.
    while isinstance(expr, BinOp) and expr.op == "+":
        if isinstance(expr.left, (Sha3, Const)):
            expr = expr.left
        elif isinstance(expr.right, (Sha3, Const)):
            expr = expr.right
        else:
            return (address, "*")
    # Mapping chains: keccak(key, base) with base possibly another keccak.
    while isinstance(expr, Sha3) and expr.parts:
        expr = expr.parts[-1]
    if isinstance(expr, Const):
        return (address, expr.value)
    return (address, "*")


def _static_key_sets(tx, snapshot, psag: PSAG, block: BlockContext):
    """Resolve the dispatched function's access-site keys symbolically.

    This is the paper's P-SAG→C-SAG key resolution proper: each site's key
    expression is evaluated with the transaction inputs and snapshot values,
    covering *all branches* of the function.  Sites whose keys stay
    unresolved ("–") are skipped — the abort protocol is the backstop.
    """
    from .symexpr import TxEnvironment, Unresolvable, evaluate

    env = TxEnvironment(
        calldata=tx.data,
        caller=tx.sender.to_word(),
        call_value=tx.value,
        block_number=block.number,
        timestamp=block.timestamp,
    )

    def storage_reader(key_expr) -> int:
        slot = evaluate(key_expr, env, storage_reader)
        return snapshot.get(StateKey(tx.to, slot))

    reads: Set[StateKey] = set()
    writes: Set[StateKey] = set()
    sites = psag.sites_for_selector(
        int.from_bytes(tx.data[:4], "big") if len(tx.data) >= 4 else 0
    )
    for site in sites:
        try:
            resolved = evaluate(site.key, env, storage_reader)
        except Unresolvable:
            continue
        if site.kind == "balance_read":
            key = StateKey.balance(Address(resolved & ((1 << 160) - 1)))
            reads.add(key)
            continue
        key = StateKey(tx.to, resolved)
        if site.kind == "write":
            writes.add(key)
        else:
            reads.add(key)
    return reads, writes


def _trace_to_accesses(trace, base_gas: int, psag: PSAG) -> List[PredictedAccess]:
    """Convert a driver trace into predicted accesses, folding increment
    pairs into commutative writes.

    A key's accesses are commutative iff they consist solely of
    (read, write) pairs in which each write is a static increment site and
    the read feeding it observes the previous value — i.e. the transaction
    never *uses* the key's value other than to add to it.
    """
    by_key: Dict[StateKey, List[int]] = {}
    for i, record in enumerate(trace):
        by_key.setdefault(record.key, []).append(i)

    increment_sites = psag.analysis.increment_sites
    # Map trace index -> (commutative_read, commutative_write, delta)
    commutative_indices: Dict[int, int] = {}  # index -> delta (writes only)
    commutative_reads: Set[int] = set()

    for key, indices in by_key.items():
        records = [trace[i] for i in indices]
        if len(records) < 2 or len(records) % 2 != 0:
            continue
        ok = True
        deltas: List[int] = []
        for j in range(0, len(records), 2):
            first, second = records[j], records[j + 1]
            if first.kind != "read" or second.kind != "write":
                ok = False
                break
            deltas.append(to_word(second.value - first.value))
        if not ok:
            continue
        # All pairs must chain (each read sees the previous write) — true by
        # construction within one transaction's journal.
        # Static confirmation that every write is a blind increment site
        # whose paired read is exactly the SLOAD feeding the increment:
        if not _writes_are_increments(records, increment_sites):
            continue
        for offset, j in enumerate(indices):
            if offset % 2 == 0:
                commutative_reads.add(j)
            else:
                commutative_indices[j] = deltas[offset // 2]

    accesses: List[PredictedAccess] = []
    for i, record in enumerate(trace):
        if i in commutative_indices:
            accesses.append(
                PredictedAccess(
                    "write", record.key, base_gas + record.gas_used, record.value,
                    commutative=True, delta=commutative_indices[i],
                )
            )
        elif i in commutative_reads:
            accesses.append(
                PredictedAccess(
                    "read", record.key, base_gas + record.gas_used, record.value,
                    commutative=True,
                )
            )
        else:
            accesses.append(
                PredictedAccess(
                    record.kind, record.key, base_gas + record.gas_used, record.value
                )
            )
    return accesses


def _writes_are_increments(records, increment_sites) -> bool:
    """Every (read, write) pair must hit a static increment site: the write
    pc is a detected ``store(k, load(k) + delta)`` and the paired read pc is
    exactly the SLOAD feeding that increment.  This rules out patterns like
    ``if (flag == 0) flag = 1`` whose read participates in a branch."""
    for j in range(0, len(records), 2):
        read, write = records[j], records[j + 1]
        expected_read_pc = increment_sites.get(write.pc)
        if expected_read_pc is None or expected_read_pc != read.pc:
            return False
    return True
