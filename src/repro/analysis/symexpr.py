"""Symbolic expressions for storage-key analysis.

The P-SAG must describe *which* storage slots a function touches before the
transaction's inputs are known (paper §III-B).  Slots are therefore symbolic
expressions over:

* transaction inputs  (``Calldata``, ``Caller``, ``CallValue``),
* block parameters    (``BlockNumber``, ``Timestamp``),
* state values        (``SLoadVal`` — the paper's dependency on snapshots),
* hashing and arithmetic over those (mapping/array slot math),
* ``Unknown`` — the paper's "–" placeholder for unresolvable accesses.

Given a concrete transaction and a snapshot, :func:`evaluate` resolves an
expression to a concrete slot (or reports that it depends on unresolvable
inputs), which is how a P-SAG is refined into a C-SAG without execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..core import words
from ..core.hashing import keccak
from ..core.words import WORD_BYTES, bytes_to_word


class Unresolvable(Exception):
    """Raised by :func:`evaluate` when an expression contains ``Unknown``."""


@dataclass(frozen=True)
class SymExpr:
    """Base class; all expressions are immutable and hashable."""


@dataclass(frozen=True)
class Const(SymExpr):
    value: int

    def __str__(self) -> str:
        return f"{self.value:#x}" if self.value > 9 else str(self.value)


@dataclass(frozen=True)
class Calldata(SymExpr):
    """32-byte word loaded from calldata at a constant offset."""

    offset: int

    def __str__(self) -> str:
        if self.offset >= 4 and (self.offset - 4) % WORD_BYTES == 0:
            return f"arg{(self.offset - 4) // WORD_BYTES}"
        return f"calldata[{self.offset}]"


@dataclass(frozen=True)
class Caller(SymExpr):
    def __str__(self) -> str:
        return "msg.sender"


@dataclass(frozen=True)
class CallValue(SymExpr):
    def __str__(self) -> str:
        return "msg.value"


@dataclass(frozen=True)
class BlockNumber(SymExpr):
    def __str__(self) -> str:
        return "block.number"


@dataclass(frozen=True)
class Timestamp(SymExpr):
    def __str__(self) -> str:
        return "block.timestamp"


@dataclass(frozen=True)
class SLoadVal(SymExpr):
    """The value read from storage at (symbolic) slot ``key``.

    ``site`` is the pc of the SLOAD, making distinct loads distinct symbols
    (storage may change between two loads of the same slot in principle;
    within one transaction it cannot, but keeping sites separate also gives
    the use-count analysis for commutativity detection for free).
    """

    key: SymExpr
    site: int

    def __str__(self) -> str:
        return f"sload({self.key})"


@dataclass(frozen=True)
class Sha3(SymExpr):
    """keccak over a sequence of words — mapping/array slot derivation."""

    parts: Tuple[SymExpr, ...]

    def __str__(self) -> str:
        return f"keccak({', '.join(map(str, self.parts))})"


@dataclass(frozen=True)
class BinOp(SymExpr):
    op: str  # '+', '-', '*', '/', '%', 'and', 'or', 'xor', 'shl', 'shr', ...
    left: SymExpr
    right: SymExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Unknown(SymExpr):
    """The paper's "–" placeholder: not resolvable before execution."""

    tag: int = 0

    def __str__(self) -> str:
        return "–"


def simplify(expr: SymExpr) -> SymExpr:
    """Constant-fold one level (children are assumed already simplified)."""
    if isinstance(expr, BinOp) and isinstance(expr.left, Const) and isinstance(expr.right, Const):
        return Const(_apply(expr.op, expr.left.value, expr.right.value))
    if isinstance(expr, Sha3) and all(isinstance(p, Const) for p in expr.parts):
        payload = b"".join(p.value.to_bytes(WORD_BYTES, "big") for p in expr.parts)  # type: ignore[union-attr]
        return Const(bytes_to_word(keccak(payload)))
    return expr


def make_binop(op: str, left: SymExpr, right: SymExpr) -> SymExpr:
    return simplify(BinOp(op, left, right))


def _apply(op: str, a: int, b: int) -> int:
    if op == "+":
        return words.add(a, b)
    if op == "-":
        return words.sub(a, b)
    if op == "*":
        return words.mul(a, b)
    if op == "/":
        return words.div(a, b)
    if op == "%":
        return words.mod(a, b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return words.shl(a, b)
    if op == "shr":
        return words.shr(a, b)
    if op == "exp":
        return words.exp(a, b)
    if op == "lt":
        return words.lt(a, b)
    if op == "gt":
        return words.gt(a, b)
    if op == "eq":
        return words.eq(a, b)
    raise ValueError(f"unknown symbolic operator {op!r}")


@dataclass(frozen=True)
class TxEnvironment:
    """Concrete evaluation context for one transaction."""

    calldata: bytes
    caller: int
    call_value: int
    block_number: int = 0
    timestamp: int = 0


def evaluate(
    expr: SymExpr,
    env: TxEnvironment,
    storage_reader: Callable[[SymExpr], int],
) -> int:
    """Resolve a symbolic expression against concrete transaction inputs.

    ``storage_reader`` is called for ``SLoadVal`` nodes with the (already
    symbolic) key; the caller resolves that key recursively and reads the
    snapshot — this is the paper's "retrieve requested values from a most
    recent snapshot of global states".

    Raises :class:`Unresolvable` when the expression contains ``Unknown``.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Calldata):
        chunk = env.calldata[expr.offset : expr.offset + WORD_BYTES]
        return bytes_to_word(chunk.ljust(WORD_BYTES, b"\x00"))
    if isinstance(expr, Caller):
        return env.caller
    if isinstance(expr, CallValue):
        return env.call_value
    if isinstance(expr, BlockNumber):
        return env.block_number
    if isinstance(expr, Timestamp):
        return env.timestamp
    if isinstance(expr, SLoadVal):
        return storage_reader(expr.key)
    if isinstance(expr, Sha3):
        payload = b"".join(
            evaluate(p, env, storage_reader).to_bytes(WORD_BYTES, "big") for p in expr.parts
        )
        return bytes_to_word(keccak(payload))
    if isinstance(expr, BinOp):
        return _apply(
            expr.op,
            evaluate(expr.left, env, storage_reader),
            evaluate(expr.right, env, storage_reader),
        )
    if isinstance(expr, Unknown):
        raise Unresolvable("expression contains an unresolved placeholder")
    raise TypeError(f"not a symbolic expression: {expr!r}")


def contains_unknown(expr: SymExpr) -> bool:
    """Whether any subexpression is an ``Unknown`` placeholder."""
    if isinstance(expr, Unknown):
        return True
    if isinstance(expr, BinOp):
        return contains_unknown(expr.left) or contains_unknown(expr.right)
    if isinstance(expr, Sha3):
        return any(contains_unknown(p) for p in expr.parts)
    if isinstance(expr, SLoadVal):
        return contains_unknown(expr.key)
    return False


def depends_on_state(expr: SymExpr) -> bool:
    """Whether resolving the expression needs snapshot values (paper's
    ``V`` component of a state-access dependency)."""
    if isinstance(expr, SLoadVal):
        return True
    if isinstance(expr, BinOp):
        return depends_on_state(expr.left) or depends_on_state(expr.right)
    if isinstance(expr, Sha3):
        return any(depends_on_state(p) for p in expr.parts)
    return False
