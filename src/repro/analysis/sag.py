"""State Access Graphs (SAGs).

The paper's P-SAG is "a simplified control-flow graph from which the nodes
performing no read/write operation are removed" plus loop nodes and release
points.  :func:`build_psag` produces exactly that from the CFG, the
abstract-interpretation access sites, and the release-point analysis.

A node's ``key`` is a symbolic expression (``repro.analysis.symexpr``);
unresolved accesses carry the ``Unknown`` placeholder ("–" in the paper's
Fig. 3).  Refinement into a C-SAG happens in :mod:`repro.analysis.csag`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.hashing import keccak
from .abstract import ContractAnalysis, analyze_contract
from .cfg import CFG, build_cfg
from .release import ReleaseAnalysis, analyze_release_points
from .symexpr import SymExpr, contains_unknown, depends_on_state

START_PC = -1
END_PC = -2


class SAGNodeKind(Enum):
    START = "start"
    END = "end"
    READ = "read"
    WRITE = "write"
    LOOP = "loop"
    RELEASE = "release"


@dataclass
class SAGNode:
    """One node of a P-SAG."""

    pc: int
    kind: SAGNodeKind
    key: Optional[SymExpr] = None
    gas_bound: Optional[int] = None     # set when the node is a release point
    commutative: bool = False           # write nodes: increment site
    is_release: bool = False            # True for RELEASE nodes and for
    successors: List[int] = field(default_factory=list)  # accesses at a release pc

    def __repr__(self) -> str:
        extra = f" key={self.key}" if self.key is not None else ""
        return f"SAGNode(pc={self.pc}, {self.kind.value}{extra})"


@dataclass
class PSAG:
    """Partial state access graph for one contract's bytecode."""

    code_hash: bytes
    nodes: Dict[int, SAGNode]
    analysis: ContractAnalysis
    release: ReleaseAnalysis
    loop_headers: FrozenSet[int]
    selector_reach: Dict[int, FrozenSet[int]] = None  # type: ignore[assignment]

    def sites_for_selector(self, selector: int):
        """Access sites reachable from the dispatched function (all sites
        when the selector is unknown or the dispatcher was not recognised)."""
        reach = (self.selector_reach or {}).get(selector)
        sites = self.analysis.access_sites.values()
        if reach is None:
            return list(sites)
        return [s for s in sites if s.pc in reach]

    @property
    def start(self) -> SAGNode:
        return self.nodes[START_PC]

    @property
    def end(self) -> SAGNode:
        return self.nodes[END_PC]

    def access_nodes(self) -> List[SAGNode]:
        return [
            n for n in self.nodes.values()
            if n.kind in (SAGNodeKind.READ, SAGNodeKind.WRITE)
        ]

    def release_pcs(self) -> Set[int]:
        return {n.pc for n in self.nodes.values() if n.is_release}

    def unresolved_nodes(self) -> List[SAGNode]:
        """Nodes whose key carries the "–" placeholder."""
        return [
            n for n in self.access_nodes()
            if n.key is not None and contains_unknown(n.key)
        ]

    def snapshot_dependent_nodes(self) -> List[SAGNode]:
        """Nodes whose key needs snapshot values to resolve (paper's V set)."""
        return [
            n for n in self.access_nodes()
            if n.key is not None and depends_on_state(n.key)
        ]

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the P-SAG (the paper's Fig. 3 view)."""
        def node_id(pc: int) -> str:
            if pc == START_PC:
                return "start"
            if pc == END_PC:
                return "end"
            return f"pc{pc}"

        lines = ["digraph psag {", "  rankdir=TB;", '  node [fontsize=10];']
        for pc, node in sorted(self.nodes.items()):
            if node.kind is SAGNodeKind.START:
                label, shape = "start", "circle"
            elif node.kind is SAGNodeKind.END:
                label, shape = "end", "doublecircle"
            elif node.kind is SAGNodeKind.LOOP:
                label, shape = f"loop @{pc}", "diamond"
            elif node.kind is SAGNodeKind.RELEASE:
                label, shape = f"release @{pc}", "house"
            else:
                symbol = "ω" if node.kind is SAGNodeKind.WRITE else "ρ"
                if node.commutative:
                    symbol = "ω̄"
                label, shape = f"{symbol}({node.key}) @{pc}", "box"
                if node.is_release:
                    label += " [release]"
            lines.append(f'  {node_id(pc)} [label="{label}", shape={shape}];')
        for pc, node in sorted(self.nodes.items()):
            for succ in node.successors:
                lines.append(f"  {node_id(pc)} -> {node_id(succ)};")
        lines.append("}")
        return "\n".join(lines)


def build_psag(code: bytes) -> PSAG:
    """Build the partial state access graph of a contract."""
    cfg = build_cfg(code)
    analysis = analyze_contract(code, cfg)
    release = analyze_release_points(cfg)
    loop_headers = frozenset(cfg.loop_headers())

    nodes: Dict[int, SAGNode] = {
        START_PC: SAGNode(START_PC, SAGNodeKind.START),
        END_PC: SAGNode(END_PC, SAGNodeKind.END),
    }

    # Retained pcs per block, in instruction order.  A pc can be both a
    # release point and an access; release wins a separate node ordered
    # just before the access (the release "happens" on arrival at the pc).
    retained_per_block: Dict[int, List[int]] = {}
    release_pcs = release.pcs

    for block in cfg.iter_blocks():
        pcs: List[int] = []
        if block.start in loop_headers:
            nodes[block.start] = SAGNode(block.start, SAGNodeKind.LOOP)
            pcs.append(block.start)
        for instr in block.instructions:
            pc = instr.pc
            site = analysis.access_sites.get(pc)
            releases_here = pc in release_pcs
            if site is None and releases_here and pc not in nodes:
                nodes[pc] = SAGNode(
                    pc, SAGNodeKind.RELEASE,
                    gas_bound=release.bound_at(pc), is_release=True,
                )
                pcs.append(pc)
            elif site is not None and pc not in nodes:
                kind = SAGNodeKind.WRITE if site.kind == "write" else SAGNodeKind.READ
                nodes[pc] = SAGNode(
                    pc,
                    kind,
                    key=site.key,
                    commutative=pc in analysis.increment_sites,
                    is_release=releases_here,
                    gas_bound=release.bound_at(pc) if releases_here else None,
                )
                pcs.append(pc)
        retained_per_block[block.start] = pcs

    _wire_edges(cfg, nodes, retained_per_block)
    from .dispatch import selector_reachability

    return PSAG(
        code_hash=keccak(code),
        nodes=nodes,
        analysis=analysis,
        release=release,
        loop_headers=loop_headers,
        selector_reach=selector_reachability(cfg),
    )


def _wire_edges(
    cfg: CFG, nodes: Dict[int, SAGNode], retained: Dict[int, List[int]]
) -> None:
    """Collapse the CFG onto retained nodes: each node's successors are the
    nearest retained nodes reachable without crossing another one."""
    first_cache: Dict[int, FrozenSet[int]] = {}

    def first_retained(block_start: int, visiting: Tuple[int, ...] = ()) -> FrozenSet[int]:
        """First retained node(s) seen when control enters ``block_start``."""
        if block_start in first_cache:
            return first_cache[block_start]
        if block_start in visiting:
            return frozenset()  # empty cycle: no retained node inside
        pcs = retained[block_start]
        if pcs:
            result = frozenset({pcs[0]})
        else:
            successors = cfg.blocks[block_start].successors
            if not successors:
                result = frozenset({END_PC})
            else:
                acc: Set[int] = set()
                for succ in successors:
                    acc |= first_retained(succ, visiting + (block_start,))
                result = frozenset(acc)
        first_cache[block_start] = result
        return result

    # Entry edge.
    nodes[START_PC].successors = sorted(first_retained(cfg.entry)) if cfg.blocks else [END_PC]

    for block in cfg.iter_blocks():
        pcs = retained[block.start]
        for i, pc in enumerate(pcs):
            if i + 1 < len(pcs):
                nodes[pc].successors = [pcs[i + 1]]
            else:
                acc: Set[int] = set()
                if not block.successors:
                    acc.add(END_PC)
                for succ in block.successors:
                    acc |= first_retained(succ)
                nodes[pc].successors = sorted(acc) or [END_PC]


class PSAGCache:
    """Per-validator cache of P-SAGs keyed by code hash.

    The paper constructs P-SAGs offline, when transactions first arrive;
    caching by code hash means each contract is analysed once per process.
    """

    def __init__(self) -> None:
        self._by_hash: Dict[bytes, PSAG] = {}

    def get(self, code: bytes) -> PSAG:
        digest = keccak(code)
        psag = self._by_hash.get(digest)
        if psag is None:
            psag = build_psag(code)
            self._by_hash[digest] = psag
        return psag

    def __len__(self) -> int:
        return len(self._by_hash)
