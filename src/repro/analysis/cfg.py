"""Control-flow graph construction from EVM bytecode.

The paper builds SAGs from CFGs produced by Slither; we build equivalent
CFGs directly from bytecode, so contracts without source can be analysed too
(as the paper notes is possible).

Jump-target resolution: our compiler (like solc) emits ``PUSH target`` as
the instruction immediately preceding ``JUMP``/``JUMPI``; those resolve
exactly.  A jump whose target is not a literal push is *dynamic* and is
conservatively given every JUMPDEST as a successor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..evm.assembler import Instruction, disassemble
from ..evm.opcodes import Op, is_terminator, opcode_info
from ..evm.vm import valid_jumpdests


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instructions: List[Instruction] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)
    has_dynamic_jump: bool = False

    @property
    def end_pc(self) -> int:
        """pc one past the last instruction."""
        last = self.instructions[-1]
        return last.next_pc

    @property
    def terminator(self) -> Optional[Op]:
        return self.instructions[-1].op if self.instructions else None

    def static_gas(self) -> int:
        """Sum of static gas costs of the block's instructions (a lower
        bound; dynamic costs like SHA3 words and memory growth excluded)."""
        total = 0
        for instr in self.instructions:
            info = opcode_info(int(instr.op))
            if info is not None:
                total += info.gas
            if instr.op is Op.SSTORE:
                total += 5_000  # flat dynamic charge, mirrors the VM
        return total

    def __repr__(self) -> str:
        return f"BasicBlock({self.start}..{self.end_pc}, succ={self.successors})"


@dataclass
class CFG:
    """Blocks indexed by start pc, with forward and backward edges."""

    code: bytes
    blocks: Dict[int, BasicBlock]
    entry: int = 0

    def block_of(self, pc: int) -> BasicBlock:
        """The block containing ``pc`` (blocks are disjoint and sorted)."""
        starts = self._sorted_starts
        lo, hi = 0, len(starts) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self.blocks[starts[mid]]
            if pc < block.start:
                hi = mid - 1
            elif pc >= block.end_pc:
                lo = mid + 1
            else:
                return block
        raise KeyError(f"no block contains pc {pc}")

    @property
    def _sorted_starts(self) -> List[int]:
        cached = getattr(self, "_starts_cache", None)
        if cached is None:
            cached = sorted(self.blocks)
            object.__setattr__(self, "_starts_cache", cached)
        return cached

    def iter_blocks(self) -> Iterator[BasicBlock]:
        for start in sorted(self.blocks):
            yield self.blocks[start]

    def back_edges(self) -> Set[Tuple[int, int]]:
        """Edges (u, v) where v dominates u under DFS — loop back edges.

        We use the standard DFS-ancestor approximation: an edge into a block
        currently on the DFS stack is a back edge.  Good enough to identify
        the paper's loop nodes.
        """
        back: Set[Tuple[int, int]] = set()
        visited: Set[int] = set()
        on_stack: Set[int] = set()

        def dfs(start: int) -> None:
            stack: List[Tuple[int, Iterator[int]]] = []
            visited.add(start)
            on_stack.add(start)
            stack.append((start, iter(self.blocks[start].successors)))
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ in on_stack:
                        back.add((node, succ))
                    elif succ not in visited:
                        visited.add(succ)
                        on_stack.add(succ)
                        stack.append((succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    on_stack.discard(node)

        if self.entry in self.blocks:
            dfs(self.entry)
        return back

    def loop_headers(self) -> Set[int]:
        return {target for _src, target in self.back_edges()}


def build_cfg(code: bytes) -> CFG:
    """Decode bytecode and split it into basic blocks with resolved edges."""
    instructions = list(disassemble(code))
    if not instructions:
        return CFG(code, {})
    jumpdests = valid_jumpdests(code)

    # Block leaders: pc 0, every JUMPDEST, every instruction after a
    # terminator or JUMPI.
    leaders: Set[int] = {0}
    for i, instr in enumerate(instructions):
        if instr.op is Op.JUMPDEST:
            leaders.add(instr.pc)
        if is_terminator(instr.op) or instr.op is Op.JUMPI:
            if i + 1 < len(instructions):
                leaders.add(instructions[i + 1].pc)

    blocks: Dict[int, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    for instr in instructions:
        if instr.pc in leaders:
            current = BasicBlock(start=instr.pc)
            blocks[instr.pc] = current
        assert current is not None
        current.instructions.append(instr)

    # Edges.
    block_list = sorted(blocks)
    for idx, start in enumerate(block_list):
        block = blocks[start]
        last = block.instructions[-1]
        prev = block.instructions[-2] if len(block.instructions) >= 2 else None
        fallthrough = block_list[idx + 1] if idx + 1 < len(block_list) else None

        if last.op is Op.JUMP:
            target = _static_target(prev)
            if target is not None and target in jumpdests:
                block.successors.append(target)
            elif target is None:
                block.has_dynamic_jump = True
                block.successors.extend(sorted(jumpdests))
        elif last.op is Op.JUMPI:
            target = _static_target(prev)
            if target is not None and target in jumpdests:
                block.successors.append(target)
            elif target is None:
                block.has_dynamic_jump = True
                block.successors.extend(sorted(jumpdests))
            if fallthrough is not None:
                block.successors.append(fallthrough)
        elif not is_terminator(last.op):
            if fallthrough is not None:
                block.successors.append(fallthrough)

    for start, block in blocks.items():
        for succ in block.successors:
            blocks[succ].predecessors.append(start)

    return CFG(code, blocks)


def _static_target(prev: Optional[Instruction]) -> Optional[int]:
    """Jump target when the preceding instruction is a PUSH literal."""
    if prev is not None and Op.PUSH1 <= prev.op <= Op.PUSH32:
        return prev.operand
    return None
