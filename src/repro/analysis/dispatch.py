"""Function-dispatch analysis: selector → reachable code.

Solidity-style contracts start with a selector dispatcher.  Recognising it
lets the C-SAG refinement evaluate only the access sites *reachable from
the called function*, instead of every site in the contract — the
difference between per-function and whole-contract read/write sets.

The recognised pattern (emitted by our compiler and solc alike) is::

    DUP1 ; PUSH<sel> ; EQ ; PUSH2 <entry> ; JUMPI
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from ..evm.opcodes import Op
from .cfg import CFG


def selector_entries(cfg: CFG) -> Dict[int, int]:
    """Map each 4-byte function selector to its entry pc."""
    entries: Dict[int, int] = {}
    for block in cfg.iter_blocks():
        instrs = block.instructions
        for i in range(len(instrs) - 4):
            window = instrs[i : i + 5]
            if (
                window[0].op is Op.DUP1
                and Op.PUSH1 <= window[1].op <= Op.PUSH32
                and window[2].op is Op.EQ
                and Op.PUSH1 <= window[3].op <= Op.PUSH32
                and window[4].op is Op.JUMPI
            ):
                selector = window[1].operand or 0
                target = window[3].operand or 0
                if target in cfg.blocks:
                    entries[selector] = target
    return entries


def reachable_pcs(cfg: CFG, entry_block: int) -> FrozenSet[int]:
    """All instruction pcs reachable from ``entry_block``."""
    seen: Set[int] = set()
    stack: List[int] = [entry_block]
    pcs: Set[int] = set()
    while stack:
        start = stack.pop()
        if start in seen or start not in cfg.blocks:
            continue
        seen.add(start)
        block = cfg.blocks[start]
        pcs.update(instr.pc for instr in block.instructions)
        stack.extend(block.successors)
    return frozenset(pcs)


def selector_reachability(cfg: CFG) -> Dict[int, FrozenSet[int]]:
    """Per-selector reachable pc sets (the per-function views of a P-SAG)."""
    return {
        selector: reachable_pcs(cfg, entry)
        for selector, entry in selector_entries(cfg).items()
    }
