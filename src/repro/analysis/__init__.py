"""Static and dynamic analysis: CFGs, symbolic keys, P-SAGs, C-SAGs."""

from .abstract import AccessSite, ContractAnalysis, analyze_contract
from .cfg import CFG, BasicBlock, build_cfg
from .csag import AccessType, CSAG, CSAGBuilder, CSAGCache, PredictedAccess, ReleaseOffset
from .release import ReleaseAnalysis, ReleasePoint, analyze_release_points
from .sag import PSAG, PSAGCache, SAGNode, SAGNodeKind, build_psag
from . import symexpr

__all__ = [
    "AccessSite",
    "AccessType",
    "BasicBlock",
    "CFG",
    "CSAG",
    "CSAGBuilder",
    "CSAGCache",
    "ContractAnalysis",
    "PSAG",
    "PSAGCache",
    "PredictedAccess",
    "ReleaseAnalysis",
    "ReleaseOffset",
    "ReleasePoint",
    "SAGNode",
    "SAGNodeKind",
    "analyze_contract",
    "analyze_release_points",
    "build_cfg",
    "build_psag",
    "symexpr",
]
