"""Release-point analysis.

A *release point* (paper §III-B, §IV-C) is a program point beyond which no
abortable statement can execute — once a transaction's execution passes it
(with enough gas for the longest remaining path), its writes can safely be
made visible to other transactions, because nothing can retroactively undo
them except scheduler-level aborts, which the protocol already handles.

Abortable statements at the bytecode level are REVERT and INVALID (the
compilation targets of ``require``/``revert`` and ``assert``/bounds checks).
Running out of gas is handled separately: each release point carries an
upper bound on the gas needed for the remaining instructions, checked
against the actual remaining gas at runtime (Algorithm 2, line 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..evm.opcodes import Op
from .cfg import CFG

# CALL counts as abortable: the callee may revert or burn gas, and the
# static analysis of the caller cannot see into it.
_ABORTABLE = (Op.REVERT, Op.INVALID, Op.CALL)


@dataclass(frozen=True)
class ReleasePoint:
    """One release point: a pc plus the static gas bound for the rest of the
    execution (``None`` when a loop makes the remainder unbounded — the
    C-SAG refinement replaces it with a concrete estimate)."""

    pc: int
    block_start: int
    gas_bound: Optional[int]


@dataclass
class ReleaseAnalysis:
    """Per-contract release-point results."""

    release_points: List[ReleasePoint] = field(default_factory=list)
    abort_reachable: Dict[int, bool] = field(default_factory=dict)  # block -> bool

    @property
    def pcs(self) -> Set[int]:
        return {rp.pc for rp in self.release_points}

    def bound_at(self, pc: int) -> Optional[int]:
        for rp in self.release_points:
            if rp.pc == pc:
                return rp.gas_bound
        return None


def analyze_release_points(cfg: CFG) -> ReleaseAnalysis:
    """Compute the earliest release points of a contract CFG."""
    analysis = ReleaseAnalysis()
    if not cfg.blocks:
        return analysis

    internal_abort: Dict[int, bool] = {}
    last_abort_index: Dict[int, int] = {}
    for start, block in cfg.blocks.items():
        indices = [i for i, ins in enumerate(block.instructions) if ins.op in _ABORTABLE]
        internal_abort[start] = bool(indices)
        last_abort_index[start] = indices[-1] if indices else -1

    # abort_reachable[b]: an abortable instruction exists in b or beyond.
    abort_reachable = {start: internal_abort[start] for start in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for start, block in cfg.blocks.items():
            if abort_reachable[start]:
                continue
            if any(abort_reachable[s] for s in block.successors):
                abort_reachable[start] = True
                changed = True
    analysis.abort_reachable = abort_reachable

    # end_safe[b]: every path *after* block b is abort-free.
    end_safe = {
        start: not any(abort_reachable[s] for s in block.successors)
        for start, block in cfg.blocks.items()
    }

    # Blocks from which a cycle is reachable have unbounded remaining gas.
    reaches_cycle = _blocks_reaching_cycles(cfg)
    gas_bounds = _longest_path_gas(cfg, reaches_cycle)

    for start, block in cfg.blocks.items():
        if not end_safe[start]:
            continue
        last_idx = last_abort_index[start]
        if internal_abort[start]:
            if last_idx == len(block.instructions) - 1:
                continue  # the block *ends* by aborting; nothing to release
            pc = block.instructions[last_idx + 1].pc
        else:
            preds = block.predecessors
            pred_all_safe = bool(preds) and all(
                end_safe.get(p, False) and not _tail_aborts(cfg, p)
                for p in preds
            )
            if pred_all_safe:
                continue  # a predecessor already released; keep earliest only
            pc = block.instructions[0].pc
        bound = None if reaches_cycle.get(start, False) else _remaining_gas(
            cfg, start, last_idx, gas_bounds
        )
        analysis.release_points.append(ReleasePoint(pc, start, bound))

    analysis.release_points.sort(key=lambda rp: rp.pc)
    return analysis


def _tail_aborts(cfg: CFG, block_start: int) -> bool:
    """Does the block itself still contain an abortable instruction?"""
    return any(ins.op in _ABORTABLE for ins in cfg.blocks[block_start].instructions)


def _blocks_reaching_cycles(cfg: CFG) -> Dict[int, bool]:
    """Blocks from which some cycle is reachable (gas unbounded statically)."""
    back = cfg.back_edges()
    cycle_blocks = {target for _s, target in back} | {source for source, _t in back}
    reaches = {start: start in cycle_blocks for start in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for start, block in cfg.blocks.items():
            if reaches[start]:
                continue
            if any(reaches[s] for s in block.successors):
                reaches[start] = True
                changed = True
    return reaches


def _longest_path_gas(cfg: CFG, reaches_cycle: Dict[int, bool]) -> Dict[int, int]:
    """Longest-path gas from each acyclic block to any terminal, memoised.

    Only meaningful for blocks that reach no cycle; others get 0 and are
    reported as unbounded by the caller.
    """
    memo: Dict[int, int] = {}

    def visit(start: int) -> int:
        if start in memo:
            return memo[start]
        if reaches_cycle.get(start, False):
            memo[start] = 0
            return 0
        block = cfg.blocks[start]
        own = block.static_gas()
        best_tail = 0
        for succ in block.successors:
            best_tail = max(best_tail, visit(succ))
        memo[start] = own + best_tail
        return memo[start]

    for start in cfg.blocks:
        visit(start)
    return memo


def _remaining_gas(
    cfg: CFG, block_start: int, last_abort_idx: int, gas_bounds: Dict[int, int]
) -> int:
    """Gas bound from the release pc (just after ``last_abort_idx``) to the
    end: the rest of this block plus the longest successor path."""
    block = cfg.blocks[block_start]
    from ..evm.opcodes import opcode_info

    tail_gas = 0
    for ins in block.instructions[last_abort_idx + 1 :]:
        info = opcode_info(int(ins.op))
        if info is not None:
            tail_gas += info.gas
        if ins.op is Op.SSTORE:
            tail_gas += 5_000
    best_succ = max((gas_bounds.get(s, 0) for s in block.successors), default=0)
    return tail_gas + best_succ
