"""repro: reproduction of "Smart Contract Parallel Execution with
Fine-Grained State Accesses" (DMVCC, ICDCS 2023).

The package provides, from scratch:

* a resumable EVM and a small Solidity-like language (Minisol);
* a Merkle-Patricia-Trie-backed StateDB with per-block snapshots;
* the paper's program analysis: CFGs, symbolic storage keys, P-SAGs with
  release points, C-SAG refinement, commutativity detection;
* the DMVCC scheduler (write versioning, early-write visibility,
  commutative writes, abort/recovery) and the Serial/DAG/OCC baselines;
* a blockchain substrate (blocks, pools, validators, PoW network sim);
* workload generation matching the paper's mainnet traffic mix;
* a benchmark harness regenerating every figure of the evaluation.

Quick start::

    from repro import Workload, WorkloadConfig, DMVCCExecutor, SerialExecutor

    wl = Workload(WorkloadConfig(users=500))
    txs = wl.transactions(200)
    serial = SerialExecutor().execute_block(txs, wl.db.latest, wl.db.codes.code_of)
    dmvcc = DMVCCExecutor().execute_block(
        txs, wl.db.latest, wl.db.codes.code_of, threads=16)
    assert dmvcc.writes == serial.writes          # deterministic serializability
    print(dmvcc.metrics.speedup)
"""

from .analysis import CSAG, CSAGBuilder, PSAG, PSAGCache, build_psag
from .chain import (
    Block,
    NetworkSimulation,
    Packer,
    Transaction,
    TransactionPool,
    Validator,
)
from .core import Address, StateKey
from .evm import EVM, BlockContext, HaltReason, Message, assemble, disassemble
from .executors import (
    BlockExecution,
    DAGExecutor,
    DMVCCExecutor,
    OCCExecutor,
    SerialExecutor,
    TxResult,
    TxStatus,
)
from .lang import CompiledContract, compile_source
from .sim import BlockMetrics
from .state import Snapshot, StateDB
from .workload import (
    Workload,
    WorkloadConfig,
    high_contention_config,
    low_contention_config,
)

__version__ = "1.0.0"

__all__ = [
    "Address",
    "Block",
    "BlockContext",
    "BlockExecution",
    "BlockMetrics",
    "CSAG",
    "CSAGBuilder",
    "CompiledContract",
    "DAGExecutor",
    "DMVCCExecutor",
    "EVM",
    "HaltReason",
    "Message",
    "NetworkSimulation",
    "OCCExecutor",
    "PSAG",
    "PSAGCache",
    "Packer",
    "SerialExecutor",
    "Snapshot",
    "StateDB",
    "StateKey",
    "Transaction",
    "TransactionPool",
    "TxResult",
    "TxStatus",
    "Validator",
    "Workload",
    "WorkloadConfig",
    "assemble",
    "build_psag",
    "compile_source",
    "disassemble",
    "high_contention_config",
    "low_contention_config",
    "__version__",
]
