"""Differential parity sweep for sharded execution (``repro verify --shards``).

For every scenario preset × substrate backend, the sharded executor's
receipts, write sets, and sealed roots must be byte-identical to the
unsharded serial reference — both with an empty merge registry and with
the workload's declared-operation registry attached.  Sharding (like the
substrate seam) is an optimisation the consensus outputs must never see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..executors.serial import SerialExecutor
from ..substrate import SUBSTRATE_KINDS, get_substrate
from ..workload import Workload
from ..workload.scenarios import SCENARIO_NAMES, scenario_config
from .substrate import PARITY_WORKLOAD, receipt_digest

SHARD_BACKENDS = SUBSTRATE_KINDS  # sim included: it is the default seam


@dataclass
class ShardCase:
    """One (scenario, backend, merge-mode) sharded run vs the serial twin."""

    scenario: str
    backend: str
    merges: bool
    shards: int
    ok: bool = True
    mismatches: List[str] = field(default_factory=list)
    cross_shard_txs: int = 0
    handoff_requeues: int = 0
    shard_fallbacks: int = 0

    @property
    def label(self) -> str:
        mode = "declared" if self.merges else "plain"
        return f"{self.scenario}/{self.backend}/{mode}"


@dataclass
class ShardReport:
    """Everything one ``verify --shards`` sweep concluded."""

    shards: int = 0
    txs_per_block: int = 0
    cases: List[ShardCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> List[ShardCase]:
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        lines = [
            f"shard parity: {len(self.cases)} case(s), "
            f"{self.shards} shard(s), {self.txs_per_block} txs/block"
        ]
        for case in self.cases:
            status = "OK " if case.ok else "FAIL"
            lines.append(
                f"  [{status}] {case.scenario:18s} {case.backend:10s} "
                f"{'declared' if case.merges else 'plain':8s} "
                f"cross={case.cross_shard_txs:<3d} "
                f"requeues={case.handoff_requeues:<3d} "
                f"fallbacks={case.shard_fallbacks}"
            )
            for mismatch in case.mismatches:
                lines.append(f"         ! {mismatch}")
        verdict = "OK" if self.ok else f"{len(self.failures)} case(s) DIVERGED"
        lines.append(f"shard parity: {verdict}")
        return "\n".join(lines)


def _compare(case: ShardCase, workload, base, other) -> None:
    base_digest = receipt_digest(base)
    other_digest = receipt_digest(other)
    if base_digest != other_digest:
        bad = [i for i, (a, b) in enumerate(zip(base_digest, other_digest))
               if a != b]
        case.mismatches.append(
            f"receipts diverge at indices {bad[:8]}"
            + ("…" if len(bad) > 8 else ""))
    if base.writes != other.writes:
        keys = {k for k in set(base.writes) | set(other.writes)
                if base.writes.get(k) != other.writes.get(k)}
        case.mismatches.append(f"write sets diverge on {len(keys)} key(s)")
    base_root = workload.db.fork().commit(base.writes).root_hash
    other_root = workload.db.fork().commit(other.writes).root_hash
    if base_root != other_root:
        case.mismatches.append(
            f"sealed roots diverge: {base_root.hex()[:16]} != "
            f"{other_root.hex()[:16]}")
    case.ok = not case.mismatches


def run_shard_verify(
    shards: int = 4,
    scenarios: Optional[Sequence[str]] = None,
    backends: Sequence[str] = SHARD_BACKENDS,
    txs_per_block: int = 48,
    threads: int = 8,
    workers: int = 2,
    seed: int = 7,
    workload_overrides: Optional[dict] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ShardReport:
    """Sweep scenario × backend × merge-mode; every sharded run must
    reproduce the serial baseline's receipts, writes, and sealed root."""
    from ..shard.executor import ShardedDMVCCExecutor

    scenario_names = tuple(scenarios) if scenarios else SCENARIO_NAMES
    overrides = dict(PARITY_WORKLOAD)
    overrides.update(workload_overrides or {})
    overrides.setdefault("shard_count", shards)

    report = ShardReport(shards=shards, txs_per_block=txs_per_block)
    substrates = {kind: get_substrate(kind, workers=workers)
                  for kind in backends}
    try:
        for scenario in scenario_names:
            workload = Workload(
                scenario_config(scenario, seed=seed, **overrides))
            txs = workload.transactions(txs_per_block)
            snapshot = workload.db.latest
            resolver = workload.db.codes.code_of
            base = SerialExecutor().execute_block(txs, snapshot, resolver)
            registry = workload.declared_merges()
            for kind in backends:
                for merges in (False, True):
                    case = ShardCase(scenario=scenario, backend=kind,
                                     merges=merges, shards=shards)
                    executor = ShardedDMVCCExecutor(shards=shards)
                    executor.attach_substrate(substrates[kind])
                    if merges:
                        executor.attach_merges(registry)
                    execution = executor.execute_block(
                        txs, snapshot, resolver, threads=threads)
                    case.cross_shard_txs = execution.metrics.cross_shard_txs
                    case.handoff_requeues = execution.metrics.handoff_requeues
                    case.shard_fallbacks = execution.metrics.shard_fallbacks
                    _compare(case, workload, base, execution)
                    report.cases.append(case)
                    if progress is not None:
                        progress(f"shard: {case.label} "
                                 + ("ok" if case.ok else "DIVERGED"))
    finally:
        for substrate in substrates.values():
            substrate.close()
    return report
