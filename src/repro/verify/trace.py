"""Execution trace recording: the oracle's raw material.

A :class:`TraceRecorder` attached to any executor (``executor.recorder``)
collects one globally ordered stream of fine-grained events: every versioned
read (which writer's version was observed, and whether that version was
*early* — published before its writer completed), every buffered write,
every publish into the shared store, every retraction, abort, and
per-transaction completion.

The recorder is deliberately dumb — append-only, no interpretation — so the
hooks in the executors stay near-zero cost: a single ``is not None`` test
when recording is off, one dataclass append when it is on.  All judgement
lives in :mod:`repro.verify.oracle`, which replays the stream.

Version identifiers follow the access-sequence convention: a version is the
index of the transaction that wrote it, with ``SNAPSHOT_VERSION`` (-1)
standing for the pre-block snapshot ``S^{l-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.types import StateKey

SNAPSHOT_VERSION = -1


@dataclass(frozen=True)
class TraceEvent:
    """Base class: ``seq`` totally orders the stream, ``tx`` is the block
    index of the transaction the event belongs to."""

    seq: int
    tx: int


@dataclass(frozen=True)
class ReadEvent(TraceEvent):
    """A versioned read resolved against shared state.

    ``version`` is the writer index the read resolved to (-1 = snapshot);
    ``attempt`` is the reader's attempt number at the time; ``early`` marks
    a read of a version published before its writer completed (early-write
    visibility); ``speculative`` marks a best-available read taken because
    the proper version was not yet resolvable; ``blind`` marks commutative
    blind-increment reads whose value feeds only the paired ``+=``.
    """

    key: StateKey
    version: int
    value: int
    attempt: int = 1
    early: bool = False
    speculative: bool = False
    blind: bool = False


@dataclass(frozen=True)
class WriteEvent(TraceEvent):
    """A buffered (transaction-local) write; ``delta`` is set instead of
    ``value`` for commutative increments."""

    key: StateKey
    value: Optional[int] = None
    delta: Optional[int] = None
    attempt: int = 1


@dataclass(frozen=True)
class PublishEvent(TraceEvent):
    """A write made visible to other transactions.

    ``kind`` is ``"abs"`` or ``"delta"``; ``early`` is True when the writer
    was still running (release-point publication), False for publication at
    completion.
    """

    key: StateKey
    kind: str
    value: int
    early: bool = False


@dataclass(frozen=True)
class RetractEvent(TraceEvent):
    """A previously published version was nulled (its writer aborted or
    failed); ``victims`` are the readers cascaded into aborting."""

    key: StateKey
    victims: Tuple[int, ...] = ()


@dataclass(frozen=True)
class AbortEvent(TraceEvent):
    """The scheduler aborted transaction ``tx``; ``attempt`` is the attempt
    that was killed."""

    attempt: int = 1
    key: Optional[StateKey] = None  # the state item that triggered it


@dataclass(frozen=True)
class CompleteEvent(TraceEvent):
    """Transaction ``tx`` finished an attempt.

    Only the last CompleteEvent per transaction describes the committed
    outcome (earlier ones were undone by aborts).
    """

    attempt: int = 1
    success: bool = True
    gas_used: int = 0


class TraceRecorder:
    """Append-only recorder of one block execution's event stream."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self._seq = 0

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # ------------------------------------------------------------------
    # Hook entry points (called by the executors)
    # ------------------------------------------------------------------

    def read(
        self,
        tx: int,
        key: StateKey,
        version: int,
        value: int,
        attempt: int = 1,
        early: bool = False,
        speculative: bool = False,
        blind: bool = False,
    ) -> None:
        self.events.append(ReadEvent(
            self._next(), tx, key, version, value, attempt,
            early, speculative, blind,
        ))

    def write(
        self,
        tx: int,
        key: StateKey,
        value: Optional[int] = None,
        delta: Optional[int] = None,
        attempt: int = 1,
    ) -> None:
        self.events.append(WriteEvent(self._next(), tx, key, value, delta, attempt))

    def publish(
        self, tx: int, key: StateKey, kind: str, value: int, early: bool = False
    ) -> None:
        self.events.append(PublishEvent(self._next(), tx, key, kind, value, early))

    def retract(self, tx: int, key: StateKey, victims: Tuple[int, ...] = ()) -> None:
        self.events.append(RetractEvent(self._next(), tx, key, victims))

    def abort(self, tx: int, attempt: int = 1, key: Optional[StateKey] = None) -> None:
        self.events.append(AbortEvent(self._next(), tx, attempt, key))

    def complete(
        self, tx: int, attempt: int = 1, success: bool = True, gas_used: int = 0
    ) -> None:
        self.events.append(CompleteEvent(self._next(), tx, attempt, success, gas_used))

    # ------------------------------------------------------------------
    # Derived views (used by the oracle and tests)
    # ------------------------------------------------------------------

    def final_attempts(self) -> Dict[int, int]:
        """Per transaction, the attempt number of its committed execution
        (the highest attempt seen in any of its events)."""
        finals: Dict[int, int] = {}
        for event in self.events:
            attempt = getattr(event, "attempt", None)
            if attempt is not None:
                if attempt > finals.get(event.tx, 0):
                    finals[event.tx] = attempt
        return finals

    def committed_reads(self) -> List[ReadEvent]:
        """Reads belonging to each transaction's committed (final) attempt,
        excluding blind commutative reads (their observed value is, by
        construction, irrelevant to the outcome)."""
        finals = self.final_attempts()
        return [
            e for e in self.events
            if isinstance(e, ReadEvent)
            and not e.blind
            and e.attempt == finals.get(e.tx, 1)
        ]

    def reads_of(self, tx: int) -> List[ReadEvent]:
        return [e for e in self.events if isinstance(e, ReadEvent) and e.tx == tx]

    def events_of_type(self, kind) -> List[TraceEvent]:
        return [e for e in self.events if isinstance(e, kind)]

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for event in self.events:
            name = type(event).__name__
            counts[name] = counts.get(name, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"Trace({len(self.events)} events: {inner})"
