"""Serializability oracle: replay a trace, judge the execution.

Deterministic serializability (Definition 2) demands that a parallel block
execution be equivalent to serial execution *in block order* — not merely
some serial order.  That makes the oracle sharper than a generic conflict-
graph test: every dependency edge must point forward in block order, every
committed read must observe exactly the version serial execution would have
produced, and the final state and receipts must match ``SerialExecutor``
bit-for-bit.

The oracle consumes:

* the :class:`~repro.verify.trace.TraceRecorder` stream of the parallel
  run (reads with observed versions, publishes, retractions, aborts),
* the parallel run's outputs (write set + receipts),
* a serial reference run's outputs.

and performs four independent checks:

1. **state-root equivalence** — effective post-block value of every
   touched key matches serial;
2. **receipt equivalence** — per-transaction success flag and gas;
3. **version order + acyclicity** — the conflict graph over committed
   reads/writes (reads-from, write-write, anti-dependency edges) is
   acyclic and topologically consistent with block order; each committed
   read observed the latest committed absolute writer below it;
4. **early-write visibility hygiene** — reads that observed a version
   *later retracted* (its writer aborted or failed after publishing
   early) are flagged; ones that survived into a committed attempt are
   hard violations, ones whose reader re-executed afterwards are counted
   as repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.types import StateKey
from ..sim.metrics import OracleStats
from .trace import (
    PublishEvent,
    ReadEvent,
    RetractEvent,
    TraceRecorder,
)

SNAPSHOT_VERSION = -1


@dataclass
class OracleReport:
    """Everything the oracle concluded about one block execution."""

    scheduler: str = "?"
    ok: bool = True
    divergences: List[str] = field(default_factory=list)
    # Early-write visibility accounting:
    doomed_reads: List[ReadEvent] = field(default_factory=list)
    repaired_reads: int = 0
    unrepaired_violations: List[str] = field(default_factory=list)
    stats: OracleStats = field(default_factory=OracleStats)

    @property
    def flagged_early_visibility(self) -> bool:
        """True when any read observed a version that was later retracted."""
        return bool(self.doomed_reads)

    def fail(self, message: str) -> None:
        self.ok = False
        self.divergences.append(message)

    def render(self) -> str:
        lines = [f"[{self.scheduler}] {'OK' if self.ok else 'DIVERGED'}"]
        lines += [f"  ! {d}" for d in self.divergences]
        if self.doomed_reads:
            lines.append(
                f"  early-visibility: {len(self.doomed_reads)} read(s) of "
                f"later-retracted versions "
                f"({self.repaired_reads} repaired, "
                f"{len(self.unrepaired_violations)} unrepaired)"
            )
        lines.append("  " + self.stats.summary())
        return "\n".join(lines)


class SerializabilityOracle:
    """Judge one parallel block execution against the serial reference."""

    def __init__(self, snapshot_get=None) -> None:
        # Resolver for pre-block values (defaults to 0 like an empty trie).
        self._snapshot_get = snapshot_get if snapshot_get is not None else (lambda key: 0)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(
        self,
        trace: TraceRecorder,
        parallel_writes: Dict[StateKey, int],
        parallel_receipts: List,
        serial_writes: Dict[StateKey, int],
        serial_receipts: List,
        scheduler: str = "?",
    ) -> OracleReport:
        report = OracleReport(scheduler=scheduler)
        report.stats.blocks_checked = 1
        self._check_state_root(report, parallel_writes, serial_writes)
        self._check_receipts(report, parallel_receipts, serial_receipts)
        self._check_version_order(report, trace)
        self._check_early_visibility(report, trace)
        report.stats.divergences = len(report.divergences)
        return report

    # ------------------------------------------------------------------
    # Check 1: state roots
    # ------------------------------------------------------------------

    def _check_state_root(self, report, parallel_writes, serial_writes) -> None:
        for key in set(parallel_writes) | set(serial_writes):
            snapshot_value = self._snapshot_get(key)
            got = parallel_writes.get(key, snapshot_value)
            want = serial_writes.get(key, snapshot_value)
            if got != want:
                report.fail(f"state mismatch at {key}: parallel={got} serial={want}")

    # ------------------------------------------------------------------
    # Check 2: receipts
    # ------------------------------------------------------------------

    def _check_receipts(self, report, parallel_receipts, serial_receipts) -> None:
        if len(parallel_receipts) != len(serial_receipts):
            report.fail(
                f"receipt count mismatch: parallel={len(parallel_receipts)} "
                f"serial={len(serial_receipts)}"
            )
            return
        for par, ser in zip(parallel_receipts, serial_receipts):
            if par.result.success != ser.result.success:
                report.fail(
                    f"tx {par.index}: success={par.result.success} "
                    f"(serial: {ser.result.success})"
                )
            elif par.result.gas_used != ser.result.gas_used:
                report.fail(
                    f"tx {par.index}: gas={par.result.gas_used} "
                    f"(serial: {ser.result.gas_used})"
                )

    # ------------------------------------------------------------------
    # Check 3: version order + conflict-graph acyclicity
    # ------------------------------------------------------------------

    def _live_publishes(self, trace) -> Dict[Tuple[int, StateKey], PublishEvent]:
        """Publishes still standing at end of block: the committed versions.

        A retraction nulls the publish; a re-publication after a retraction
        stands again — replay chronologically.
        """
        live: Dict[Tuple[int, StateKey], Optional[PublishEvent]] = {}
        for event in trace.events:
            if isinstance(event, PublishEvent):
                live[(event.tx, event.key)] = event
            elif isinstance(event, RetractEvent):
                live[(event.tx, event.key)] = None
        return {slot: pub for slot, pub in live.items() if pub is not None}

    def _check_version_order(self, report, trace) -> None:
        live = self._live_publishes(trace)
        abs_writers: Dict[StateKey, List[int]] = {}
        all_writers: Dict[StateKey, List[int]] = {}
        for (tx, key), pub in live.items():
            all_writers.setdefault(key, []).append(tx)
            if pub.kind == "abs":
                abs_writers.setdefault(key, []).append(tx)
        for writers in abs_writers.values():
            writers.sort()
        for writers in all_writers.values():
            writers.sort()

        edges: Set[Tuple[int, int]] = set()
        committed = trace.committed_reads()
        report.stats.reads_checked = len(committed)
        for read in committed:
            reader, key, observed = read.tx, read.key, read.version
            if observed >= reader:
                report.fail(
                    f"tx {reader} read {key} from later tx {observed}: "
                    "version order violated"
                )
                continue
            # Deterministic serializability fixes the expected version: the
            # latest committed absolute writer below the reader (commutative
            # delta versions stack on top without changing the base writer).
            expected = SNAPSHOT_VERSION
            for writer in abs_writers.get(key, ()):
                if writer >= reader:
                    break
                expected = writer
            if observed != expected:
                report.stats.stale_reads += 1
                report.fail(
                    f"tx {reader} read {key} from v{observed}, serial order "
                    f"requires v{expected}: stale read"
                )
            if observed >= 0:
                edges.add((observed, reader))  # reads-from
            # Anti-dependency: the reader precedes the next writer.
            for writer in all_writers.get(key, ()):
                if writer > reader:
                    edges.add((reader, writer))
                    break
        # Write-write order: consecutive committed writers per key.
        for key, writers in all_writers.items():
            for earlier, later in zip(writers, writers[1:]):
                edges.add((earlier, later))
        report.stats.conflict_edges = len(edges)

        backward = [(a, b) for a, b in edges if a >= b]
        if backward:
            report.fail(f"conflict graph has backward edges: {sorted(backward)[:5]}")
        elif not self._acyclic(edges):  # pragma: no cover - forward edges ⇒ acyclic
            report.fail("conflict graph is cyclic")

    @staticmethod
    def _acyclic(edges: Set[Tuple[int, int]]) -> bool:
        graph: Dict[int, List[int]] = {}
        for a, b in edges:
            graph.setdefault(a, []).append(b)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}
        for root in graph:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack = [(root, iter(graph.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, WHITE)
                    if state == GREY:
                        return False
                    if state == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(graph.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return True

    # ------------------------------------------------------------------
    # Check 4: early-write visibility hygiene
    # ------------------------------------------------------------------

    def _check_early_visibility(self, report, trace) -> None:
        report.stats.early_publishes = sum(
            1 for e in trace.events
            if isinstance(e, PublishEvent) and e.early
        )
        # For each (writer, key): the seq numbers at which that version was
        # retracted.  A read is doomed iff a retraction of the version it
        # observed happened *after* the read.
        retractions: Dict[Tuple[int, StateKey], List[int]] = {}
        for event in trace.events:
            if isinstance(event, RetractEvent):
                retractions.setdefault((event.tx, event.key), []).append(event.seq)
        if not retractions:
            return
        live = self._live_publishes(trace)
        finals = trace.final_attempts()
        for event in trace.events:
            if not isinstance(event, ReadEvent) or event.version < 0 or event.blind:
                # Blind commutative reads feed only the paired increment's
                # delta, which is base-independent — a doomed base is
                # harmless to them by construction.
                continue
            doomed = any(
                seq > event.seq
                for seq in retractions.get((event.version, event.key), ())
            )
            if not doomed:
                continue
            standing = live.get((event.version, event.key))
            if (
                standing is not None
                and standing.kind == "abs"
                and standing.value == event.value
            ):
                # The writer re-executed and re-published the same value for
                # this key (OCC does this routinely): the observed version
                # was re-established, not lost.
                continue
            report.doomed_reads.append(event)
            report.stats.doomed_reads += 1
            if event.attempt < finals.get(event.tx, 1):
                # The reader was aborted and re-executed after consuming the
                # doomed version: the retraction cascade repaired it.
                report.repaired_reads += 1
                report.stats.repaired_reads += 1
            else:
                message = (
                    f"tx {event.tx} (attempt {event.attempt}) committed a read "
                    f"of {event.key} v{event.version}, a version that was "
                    "later retracted: early-write visibility leaked an "
                    "aborted write"
                )
                report.unrepaired_violations.append(message)
                report.stats.unrepaired_violations += 1
                report.fail(message)


def check_block(
    executor,
    txs: List,
    snapshot,
    code_resolver,
    threads: int = 2,
    block=None,
    serial_executor=None,
) -> Tuple[OracleReport, TraceRecorder]:
    """Convenience driver: run ``executor`` under a fresh recorder, run the
    serial reference, and return (oracle report, the recorded trace).

    The executor's metrics gain an ``oracle`` field with the stats.
    """
    from ..executors.serial import SerialExecutor

    recorder = TraceRecorder()
    previous = executor.recorder
    executor.recorder = recorder
    try:
        parallel = executor.execute_block(
            txs, snapshot, code_resolver, threads=threads, block=block
        )
    finally:
        executor.recorder = previous
    serial = (serial_executor or SerialExecutor()).execute_block(
        txs, snapshot, code_resolver, threads=1, block=block
    )
    oracle = SerializabilityOracle(snapshot_get=snapshot.get)
    report = oracle.check(
        trace=recorder,
        parallel_writes=parallel.writes,
        parallel_receipts=parallel.receipts,
        serial_writes=serial.writes,
        serial_receipts=serial.receipts,
        scheduler=getattr(executor, "name", "?"),
    )
    parallel.metrics.oracle = report.stats
    return report, recorder
