"""Differential backend parity: sim vs threads vs processes.

The execution substrate (``repro.substrate``) promises that moving an
executor from the discrete-event simulator onto real threads or real
multiprocessing workers changes *nothing* observable: receipts, write
sets, and the sealed Merkle root must be byte-identical.  This module is
the independent check of that promise — ``python -m repro verify
--substrate`` sweeps every scenario preset × scheduler × real backend and
compares each run against the sim baseline field by field.

Receipt parity is defined on the *result* of each transaction —
``(index, status, gas_used, return_data, error, steps)`` — not on the
``attempts`` counter: how many times a transaction was optimistically
retried is a property of physical timing, which real backends are allowed
to vary, while everything the chain commits to is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..executors.dag import DAGExecutor
from ..executors.dmvcc import DMVCCExecutor
from ..executors.occ import OCCExecutor
from ..executors.serial import SerialExecutor
from ..substrate import SUBSTRATE_KINDS, get_substrate
from ..workload import Workload
from ..workload.scenarios import SCENARIO_NAMES, scenario_config

SUBSTRATE_SCHEDULERS = ("serial", "occ", "dag", "dmvcc")
REAL_BACKENDS = tuple(k for k in SUBSTRATE_KINDS if k != "sim")

# Scenario presets are sized for thousands of users; the parity sweep only
# needs enough traffic to exercise every protocol path, so it scales them
# down (the fuzz campaign owns breadth, this sweep owns backend parity).
PARITY_WORKLOAD = dict(
    users=60, erc20_tokens=3, dex_pools=2, nft_collections=2, icos=1
)


def receipt_digest(execution) -> List[Tuple]:
    """The committed-output fingerprint of a block execution.

    Everything consensus-visible, nothing timing-dependent (``attempts``
    varies with physical scheduling on real backends and is excluded).
    """
    return [
        (r.index, r.result.status.name, r.result.gas_used,
         r.result.return_data, r.result.error, r.result.steps)
        for r in execution.receipts
    ]


def _factories() -> Dict[str, Callable]:
    return {
        "serial": SerialExecutor,
        "occ": OCCExecutor,
        "dag": DAGExecutor,
        "dmvcc": DMVCCExecutor,
    }


@dataclass
class SubstrateCase:
    """One (scenario, scheduler, backend) run compared to its sim twin."""

    scenario: str
    scheduler: str
    backend: str
    ok: bool = True
    mismatches: List[str] = field(default_factory=list)
    wall_time: float = 0.0
    sim_wall_time: float = 0.0
    view_misses: int = 0
    worker_crashes: int = 0

    @property
    def label(self) -> str:
        return f"{self.scenario}/{self.scheduler}/{self.backend}"


@dataclass
class SubstrateReport:
    """Everything one ``verify --substrate`` sweep concluded."""

    workers: int = 0
    txs_per_block: int = 0
    cases: List[SubstrateCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> List[SubstrateCase]:
        return [case for case in self.cases if not case.ok]

    def render(self) -> str:
        lines = [
            f"substrate parity: {len(self.cases)} case(s), "
            f"{self.workers} worker(s), {self.txs_per_block} txs/block"
        ]
        for case in self.cases:
            status = "OK " if case.ok else "FAIL"
            lines.append(
                f"  [{status}] {case.scenario:16s} {case.scheduler:7s} "
                f"{case.backend:10s} wall={case.wall_time:7.3f}s "
                f"(sim {case.sim_wall_time:6.3f}s) "
                f"view_misses={case.view_misses} "
                f"crashes={case.worker_crashes}"
            )
            for mismatch in case.mismatches:
                lines.append(f"         ! {mismatch}")
        verdict = "OK" if self.ok else f"{len(self.failures)} case(s) DIVERGED"
        lines.append(f"substrate parity: {verdict}")
        return "\n".join(lines)


def _compare(case: SubstrateCase, workload, base, other) -> None:
    """Fill ``case`` with every divergence between sim and real output."""
    base_digest = receipt_digest(base)
    other_digest = receipt_digest(other)
    if base_digest != other_digest:
        bad = [i for i, (a, b) in enumerate(zip(base_digest, other_digest))
               if a != b]
        case.mismatches.append(
            f"receipts diverge at indices {bad[:8]}"
            + ("…" if len(bad) > 8 else "")
        )
    if base.writes != other.writes:
        keys = {k for k in set(base.writes) | set(other.writes)
                if base.writes.get(k) != other.writes.get(k)}
        case.mismatches.append(
            f"write sets diverge on {len(keys)} key(s)"
        )
    base_root = workload.db.fork().commit(base.writes).root_hash
    other_root = workload.db.fork().commit(other.writes).root_hash
    if base_root != other_root:
        case.mismatches.append(
            f"sealed roots diverge: {base_root.hex()[:16]} != "
            f"{other_root.hex()[:16]}"
        )
    case.ok = not case.mismatches


def run_substrate_verify(
    scenarios: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SUBSTRATE_SCHEDULERS,
    backends: Sequence[str] = REAL_BACKENDS,
    txs_per_block: int = 24,
    threads: int = 4,
    workers: int = 3,
    seed: int = 7,
    workload_overrides: Optional[dict] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SubstrateReport:
    """Sweep scenario × scheduler × backend; every real-backend run must
    reproduce the sim baseline's receipts, writes, and sealed root."""
    scenario_names = tuple(scenarios) if scenarios else SCENARIO_NAMES
    factories = _factories()
    unknown = [s for s in schedulers if s not in factories]
    if unknown:
        raise ValueError(f"unknown scheduler(s): {', '.join(unknown)}")
    overrides = dict(PARITY_WORKLOAD)
    overrides.update(workload_overrides or {})

    report = SubstrateReport(workers=workers, txs_per_block=txs_per_block)
    substrates = {kind: get_substrate(kind, workers=workers)
                  for kind in backends}
    try:
        for scenario in scenario_names:
            workload = Workload(
                scenario_config(scenario, seed=seed, **overrides))
            txs = workload.transactions(txs_per_block)
            snapshot = workload.db.latest
            resolver = workload.db.codes.code_of
            for name in schedulers:
                base = factories[name]().execute_block(
                    txs, snapshot, resolver, threads=threads)
                for kind in backends:
                    case = SubstrateCase(
                        scenario=scenario, scheduler=name, backend=kind)
                    execution = factories[name]().attach_substrate(
                        substrates[kind]).execute_block(
                            txs, snapshot, resolver, threads=threads)
                    case.wall_time = execution.metrics.wall_time
                    case.sim_wall_time = base.metrics.wall_time
                    case.view_misses = execution.metrics.view_misses
                    case.worker_crashes = execution.metrics.worker_crashes
                    _compare(case, workload, base, execution)
                    report.cases.append(case)
                    if progress is not None:
                        progress(
                            f"substrate: {case.label} "
                            + ("ok" if case.ok else "DIVERGED"))
    finally:
        for substrate in substrates.values():
            substrate.close()
    return report
