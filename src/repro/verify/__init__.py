"""Correctness backstop: trace recording, serializability oracle, fuzzing.

``repro.verify`` independently checks the repo's central claim — that every
parallel executor preserves deterministic serializability (Definition 2) —
instead of trusting the schedulers to be right:

* :mod:`.trace`  — a :class:`~repro.verify.trace.TraceRecorder` attached to
  any executor records every versioned read/write, publish, retraction,
  abort, and completion;
* :mod:`.oracle` — replays a trace against the serial baseline: conflict
  graph acyclicity, state-root and receipt equivalence, and early-write
  visibility hygiene (no committed read of a retracted version);
* :mod:`.fuzz`   — differential fuzzing of Serial vs DAG vs OCC vs DMVCC
  over randomized workloads, with greedy block minimization on divergence;
* :mod:`.crash`  — crash-recovery fuzzing of the durable storage engine
  (``repro.db``): seeded random blocks, a fault-injected crash at a random
  byte offset, and a recovery check against an in-memory twin;
* :mod:`.substrate` — differential backend parity: every scenario preset ×
  scheduler run on real threads and real multiprocessing workers must
  reproduce the discrete-event simulator's receipts, writes, and sealed
  root byte-for-byte;
* :mod:`.shard` — differential sharding parity: every scenario preset ×
  backend run under the sharded executor (plain and merge-declared) must
  reproduce the serial reference byte-for-byte.
"""

from .trace import TraceRecorder
from .oracle import OracleReport, SerializabilityOracle, check_block
from .fuzz import DifferentialFuzzer, FuzzReport
from .crash import CrashReport, run_crash_campaign
from .substrate import SubstrateReport, run_substrate_verify
from .shard import ShardReport, run_shard_verify

__all__ = [
    "TraceRecorder",
    "OracleReport",
    "SerializabilityOracle",
    "check_block",
    "DifferentialFuzzer",
    "FuzzReport",
    "CrashReport",
    "run_crash_campaign",
    "SubstrateReport",
    "run_substrate_verify",
    "ShardReport",
    "run_shard_verify",
]
