"""Crash-recovery fuzz campaign for the durable storage engine.

Each case builds a durable StateDB and an in-memory twin, commits the same
K random blocks to both, then reopens the durable store with a fault plan
armed to kill the log after a seeded random number of bytes and attempts
one more commit.  Two outcomes are possible and both are checked:

* the injected crash fired mid-append — reopening the store must recover
  exactly the last *committed* state: same height, a root byte-identical
  to the in-memory twin's, every key readable, and no trace of the partial
  block;
* the byte budget exceeded the block's append size, so the commit actually
  completed — then recovery must surface the *new* root instead.

Offsets are drawn uniformly over the append window (including tiny values
that tear the very first node record and values landing inside the commit
marker itself), which over a campaign exercises a crash at effectively
every byte offset of the log — acceptance criterion of the ``repro.db``
subsystem.  ``python -m repro verify --crash-recovery N`` runs this; CI
runs a 100-block campaign.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.types import Address, StateKey
from ..db.faults import FaultPlan, InjectedCrash
from ..state.statedb import StateDB

DEFAULT_CRASH_SEED = 0xC0FFEE


@dataclass
class CrashFailure:
    """One case where recovery did not restore the committed state."""

    seed: int
    offset: int
    crashed: bool
    detail: str

    def render(self) -> str:
        mode = "crashed" if self.crashed else "survived"
        return (
            f"seed={self.seed} offset={self.offset} ({mode}): {self.detail}"
        )


@dataclass
class CrashReport:
    """Aggregate outcome of a crash-recovery campaign."""

    cases: int = 0
    crashes: int = 0          # cases where the injected crash actually fired
    survivals: int = 0        # budget exceeded the append: commit completed
    failures: List[CrashFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"crash-recovery: {self.cases} case(s), {self.crashes} torn "
            f"mid-commit, {self.survivals} completed under budget: "
            f"{'all recovered' if self.ok else 'RECOVERY FAILED'}"
        ]
        lines.extend("  " + failure.render() for failure in self.failures)
        return "\n".join(lines)


def _random_writes(rng: random.Random, count: int):
    writes = {}
    for _ in range(count):
        owner = Address.derive(f"crash-user-{rng.randrange(12)}")
        key = StateKey(owner, rng.randrange(8))
        # Zeros included: slot prunes must survive crashes too.
        writes[key] = rng.choice([0, rng.randrange(1, 10**9)])
    return writes


def _state_items(db: StateDB):
    return sorted(db.latest.items())


def run_crash_campaign(
    blocks: int,
    base_seed: int = DEFAULT_CRASH_SEED,
    progress: Optional[Callable[[str], None]] = None,
) -> CrashReport:
    """Run ``blocks`` independent crash cases; see the module docstring."""
    report = CrashReport()
    for i in range(blocks):
        seed = base_seed + i
        rng = random.Random(seed)
        tmp = tempfile.mkdtemp(prefix="repro-crash-")
        try:
            _run_case(seed, rng, tmp, report)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        if progress is not None and (i + 1) % 20 == 0:
            progress(f"{i + 1}/{blocks} crash cases")
    return report


def _run_case(seed: int, rng: random.Random, tmp: str, report: CrashReport) -> None:
    report.cases += 1
    committed_blocks = rng.randint(2, 5)
    writes_per_block = rng.randint(4, 16)

    memory = StateDB()
    durable = StateDB.open(tmp)
    for _ in range(committed_blocks):
        batch = _random_writes(rng, writes_per_block)
        memory.commit(batch)
        durable.commit(batch)
    durable.close()
    committed_root = memory.latest.root_hash

    # Arm the crash: the budget may tear the first node record, land inside
    # the commit marker, or exceed the whole append (commit completes).
    offset = rng.randint(1, 4096)
    crashed = False
    extra = _random_writes(rng, writes_per_block)
    wounded = StateDB.open(tmp, faults=FaultPlan(crash_after_bytes=offset))
    try:
        wounded.commit(extra)
    except InjectedCrash:
        crashed = True
    # Simulated process death: the wounded handle is abandoned, not closed.

    if crashed:
        report.crashes += 1
        expected_root = committed_root
        expected_height = committed_blocks
        expected_db = memory
    else:
        report.survivals += 1
        memory.commit(extra)
        expected_root = memory.latest.root_hash
        expected_height = committed_blocks + 1
        expected_db = memory

    recovered = StateDB.open(tmp)
    try:
        if recovered.height != expected_height:
            report.failures.append(CrashFailure(
                seed, offset, crashed,
                f"recovered height {recovered.height}, "
                f"expected {expected_height}",
            ))
            return
        if recovered.latest.root_hash != expected_root:
            report.failures.append(CrashFailure(
                seed, offset, crashed,
                f"recovered root {recovered.latest.root_hash.hex()[:16]} != "
                f"expected {expected_root.hex()[:16]}",
            ))
            return
        if _state_items(recovered) != _state_items(expected_db):
            report.failures.append(CrashFailure(
                seed, offset, crashed,
                "recovered contents differ from the in-memory twin",
            ))
    finally:
        recovered.close()
