"""Differential fuzzing: Serial vs DAG vs OCC vs DMVCC across random blocks.

Each fuzz case derives a :class:`~repro.workload.WorkloadConfig` from its
seed — varying user counts, hot-key skew, commutative-increment density
(exchange deposits, liquidity adds, ICO contributions), and abort-inducing
scarcity (small token balances make transfers revert data-dependently) —
generates one block, and runs it through every parallel executor under the
serializability oracle.

On divergence the failing block is shrunk by greedy ddmin-style
minimization (drop chunks, then single transactions, while the divergence
persists), so a failure reproduces as a short, seeded transaction list:

    repro.verify.fuzz reproduces any case from (seed, scheduler) alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..evm.environment import BlockContext
from ..sim.metrics import OracleStats
from .oracle import OracleReport, SerializabilityOracle
from .trace import TraceRecorder

DEFAULT_BASE_SEED = 0xD34DBEEF


@dataclass
class Divergence:
    """One confirmed executor/serial disagreement, minimized."""

    seed: int
    scheduler: str
    threads: int
    report: OracleReport
    block_size: int
    minimized_size: int
    minimized_labels: List[str] = field(default_factory=list)

    def render(self) -> str:
        labels = ", ".join(self.minimized_labels)
        return (
            f"seed={self.seed} scheduler={self.scheduler} "
            f"threads={self.threads} "
            f"minimized {self.block_size}->{self.minimized_size} txs [{labels}]\n"
            + "\n".join(f"    {d}" for d in self.report.divergences)
        )


@dataclass
class CommitMismatch:
    """An overlay-sealed root that differed from the legacy per-key root."""

    seed: int
    overlay_root: str
    legacy_root: str

    def render(self) -> str:
        return (
            f"commit mismatch at seed={self.seed}: "
            f"overlay={self.overlay_root[:16]} != legacy={self.legacy_root[:16]}"
        )


@dataclass
class DurableMismatch:
    """A durable-backend root that differed from the in-memory root, or a
    recovery that failed to reproduce the sealed root byte-for-byte."""

    seed: int
    stage: str        # "commit" or "recovery"
    durable_root: str
    memory_root: str

    def render(self) -> str:
        return (
            f"durable {self.stage} mismatch at seed={self.seed}: "
            f"durable={self.durable_root[:16]} != memory={self.memory_root[:16]}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing campaign."""

    blocks: int = 0
    checks: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    stats: Dict[str, OracleStats] = field(default_factory=dict)
    commit_checks: int = 0
    commit_mismatches: List[CommitMismatch] = field(default_factory=list)
    durable_checks: int = 0
    durable_mismatches: List[DurableMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.divergences
            and not self.commit_mismatches
            and not self.durable_mismatches
        )

    def render(self) -> str:
        lines = [
            f"fuzzed {self.blocks} block(s), {self.checks} differential "
            f"check(s): {'all serializable' if self.ok else 'DIVERGED'}"
        ]
        lines.append(
            f"  [commit] {self.commit_checks} overlay-vs-legacy root "
            f"check(s), {len(self.commit_mismatches)} mismatch(es)"
        )
        if self.durable_checks:
            lines.append(
                f"  [durable] {self.durable_checks} on-disk-vs-memory root "
                f"check(s) incl. reopen/recovery, "
                f"{len(self.durable_mismatches)} mismatch(es)"
            )
        for name in sorted(self.stats):
            lines.append(f"  [{name}] {self.stats[name].summary()}")
        for mismatch in self.commit_mismatches:
            lines.append("  " + mismatch.render())
        for mismatch in self.durable_mismatches:
            lines.append("  " + mismatch.render())
        for divergence in self.divergences:
            lines.append("  " + divergence.render())
        return "\n".join(lines)


def default_executor_factories() -> Dict[str, Callable[[], object]]:
    from ..executors.dag import DAGExecutor
    from ..executors.dmvcc import DMVCCExecutor
    from ..executors.occ import OCCExecutor

    return {
        "dag": lambda: DAGExecutor(),
        "occ": lambda: OCCExecutor(),
        "dmvcc": lambda: DMVCCExecutor(),
    }


class DifferentialFuzzer:
    """Generate random blocks; compare every executor against serial."""

    def __init__(
        self,
        factories: Optional[Dict[str, Callable[[], object]]] = None,
        txs_per_block: int = 24,
        minimize: bool = True,
        max_minimize_runs: int = 120,
        backend: str = "memory",
        scenarios: Optional[List[str]] = None,
    ) -> None:
        if backend not in ("memory", "durable"):
            raise ValueError(f"unknown backend {backend!r}")
        self.factories = factories if factories is not None else default_executor_factories()
        self.txs_per_block = txs_per_block
        self.minimize = minimize
        self.max_minimize_runs = max_minimize_runs
        self.backend = backend
        if scenarios:
            from ..workload.scenarios import SCENARIOS

            unknown = [s for s in scenarios if s not in SCENARIOS]
            if unknown:
                raise ValueError(
                    f"unknown scenario(s): {', '.join(unknown)} "
                    f"(choose from {', '.join(SCENARIOS)})"
                )
        self.scenarios: List[str] = list(scenarios or [])

    # ------------------------------------------------------------------
    # Case generation
    # ------------------------------------------------------------------

    def _random_config(self, rng: random.Random, seed: int):
        """A small randomized workload: hot-key skew, commutative traffic,
        and data-dependent failures all vary with the seed."""
        from ..workload.generator import WorkloadConfig

        return WorkloadConfig(
            users=rng.randint(4, 24),
            erc20_tokens=rng.randint(1, 3),
            dex_pools=rng.randint(1, 2),
            nft_collections=rng.randint(1, 2),
            icos=1,
            contract_fraction=rng.choice([0.5, 0.7, 0.9]),
            hot_access_prob=rng.choice([0.0, 0.3, 0.8]),
            hot_contract_count=1,
            capped_ico=rng.random() < 0.5,
            exchange_deposit_prob=rng.choice([0.2, 0.8]),
            liquidity_prob=rng.choice([0.2, 0.8]),
            nft_mint_prob=rng.choice([0.2, 0.7]),
            zipf_alpha=rng.choice([0.0, 1.1]),
            # Scarce balances make transfer/swap success data-dependent on
            # earlier transactions in the block: abort-inducing branches.
            token_funds=rng.choice([300, 2_000, 10**12]),
            seed=seed,
        )

    def case(self, seed: int):
        """Deterministically regenerate a fuzz case from its seed alone:
        ``(workload, txs, threads)``.  Public so failure artifacts (oracle
        reports, execution traces) can be reproduced outside a campaign."""
        from ..workload.generator import Workload

        rng = random.Random(seed)
        config = self._random_config(rng, seed)
        if self.scenarios:
            # Overlay one of the adversarial scenario presets on the
            # randomized base config, keeping everything else seeded.
            import dataclasses

            from ..workload.scenarios import scenario_config

            preset = scenario_config(rng.choice(self.scenarios))
            config = dataclasses.replace(
                config,
                scenario=preset.scenario,
                scenario_fraction=preset.scenario_fraction,
            )
        workload = Workload(config)
        txs = workload.transactions(self.txs_per_block)
        threads = rng.choice([2, 3, 4, 8])
        return workload, txs, threads

    # Backwards-compatible internal alias.
    _case = case

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    @staticmethod
    def _run_pair(executor, txs, snapshot, resolver, threads, block, serial_out):
        recorder = TraceRecorder()
        executor.recorder = recorder
        parallel = executor.execute_block(
            txs, snapshot, resolver, threads=threads, block=block
        )
        oracle = SerializabilityOracle(snapshot_get=snapshot.get)
        report = oracle.check(
            trace=recorder,
            parallel_writes=parallel.writes,
            parallel_receipts=parallel.receipts,
            serial_writes=serial_out.writes,
            serial_receipts=serial_out.receipts,
            scheduler=getattr(executor, "name", "?"),
        )
        return report

    def _check_once(self, name, txs, snapshot, resolver, threads, block):
        """Run scheduler ``name`` on ``txs`` against a fresh serial
        reference; returns the oracle report."""
        from ..executors.serial import SerialExecutor

        serial_out = SerialExecutor().execute_block(
            txs, snapshot, resolver, threads=1, block=block
        )
        executor = self.factories[name]()
        return self._run_pair(
            executor, txs, snapshot, resolver, threads, block, serial_out
        )

    def _minimize(self, name, txs, snapshot, resolver, threads, block):
        """Greedy shrink: keep removing chunks while the divergence holds."""
        runs = 0
        chunk = max(len(txs) // 2, 1)
        while chunk >= 1 and runs < self.max_minimize_runs:
            shrunk = False
            start = 0
            while start < len(txs) and runs < self.max_minimize_runs:
                candidate = txs[:start] + txs[start + chunk:]
                if not candidate:
                    start += chunk
                    continue
                runs += 1
                if not self._check_once(
                    name, candidate, snapshot, resolver, threads, block
                ).ok:
                    txs = candidate
                    shrunk = True
                else:
                    start += chunk
            if not shrunk or chunk == 1:
                if chunk == 1:
                    break
            chunk = max(chunk // 2, 1)
        return txs

    # ------------------------------------------------------------------
    # Commit-path differential
    # ------------------------------------------------------------------

    @staticmethod
    def _check_commit(workload, writes, seed, report, progress) -> None:
        """Seal the block's write batch through both commit paths — the
        dirty-node overlay and the legacy per-key trie inserts — on forks of
        the same StateDB, and assert the roots are byte-identical."""
        overlay_root = workload.db.fork().commit(writes).root_hash
        legacy_root = workload.db.fork().commit(writes, legacy=True).root_hash
        report.commit_checks += 1
        if overlay_root != legacy_root:
            report.commit_mismatches.append(CommitMismatch(
                seed=seed,
                overlay_root=overlay_root.hex(),
                legacy_root=legacy_root.hex(),
            ))
            if progress is not None:
                progress(f"commit-path root mismatch at seed {seed}")

    @staticmethod
    def _check_durable(workload, writes, seed, report, progress) -> None:
        """Seal the same contents through the on-disk engine in a scratch
        directory and assert three roots agree byte-for-byte: the durable
        root, the in-memory root, and the root recovered by reopening the
        store (a full log replay)."""
        import shutil
        import tempfile

        from ..core.encoding import encode_int
        from ..db.engine import DurableBackend
        from ..trie.mpt import NodeStore, Trie

        memory_root = workload.db.fork().commit(writes).root_hash
        tmp = tempfile.mkdtemp(prefix="repro-verify-db-")
        try:
            store = NodeStore(DurableBackend(tmp))
            trie = Trie(store)
            trie.commit_batch(workload.db.latest.items())
            store.commit_root(trie.root, 0)
            trie.commit_batch(
                (k.trie_key(), encode_int(v)) for k, v in writes.items()
            )
            store.commit_root(trie.root, 1)
            durable_root = trie.root_hash
            store.close()
            report.durable_checks += 1
            if durable_root != memory_root:
                report.durable_mismatches.append(DurableMismatch(
                    seed=seed, stage="commit",
                    durable_root=durable_root.hex(),
                    memory_root=memory_root.hex(),
                ))
                if progress is not None:
                    progress(f"durable commit root mismatch at seed {seed}")
                return
            reopened = DurableBackend(tmp)
            recovered = reopened.roots[-1][1]
            recovered_trie = Trie(NodeStore(reopened), recovered)
            recovered_root = recovered_trie.root_hash
            # Recovery must also leave every node reachable, not just the
            # root hash intact.
            for _ in recovered_trie.items():
                pass
            reopened.close()
            if recovered_root != memory_root:
                report.durable_mismatches.append(DurableMismatch(
                    seed=seed, stage="recovery",
                    durable_root=recovered_root.hex(),
                    memory_root=memory_root.hex(),
                ))
                if progress is not None:
                    progress(f"durable recovery root mismatch at seed {seed}")
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------

    def run(
        self,
        blocks: int,
        base_seed: int = DEFAULT_BASE_SEED,
        progress: Optional[Callable[[str], None]] = None,
    ) -> FuzzReport:
        from ..executors.serial import SerialExecutor

        report = FuzzReport()
        for name in self.factories:
            report.stats[name] = OracleStats()
        block_ctx = BlockContext()
        for i in range(blocks):
            seed = base_seed + i
            workload, txs, threads = self._case(seed)
            snapshot = workload.db.latest
            resolver = workload.db.codes.code_of
            serial_out = SerialExecutor().execute_block(
                txs, snapshot, resolver, threads=1, block=block_ctx
            )
            report.blocks += 1
            self._check_commit(workload, serial_out.writes, seed, report, progress)
            if self.backend == "durable":
                self._check_durable(
                    workload, serial_out.writes, seed, report, progress
                )
            for name in self.factories:
                executor = self.factories[name]()
                verdict = self._run_pair(
                    executor, txs, snapshot, resolver, threads, block_ctx,
                    serial_out,
                )
                report.checks += 1
                report.stats[name].merge_from(verdict.stats)
                if verdict.ok:
                    continue
                minimized = txs
                if self.minimize:
                    minimized = self._minimize(
                        name, txs, snapshot, resolver, threads, block_ctx
                    )
                    verdict = self._check_once(
                        name, minimized, snapshot, resolver, threads, block_ctx
                    )
                report.divergences.append(Divergence(
                    seed=seed,
                    scheduler=name,
                    threads=threads,
                    report=verdict,
                    block_size=len(txs),
                    minimized_size=len(minimized),
                    minimized_labels=[tx.label for tx in minimized],
                ))
                if progress is not None:
                    progress(f"divergence at seed {seed} [{name}]")
            if progress is not None and (i + 1) % 10 == 0:
                progress(f"{i + 1}/{blocks} blocks fuzzed")
        return report
