"""Exception hierarchy shared across the library.

Every subsystem raises subclasses of :class:`ReproError`, so callers can
catch library failures without accidentally swallowing programming errors.
VM-level halts (revert, out-of-gas, ...) are modelled separately because they
are *normal* outcomes of contract execution, not library bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


# --------------------------------------------------------------------------
# Trie / state errors
# --------------------------------------------------------------------------

class TrieError(ReproError):
    """Structural failure inside the Merkle Patricia Trie."""


class MissingNodeError(TrieError):
    """A node referenced by hash is absent from the backing store."""


class StateError(ReproError):
    """Invalid state access (unknown account, bad snapshot, ...)."""


class UnknownSnapshotError(StateError):
    """Requested a state snapshot that was never created."""


# --------------------------------------------------------------------------
# VM halts: expected terminations of contract execution
# --------------------------------------------------------------------------

class VMHalt(ReproError):
    """Base class for abnormal-but-expected VM terminations."""


class OutOfGas(VMHalt):
    """Execution exhausted its gas allowance."""


class Revert(VMHalt):
    """Execution reverted explicitly (require/revert)."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason


class AssertionFailure(VMHalt):
    """A contract ``assert`` failed (consumes all gas, like INVALID)."""


class StackUnderflow(VMHalt):
    """Popped more items than the stack holds."""


class StackOverflow(VMHalt):
    """Exceeded the 1024-item EVM stack limit."""


class InvalidJump(VMHalt):
    """Jumped to a destination that is not a JUMPDEST."""


class InvalidOpcode(VMHalt):
    """Encountered an undefined opcode byte."""


class CallDepthExceeded(VMHalt):
    """Nested message calls exceeded the depth limit."""


# --------------------------------------------------------------------------
# Compiler errors
# --------------------------------------------------------------------------

class CompileError(ReproError):
    """Base class for Minisol compilation failures."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexError(CompileError):
    """Tokenisation failure."""


class ParseError(CompileError):
    """Syntactic failure."""


class TypeError_(CompileError):
    """Semantic/type failure (named with a trailing underscore to avoid
    shadowing the builtin)."""


# --------------------------------------------------------------------------
# Analysis / scheduling errors
# --------------------------------------------------------------------------

class AnalysisError(ReproError):
    """Static or dynamic analysis failure."""


class SchedulingError(ReproError):
    """Invariant violation inside the concurrency-control machinery."""


class ExecutionAborted(ReproError):
    """A transaction execution was aborted by the scheduler (it read a
    version that later became stale or invalid) and must be re-executed."""

    def __init__(self, tx_index: int, reason: str = "") -> None:
        super().__init__(f"transaction {tx_index} aborted: {reason or 'stale read'}")
        self.tx_index = tx_index
        self.reason = reason


# --------------------------------------------------------------------------
# Chain errors
# --------------------------------------------------------------------------

class ChainError(ReproError):
    """Blockchain-substrate failure (bad block, invalid tx, ...)."""


class InvalidTransaction(ChainError):
    """Transaction failed stateless or stateful validation."""


class InvalidBlock(ChainError):
    """Block failed validation (bad parent, root mismatch, ...)."""
