"""Shared value types: addresses and state-item keys.

A *state item* (Definition 1 in the paper) is one 256-bit storage slot of one
contract.  :class:`StateKey` is the canonical identity of such an item across
every layer of the system — analysis read/write sets, access sequences, the
StateDB, and the trie all speak in ``StateKey``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hashing import keccak
from .words import word_to_bytes

ADDRESS_BYTES = 20


@dataclass(frozen=True, order=True)
class Address:
    """A 20-byte account address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << (8 * ADDRESS_BYTES)):
            raise ValueError(f"address out of range: {self.value:#x}")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Address":
        if len(data) > ADDRESS_BYTES:
            raise ValueError(f"address too long: {len(data)} bytes")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        return cls(int(text.removeprefix("0x"), 16))

    @classmethod
    def derive(cls, label: str) -> "Address":
        """Deterministically derive an address from a human-readable label.

        Used by tests, examples, and the workload generator so account
        identities are stable across runs.
        """
        digest = keccak(label.encode("utf-8"))
        return cls.from_bytes(digest[-ADDRESS_BYTES:])

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(ADDRESS_BYTES, "big")

    def to_word(self) -> int:
        return self.value

    def __str__(self) -> str:
        return f"0x{self.value:040x}"

    def __repr__(self) -> str:
        return f"Address({self})"


@dataclass(frozen=True, order=True)
class StateKey:
    """Identity of one state item: ``(contract address, storage slot)``.

    The special ``BALANCE_SLOT`` marks the pseudo-slot holding an account's
    Ether balance, so plain value transfers participate in the same
    concurrency control as contract storage (the paper treats non-contract
    transactions as scheduling constraints the same way).
    """

    address: Address
    slot: int

    BALANCE_SLOT = -1
    NONCE_SLOT = -2

    @classmethod
    def balance(cls, address: Address) -> "StateKey":
        return cls(address, cls.BALANCE_SLOT)

    @classmethod
    def nonce(cls, address: Address) -> "StateKey":
        return cls(address, cls.NONCE_SLOT)

    @property
    def is_balance(self) -> bool:
        return self.slot == self.BALANCE_SLOT

    @property
    def is_nonce(self) -> bool:
        return self.slot == self.NONCE_SLOT

    def trie_key(self) -> bytes:
        """Stable byte encoding used as the Merkle trie key."""
        if self.slot == self.BALANCE_SLOT:
            suffix = b"balance"
        elif self.slot == self.NONCE_SLOT:
            suffix = b"nonce"
        else:
            suffix = word_to_bytes(self.slot)
        return self.address.to_bytes() + suffix

    def __str__(self) -> str:
        if self.is_balance:
            return f"{self.address}.balance"
        if self.is_nonce:
            return f"{self.address}.nonce"
        return f"{self.address}[{self.slot:#x}]"
