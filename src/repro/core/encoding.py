"""A compact RLP-style serialisation used for hashing structures.

Ethereum hashes RLP-encoded structures (block headers, trie nodes).  We
implement RLP faithfully: it is simple, canonical (a given structure has
exactly one encoding), and self-delimiting, which is what Merkle hashing
needs.  Items are either ``bytes`` or (recursively) lists of items.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from .errors import ReproError

RLPItem = Union[bytes, Sequence["RLPItem"]]

_SINGLE_BYTE_MAX = 0x7F
_SHORT_STRING_OFFSET = 0x80
_LONG_STRING_OFFSET = 0xB7
_SHORT_LIST_OFFSET = 0xC0
_LONG_LIST_OFFSET = 0xF7
_SHORT_LENGTH_MAX = 55


class RLPDecodeError(ReproError):
    """Malformed RLP input."""


def _encode_length(length: int, short_offset: int, long_offset: int) -> bytes:
    if length <= _SHORT_LENGTH_MAX:
        return bytes([short_offset + length])
    length_bytes = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([long_offset + len(length_bytes)]) + length_bytes


def rlp_encode(item: RLPItem) -> bytes:
    """Encode bytes or a nested list of bytes into canonical RLP."""
    if isinstance(item, (bytes, bytearray)):
        data = bytes(item)
        if len(data) == 1 and data[0] <= _SINGLE_BYTE_MAX:
            return data
        return _encode_length(len(data), _SHORT_STRING_OFFSET, _LONG_STRING_OFFSET) + data
    if isinstance(item, (list, tuple)):
        payload = b"".join(rlp_encode(sub) for sub in item)
        return _encode_length(len(payload), _SHORT_LIST_OFFSET, _LONG_LIST_OFFSET) + payload
    raise TypeError(f"cannot RLP-encode {type(item).__name__}")


def rlp_decode(data: bytes) -> RLPItem:
    """Decode canonical RLP; rejects trailing bytes."""
    item, consumed = _decode_item(data, 0)
    if consumed != len(data):
        raise RLPDecodeError(f"trailing bytes after RLP item ({len(data) - consumed})")
    return item


def _decode_item(data: bytes, offset: int) -> "tuple[RLPItem, int]":
    if offset >= len(data):
        raise RLPDecodeError("unexpected end of input")
    prefix = data[offset]
    if prefix <= _SINGLE_BYTE_MAX:
        return bytes([prefix]), offset + 1
    if prefix <= _LONG_STRING_OFFSET:
        length = prefix - _SHORT_STRING_OFFSET
        return _read_span(data, offset + 1, length), offset + 1 + length
    if prefix < _SHORT_LIST_OFFSET:
        length, start = _read_long_length(data, offset, prefix - _LONG_STRING_OFFSET)
        return _read_span(data, start, length), start + length
    if prefix <= _LONG_LIST_OFFSET:
        length = prefix - _SHORT_LIST_OFFSET
        return _decode_list(data, offset + 1, length)
    length, start = _read_long_length(data, offset, prefix - _LONG_LIST_OFFSET)
    return _decode_list(data, start, length)


def _read_long_length(data: bytes, offset: int, length_of_length: int) -> "tuple[int, int]":
    end = offset + 1 + length_of_length
    if end > len(data):
        raise RLPDecodeError("truncated length prefix")
    length = int.from_bytes(data[offset + 1 : end], "big")
    return length, end


def _read_span(data: bytes, start: int, length: int) -> bytes:
    end = start + length
    if end > len(data):
        raise RLPDecodeError("truncated payload")
    return data[start:end]


def _decode_list(data: bytes, start: int, length: int) -> "tuple[List[RLPItem], int]":
    end = start + length
    if end > len(data):
        raise RLPDecodeError("truncated list payload")
    items: List[RLPItem] = []
    cursor = start
    while cursor < end:
        item, cursor = _decode_item(data, cursor)
        if cursor > end:
            raise RLPDecodeError("list item overruns list payload")
        items.append(item)
    return items, end


def encode_int(value: int) -> bytes:
    """Canonical integer encoding: big-endian with no leading zeros."""
    if value < 0:
        raise ValueError("RLP integers are unsigned")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_int(data: bytes) -> int:
    if data[:1] == b"\x00" and len(data) > 1:
        raise RLPDecodeError("non-canonical integer (leading zero)")
    return int.from_bytes(data, "big")
