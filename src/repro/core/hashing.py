"""Hashing primitives.

Ethereum uses Keccak-256.  The Python standard library ships SHA3-256 (the
finalised FIPS-202 variant, which differs from Keccak only in padding); since
this reproduction never needs to interoperate with mainnet data, SHA3-256 is a
faithful stand-in: it is a 256-bit collision-resistant hash with the same
interface and the same role in storage-slot derivation and Merkle hashing.
"""

from __future__ import annotations

import hashlib

from .words import WORD_BYTES, bytes_to_word, word_to_bytes

HASH_BYTES = 32
EMPTY_HASH = hashlib.sha3_256(b"").digest()


def keccak(data: bytes) -> bytes:
    """Hash arbitrary bytes to a 32-byte digest (SHA3-256 stand-in)."""
    return hashlib.sha3_256(data).digest()


def keccak_hex(data: bytes) -> str:
    """Hex digest convenience wrapper."""
    return keccak(data).hex()


def hash_words(*values: int) -> int:
    """Hash a sequence of 256-bit words into a single word.

    This mirrors Solidity's ``keccak256(abi.encode(...))`` used for mapping
    and dynamic-array slot derivation.
    """
    payload = b"".join(word_to_bytes(v) for v in values)
    return bytes_to_word(keccak(payload))


def mapping_slot(key: int, base_slot: int) -> int:
    """Storage slot of ``mapping[key]`` stored at ``base_slot``.

    Solidity layout rule: ``keccak256(h(key) . h(base_slot))``.
    """
    return hash_words(key, base_slot)


def array_data_slot(base_slot: int) -> int:
    """First data slot of a dynamic array whose length lives at ``base_slot``.

    Solidity layout rule: data begins at ``keccak256(base_slot)``.
    """
    return hash_words(base_slot)


def array_element_slot(base_slot: int, index: int) -> int:
    """Storage slot of ``array[index]`` for a dynamic array at ``base_slot``."""
    return (array_data_slot(base_slot) + index) % (1 << (8 * WORD_BYTES))
