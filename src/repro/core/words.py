"""256-bit word arithmetic used throughout the EVM and state layers.

The EVM operates on unsigned 256-bit words with wrap-around semantics.  All
helpers here are pure functions on Python ints constrained to the range
``[0, 2**256)``.  Signed interpretations use two's complement.
"""

from __future__ import annotations

WORD_BITS = 256
WORD_BYTES = WORD_BITS // 8
WORD_MOD = 1 << WORD_BITS
WORD_MAX = WORD_MOD - 1
SIGN_BIT = 1 << (WORD_BITS - 1)


def to_word(value: int) -> int:
    """Wrap an arbitrary Python int into an unsigned 256-bit word."""
    return value & WORD_MAX


def to_signed(value: int) -> int:
    """Interpret an unsigned word as a two's-complement signed integer."""
    value = to_word(value)
    if value >= SIGN_BIT:
        return value - WORD_MOD
    return value


def from_signed(value: int) -> int:
    """Encode a signed integer into its two's-complement word form."""
    return to_word(value)


def add(a: int, b: int) -> int:
    return (a + b) & WORD_MAX


def sub(a: int, b: int) -> int:
    return (a - b) & WORD_MAX


def mul(a: int, b: int) -> int:
    return (a * b) & WORD_MAX


def div(a: int, b: int) -> int:
    """Unsigned division; division by zero yields zero (EVM semantics)."""
    if b == 0:
        return 0
    return (a // b) & WORD_MAX


def sdiv(a: int, b: int) -> int:
    """Signed division truncating toward zero; division by zero yields zero."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return from_signed(quotient)


def mod(a: int, b: int) -> int:
    """Unsigned modulo; modulo by zero yields zero (EVM semantics)."""
    if b == 0:
        return 0
    return a % b


def smod(a: int, b: int) -> int:
    """Signed modulo whose result takes the sign of the dividend."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    result = abs(sa) % abs(sb)
    if sa < 0:
        result = -result
    return from_signed(result)


def addmod(a: int, b: int, n: int) -> int:
    if n == 0:
        return 0
    return (a + b) % n


def mulmod(a: int, b: int, n: int) -> int:
    if n == 0:
        return 0
    return (a * b) % n


def exp(base: int, exponent: int) -> int:
    return pow(base, exponent, WORD_MOD)


def lt(a: int, b: int) -> int:
    return 1 if a < b else 0


def gt(a: int, b: int) -> int:
    return 1 if a > b else 0


def slt(a: int, b: int) -> int:
    return 1 if to_signed(a) < to_signed(b) else 0


def sgt(a: int, b: int) -> int:
    return 1 if to_signed(a) > to_signed(b) else 0


def eq(a: int, b: int) -> int:
    return 1 if a == b else 0


def iszero(a: int) -> int:
    return 1 if a == 0 else 0


def bitwise_and(a: int, b: int) -> int:
    return a & b


def bitwise_or(a: int, b: int) -> int:
    return a | b


def bitwise_xor(a: int, b: int) -> int:
    return a ^ b


def bitwise_not(a: int) -> int:
    return (~a) & WORD_MAX


def shl(shift: int, value: int) -> int:
    """Shift ``value`` left by ``shift`` bits (zero when shift >= 256)."""
    if shift >= WORD_BITS:
        return 0
    return (value << shift) & WORD_MAX


def shr(shift: int, value: int) -> int:
    """Logical right shift (zero when shift >= 256)."""
    if shift >= WORD_BITS:
        return 0
    return value >> shift


def sar(shift: int, value: int) -> int:
    """Arithmetic right shift preserving the sign bit."""
    signed = to_signed(value)
    if shift >= WORD_BITS:
        return WORD_MAX if signed < 0 else 0
    return from_signed(signed >> shift)


def byte(index: int, value: int) -> int:
    """Extract the ``index``-th byte (big-endian, 0 is most significant)."""
    if index >= WORD_BYTES:
        return 0
    shift = 8 * (WORD_BYTES - 1 - index)
    return (value >> shift) & 0xFF


def word_to_bytes(value: int) -> bytes:
    """Encode a word as a 32-byte big-endian string."""
    return to_word(value).to_bytes(WORD_BYTES, "big")


def bytes_to_word(data: bytes) -> int:
    """Decode up to 32 big-endian bytes into a word (right-aligned)."""
    if len(data) > WORD_BYTES:
        raise ValueError(f"cannot pack {len(data)} bytes into a 256-bit word")
    return int.from_bytes(data, "big")
