"""Long-running soak harness: thousands of adversarial blocks, online
invariants, and mid-stream crash-recovery.

The paper's evaluation (and our benches) replays blocks; this module
*soaks*: it streams the adversarial scenario pack
(:mod:`repro.workload.scenarios`) through a full validator over the
durable storage engine for thousands of blocks, with every production
subsystem engaged at once —

* **online serializability oracle** — every block's parallel execution is
  trace-recorded and differentially checked against a fresh serial run of
  the same block (PR 1's oracle as a *continuous* invariant, not a test);
* **root parity twin** — an in-memory StateDB commits the same write
  batches; after every block the durable root must be byte-identical to
  the twin's (the PR-5 durable-vs-memory differential, continuously);
* **mid-stream crash injection** — at scheduled blocks the durable store
  is reopened with a :class:`~repro.db.faults.FaultPlan` armed to kill the
  log mid-append; after the induced :class:`InjectedCrash` the store is
  recovered (log replay + torn-tail truncation), its root and height are
  asserted byte-identical to the twin's, and the validator *adopts the
  recovered store and keeps going* — recovery-and-continue, not
  recovery-and-stop;
* **periodic compaction** — stale snapshots are pruned on a fixed cadence
  so db growth vs. reclaim is measured over the whole run.

Soak-level metrics (blocks/s, abort-rate trend, db growth/reclaim, oracle
latency) are emitted as :class:`~repro.obs.SoakCheckpoint` events and
summarized in a stamped JSON report (``repro.bench.reporting``).

``python -m repro soak --blocks 1000 --crashes 3 --backend durable`` is
the acceptance run; CI soaks a scaled-down variant on every push.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .chain.validator import Validator
from .db.faults import FaultPlan, InjectedCrash
from .executors.serial import SerialExecutor
from .state.statedb import StateDB
from .verify.oracle import SerializabilityOracle
from .verify.trace import TraceRecorder
from .workload.generator import Workload
from .workload.scenarios import scenario_config

DEFAULT_CRASH_WINDOW = 4096  # byte budget ceiling for an injected crash


@dataclass
class SoakSample:
    """One checkpoint of the soak's trend metrics."""

    block: int
    blocks_per_sec: float
    abort_rate: float           # over the window since the last sample
    db_bytes: int               # cumulative bytes appended to the log
    bytes_reclaimed: int        # cumulative bytes reclaimed by compaction
    oracle_time: float          # seconds the oracle spent this window
    crashes: int                # injected crashes recovered so far

    def as_dict(self) -> dict:
        return {
            "block": self.block,
            "blocks_per_sec": round(self.blocks_per_sec, 3),
            "abort_rate": round(self.abort_rate, 4),
            "db_bytes": self.db_bytes,
            "bytes_reclaimed": self.bytes_reclaimed,
            "oracle_time": round(self.oracle_time, 4),
            "crashes": self.crashes,
        }


@dataclass
class SoakReport:
    """Aggregate outcome of one soak run."""

    blocks: int = 0
    txs: int = 0
    scheduler: str = ""
    scenario: str = ""
    backend: str = "durable"
    threads: int = 8
    seed: int = 0
    elapsed: float = 0.0
    aborts: int = 0
    executions: int = 0
    deterministic_failures: int = 0
    oracle_checks: int = 0
    oracle_violations: List[str] = field(default_factory=list)
    oracle_time: float = 0.0
    root_parity_checks: int = 0
    root_mismatches: List[str] = field(default_factory=list)
    crashes_scheduled: int = 0
    crashes_fired: int = 0
    crash_survivals: int = 0      # byte budget outlived the append
    recoveries_ok: int = 0
    recovery_failures: List[str] = field(default_factory=list)
    compactions: int = 0
    db_bytes_appended: int = 0
    db_bytes_reclaimed: int = 0
    samples: List[SoakSample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.oracle_violations
            or self.root_mismatches
            or self.recovery_failures
        )

    @property
    def blocks_per_sec(self) -> float:
        return self.blocks / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.executions if self.executions else 0.0

    def render(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"soak [{self.scheduler}/{self.scenario}/{self.backend}]: "
            f"{self.blocks} block(s), {self.txs} tx(s) in {self.elapsed:.1f}s "
            f"({self.blocks_per_sec:.2f} blocks/s): {verdict}",
            f"  aborts: {self.aborts}/{self.executions} attempts "
            f"(rate {self.abort_rate:.3f}), "
            f"{self.deterministic_failures} deterministic revert(s)",
            f"  oracle: {self.oracle_checks} online check(s), "
            f"{len(self.oracle_violations)} violation(s), "
            f"{self.oracle_time:.1f}s total",
            f"  root parity: {self.root_parity_checks} check(s), "
            f"{len(self.root_mismatches)} mismatch(es)",
            f"  crashes: {self.crashes_scheduled} scheduled, "
            f"{self.crashes_fired} fired mid-append, "
            f"{self.crash_survivals} outlived the budget, "
            f"{self.recoveries_ok} recovered byte-identical",
            f"  db: {self.db_bytes_appended} bytes appended, "
            f"{self.db_bytes_reclaimed} reclaimed over "
            f"{self.compactions} compaction(s)",
        ]
        for detail in (
            self.oracle_violations[:5]
            + self.root_mismatches[:5]
            + self.recovery_failures[:5]
        ):
            lines.append(f"    {detail}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "config": {
                "blocks": self.blocks,
                "scheduler": self.scheduler,
                "scenario": self.scenario,
                "backend": self.backend,
                "threads": self.threads,
                "seed": self.seed,
            },
            "totals": {
                "txs": self.txs,
                "elapsed_s": round(self.elapsed, 2),
                "blocks_per_sec": round(self.blocks_per_sec, 3),
                "aborts": self.aborts,
                "executions": self.executions,
                "abort_rate": round(self.abort_rate, 4),
                "deterministic_failures": self.deterministic_failures,
                "oracle_checks": self.oracle_checks,
                "oracle_violations": len(self.oracle_violations),
                "oracle_time_s": round(self.oracle_time, 2),
                "root_parity_checks": self.root_parity_checks,
                "root_mismatches": len(self.root_mismatches),
                "crashes_scheduled": self.crashes_scheduled,
                "crashes_fired": self.crashes_fired,
                "crash_survivals": self.crash_survivals,
                "recoveries_ok": self.recoveries_ok,
                "recovery_failures": len(self.recovery_failures),
                "compactions": self.compactions,
                "db_bytes_appended": self.db_bytes_appended,
                "db_bytes_reclaimed": self.db_bytes_reclaimed,
            },
            "failures": {
                "oracle": self.oracle_violations,
                "root_parity": self.root_mismatches,
                "recovery": self.recovery_failures,
            },
            "samples": [sample.as_dict() for sample in self.samples],
            "ok": self.ok,
        }


def _executor_for(scheduler: str):
    from .executors import DAGExecutor, DMVCCExecutor, OCCExecutor
    from .shard import ShardedDMVCCExecutor

    factories = {
        "serial": SerialExecutor,
        "occ": OCCExecutor,
        "dag": DAGExecutor,
        "dmvcc": DMVCCExecutor,
        "sharded": ShardedDMVCCExecutor,
    }
    try:
        return factories[scheduler]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {scheduler!r} "
            f"(choose from {', '.join(factories)})"
        ) from None


class _SoakRun:
    """State of one soak: validator, twin, crash schedule, accounting."""

    def __init__(
        self,
        blocks: int,
        txs_per_block: int,
        crashes: int,
        backend: str,
        scenario: str,
        scheduler: str,
        threads: int,
        seed: int,
        compact_every: int,
        checkpoint_every: int,
        durable_dir: Optional[str],
        workload_overrides: Dict,
        obs,
        progress: Optional[Callable[[str], None]],
    ) -> None:
        if backend not in ("memory", "durable"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "memory" and crashes:
            raise ValueError("crash injection needs --backend durable")
        self.blocks = blocks
        self.txs_per_block = txs_per_block
        self.backend = backend
        self.threads = threads
        self.compact_every = compact_every
        self.checkpoint_every = max(1, checkpoint_every)
        self.obs = obs
        self.progress = progress
        self.report = SoakReport(
            scheduler=scheduler, scenario=scenario, backend=backend,
            threads=threads, seed=seed,
        )
        config = scenario_config(scenario, seed=seed, **workload_overrides)
        self.workload = Workload(config)
        self.twin = self.workload.db          # in-memory root-parity twin
        self.rng = random.Random(seed ^ 0x50AC)   # harness-side randomness
        self.crash_blocks = self._schedule_crashes(crashes)
        self.report.crashes_scheduled = len(self.crash_blocks)
        self._own_dir = durable_dir is None
        if backend == "durable":
            self.dir = durable_dir or tempfile.mkdtemp(prefix="repro-soak-")
            db = self.twin.mirror_durable(self.dir)
        else:
            self.dir = None
            db = self.twin.fork()
        self.validator = Validator(
            "soak", db, _executor_for(scheduler), threads=threads,
        )
        self.serial = SerialExecutor()

    def _schedule_crashes(self, crashes: int) -> List[int]:
        if not crashes:
            return []
        # Never the first or last block: a crash must land mid-stream with
        # committed history behind it and resumed traffic ahead of it.
        eligible = range(2, max(3, self.blocks))
        count = min(crashes, len(eligible))
        return sorted(self.rng.sample(eligible, count))

    # -- one block ------------------------------------------------------

    def _execute_block(self, txs, number: int):
        """Feed, propose, oracle-check, and twin-commit one block.
        Raises :class:`InjectedCrash` out of the commit when armed."""
        validator = self.validator
        pre = validator.db.latest
        for tx in txs:
            validator.receive_transaction(tx)
        recorder = TraceRecorder()
        previous = validator.executor.recorder
        validator.executor.recorder = recorder
        try:
            block, execution = validator.propose_block(timestamp=number)
        finally:
            validator.executor.recorder = previous
        report = self.report
        report.aborts += execution.metrics.aborts
        report.executions += execution.metrics.executions
        report.deterministic_failures += execution.metrics.deterministic_failures
        commit = validator.db.last_commit
        if commit is not None and commit.durable:
            report.db_bytes_appended += commit.bytes_appended
        # Online invariant 1: serializability against a fresh serial run
        # of the same block over the same pre-state.
        oracle_start = time.perf_counter()
        ordered = list(block.transactions)
        serial = self.serial.execute_block(
            ordered, pre, self.twin.codes.code_of, threads=1,
        )
        oracle = SerializabilityOracle(snapshot_get=pre.get)
        verdict = oracle.check(
            trace=recorder,
            parallel_writes=execution.writes,
            parallel_receipts=execution.receipts,
            serial_writes=serial.writes,
            serial_receipts=serial.receipts,
            scheduler=validator.executor.name,
        )
        self._oracle_window += time.perf_counter() - oracle_start
        report.oracle_time += time.perf_counter() - oracle_start
        report.oracle_checks += 1
        if not verdict.ok:
            for divergence in verdict.divergences[:3]:
                report.oracle_violations.append(f"block {number}: {divergence}")
        # Online invariant 2: durable root == in-memory twin root.
        self.twin.commit(execution.writes)
        report.root_parity_checks += 1
        if self.twin.latest.root_hash != validator.db.latest.root_hash:
            report.root_mismatches.append(
                f"block {number}: durable root "
                f"{validator.db.latest.root_hash.hex()[:16]} != twin "
                f"{self.twin.latest.root_hash.hex()[:16]}"
            )
        return execution

    # -- crash-recovery cycle ------------------------------------------

    def _crash_cycle(self, txs, number: int) -> None:
        """Execute block ``number`` under an armed fault plan; on crash,
        recover the store, assert byte-identical state, and continue."""
        report = self.report
        validator = self.validator
        validator.db.close()
        offset = self.rng.randint(1, DEFAULT_CRASH_WINDOW)
        wounded = StateDB.open(
            self.dir, faults=FaultPlan(crash_after_bytes=offset)
        )
        wounded.codes = self.twin.codes
        validator.adopt_statedb(wounded)
        try:
            self._execute_block(txs, number)
            report.crash_survivals += 1
            crashed = False
        except InjectedCrash:
            crashed = True
        # Simulated process death: the wounded handle is abandoned unclosed
        # either way; a clean reopen replays the log and truncates any torn
        # tail, exactly like a restart after power loss.
        recovered = StateDB.open(self.dir)
        recovered.codes = self.twin.codes
        expected_height = self.twin.height
        expected_root = self.twin.latest.root_hash
        if recovered.height != expected_height:
            report.recovery_failures.append(
                f"block {number}: recovered height {recovered.height}, "
                f"expected {expected_height}"
            )
        elif recovered.latest.root_hash != expected_root:
            report.recovery_failures.append(
                f"block {number}: recovered root "
                f"{recovered.latest.root_hash.hex()[:16]} != twin "
                f"{expected_root.hex()[:16]}"
            )
        else:
            report.recoveries_ok += 1
        validator.adopt_statedb(recovered)
        if crashed:
            report.crashes_fired += 1
            # Recovery-and-continue: the crashed block's transactions are
            # re-fed and the block is proposed again on the healed store.
            self._execute_block(txs, number)
        if self.progress is not None:
            mode = "fired" if crashed else "outlived"
            self.progress(
                f"crash at block {number}: budget {offset}B {mode}, "
                f"recovered to height {recovered.height}"
            )

    # -- the loop -------------------------------------------------------

    def run(self) -> SoakReport:
        report = self.report
        started = time.perf_counter()
        window_started = started
        window_blocks = 0
        window_aborts = 0
        window_execs = 0
        self._oracle_window = 0.0
        crash_schedule = set(self.crash_blocks)
        try:
            for index in range(self.blocks):
                number = self.validator.height + 1
                txs = self.workload.transactions(self.txs_per_block)
                aborts_before = report.aborts
                execs_before = report.executions
                if index in crash_schedule:
                    self._crash_cycle(txs, number)
                else:
                    self._execute_block(txs, number)
                report.blocks += 1
                report.txs += len(txs)
                window_blocks += 1
                window_aborts += report.aborts - aborts_before
                window_execs += report.executions - execs_before
                if self.compact_every and (index + 1) % self.compact_every == 0 \
                        and self.backend == "durable":
                    compaction = self.validator.db.compact()
                    report.compactions += 1
                    report.db_bytes_reclaimed += compaction.bytes_reclaimed
                if (index + 1) % self.checkpoint_every == 0 \
                        or index + 1 == self.blocks:
                    now = time.perf_counter()
                    span = max(now - window_started, 1e-9)
                    sample = SoakSample(
                        block=number,
                        blocks_per_sec=window_blocks / span,
                        abort_rate=(
                            window_aborts / window_execs if window_execs else 0.0
                        ),
                        db_bytes=report.db_bytes_appended,
                        bytes_reclaimed=report.db_bytes_reclaimed,
                        oracle_time=self._oracle_window,
                        crashes=report.crashes_fired,
                    )
                    report.samples.append(sample)
                    if self.obs is not None:
                        self.obs.soak_checkpoint(
                            0.0, number,
                            blocks_per_sec=sample.blocks_per_sec,
                            abort_rate=sample.abort_rate,
                            db_bytes=sample.db_bytes,
                            bytes_reclaimed=sample.bytes_reclaimed,
                            oracle_time=sample.oracle_time,
                            crashes=sample.crashes,
                        )
                    if self.progress is not None:
                        self.progress(
                            f"block {number}/{self.blocks}: "
                            f"{sample.blocks_per_sec:.2f} blocks/s, "
                            f"abort rate {sample.abort_rate:.3f}, "
                            f"db {sample.db_bytes}B (+{sample.bytes_reclaimed}B "
                            f"reclaimed), {sample.crashes} crash(es)"
                        )
                    window_started = now
                    window_blocks = window_aborts = window_execs = 0
                    self._oracle_window = 0.0
        finally:
            report.elapsed = time.perf_counter() - started
            self.validator.db.close()
            if self.backend == "durable" and self._own_dir:
                shutil.rmtree(self.dir, ignore_errors=True)
        return report


def run_soak(
    blocks: int = 1_000,
    txs_per_block: int = 64,
    crashes: int = 3,
    backend: str = "durable",
    scenario: str = "mix",
    scheduler: str = "dmvcc",
    threads: int = 8,
    seed: int = 2023,
    compact_every: int = 50,
    checkpoint_every: int = 25,
    durable_dir: Optional[str] = None,
    workload_overrides: Optional[Dict] = None,
    obs=None,
    progress: Optional[Callable[[str], None]] = None,
    report_path: Optional[str] = None,
) -> SoakReport:
    """Run one soak; see the module docstring.

    ``durable_dir`` pins the on-disk store to a caller-owned directory
    (kept afterwards); by default a temp directory is used and removed.
    ``report_path`` writes the stamped JSON report there on completion —
    including when invariants failed, so CI can upload it as an artifact.
    """
    run = _SoakRun(
        blocks=blocks,
        txs_per_block=txs_per_block,
        crashes=crashes,
        backend=backend,
        scenario=scenario,
        scheduler=scheduler,
        threads=threads,
        seed=seed,
        compact_every=compact_every,
        checkpoint_every=checkpoint_every,
        durable_dir=durable_dir,
        workload_overrides=workload_overrides or {},
        obs=obs,
        progress=progress,
    )
    report = run.run()
    if report_path:
        import os

        from .bench.reporting import save_results_json

        parent = os.path.dirname(report_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        save_results_json(report_path, report.as_dict())
    return report
