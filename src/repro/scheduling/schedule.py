"""The deterministic fork-join schedule artifact (miner → validator).

After speculatively executing a block, the miner's realized happens-before
order — which writer's version every committed read observed, and the
per-key writer chains — is compacted into a :class:`Schedule`: one entry
per transaction carrying its *gating predecessors* plus the key sets its
committed attempt touched.  A validator replays the block straight from
the artifact with conflict discovery disabled: no access-sequence
speculation, no validation, no aborts — each transaction starts only once
its predecessors committed, so every read resolves to exactly the version
the miner's execution observed (Dickerson & Herlihy's and Anjana et al.'s
miner-produces/validator-replays pattern; see PAPERS.md).

Edge construction uses the per-key transitive reduction: the committed
writers of each key form a chain (each gated on the previous), and every
other toucher of the key gates on the *last* writer below its own index.
Gating a reader on that single writer is sufficient — the chain supplies
the earlier writers transitively — and keeps the artifact linear in the
number of accesses rather than quadratic.

The artifact is deterministic: it is a pure function of the committed
execution, which PR 8 guarantees is byte-identical across the sim,
threads, and processes substrates — so all three emit the same
``Schedule`` (covered by ``tests/scheduling/test_schedule_replay.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.hashing import keccak
from ..core.types import StateKey
from .profile import key_from_json, key_to_json

SCHEDULE_VERSION = 1


@dataclass(frozen=True)
class ScheduleEntry:
    """One transaction's slot in the fork-join plan.

    ``preds`` are the block indices that must *commit* before this
    transaction may start; ``reads``/``writes`` are the committed
    attempt's realized key sets (the replay coordinator ships exactly
    these keys in the dispatch view, so real backends replay with zero
    view misses).
    """

    index: int
    preds: Tuple[int, ...]
    reads: Tuple[StateKey, ...]
    writes: Tuple[StateKey, ...]


@dataclass(frozen=True)
class Schedule:
    """A block's deterministic fork-join execution plan."""

    entries: Tuple[ScheduleEntry, ...]
    block_number: int = 0
    producer: str = ""           # scheduler name that discovered the order

    @property
    def tx_count(self) -> int:
        return len(self.entries)

    def preds(self) -> List[Tuple[int, ...]]:
        return [e.preds for e in self.entries]

    def depth(self) -> int:
        """Length of the longest dependency chain (the fork-join critical
        path in transactions)."""
        depth: List[int] = []
        for entry in self.entries:
            depth.append(1 + max((depth[p] for p in entry.preds), default=0))
        return max(depth, default=0)

    def lanes(self) -> List[List[int]]:
        """Topological levels: transactions in the same lane share no
        (transitive) dependency and may run concurrently."""
        level: List[int] = []
        for entry in self.entries:
            level.append(1 + max((level[p] for p in entry.preds), default=-1))
        lanes: List[List[int]] = [[] for _ in range(max(level, default=-1) + 1)]
        for index, lv in enumerate(level):
            lanes[lv].append(index)
        return lanes

    # ------------------------------------------------------------------
    # Construction from a recorded execution
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace, tx_count: int, block_number: int = 0,
                   producer: str = "") -> "Schedule":
        """Compact a :class:`~repro.verify.trace.TraceRecorder` stream into
        the fork-join artifact.

        Only each transaction's *final* attempt matters (earlier attempts
        were undone by aborts); failed transactions publish nothing but
        still gate on their read dependencies — they must observe the same
        versions to deterministically fail again on replay.
        """
        from ..verify.trace import (
            CompleteEvent,
            PublishEvent,
            ReadEvent,
            RetractEvent,
            WriteEvent,
        )

        finals = trace.final_attempts()
        success: Dict[int, bool] = {}
        reads: List[Set[StateKey]] = [set() for _ in range(tx_count)]
        writes: List[Set[StateKey]] = [set() for _ in range(tx_count)]
        # Writes made visible to the shared store, net of retractions —
        # the real-substrate coordinators record publishes (not buffered
        # WriteEvents), so the surviving publish set is the committed
        # write set on those paths.
        published: List[Set[StateKey]] = [set() for _ in range(tx_count)]
        for event in trace.events:
            if isinstance(event, ReadEvent):
                if event.attempt == finals.get(event.tx, 1):
                    reads[event.tx].add(event.key)
            elif isinstance(event, WriteEvent):
                if event.attempt == finals.get(event.tx, 1):
                    writes[event.tx].add(event.key)
            elif isinstance(event, PublishEvent):
                published[event.tx].add(event.key)
            elif isinstance(event, RetractEvent):
                published[event.tx].discard(event.key)
            elif isinstance(event, CompleteEvent):
                # The last CompleteEvent per tx describes the committed
                # outcome; keep overwriting in stream order.
                success[event.tx] = event.success

        for index in range(tx_count):
            writes[index] |= published[index]
        committed: List[Set[StateKey]] = [
            writes[i] if success.get(i, True) else set()
            for i in range(tx_count)
        ]
        writers_of: Dict[StateKey, List[int]] = {}
        for index in range(tx_count):
            for key in committed[index]:
                writers_of.setdefault(key, []).append(index)
        for chain in writers_of.values():
            chain.sort()

        def last_writer_below(key: StateKey, index: int) -> int:
            best = -1
            for writer in writers_of.get(key, ()):
                if writer >= index:
                    break
                best = writer
            return best

        entries: List[ScheduleEntry] = []
        for index in range(tx_count):
            preds: Set[int] = set()
            for key in reads[index] | writes[index]:
                writer = last_writer_below(key, index)
                if writer >= 0:
                    preds.add(writer)
            entries.append(ScheduleEntry(
                index=index,
                preds=tuple(sorted(preds)),
                reads=tuple(sorted(reads[index] | writes[index],
                                   key=lambda k: (str(k.address), k.slot))),
                writes=tuple(sorted(committed[index],
                                    key=lambda k: (str(k.address), k.slot))),
            ))
        return cls(entries=tuple(entries), block_number=block_number,
                   producer=producer)

    # ------------------------------------------------------------------
    # Serialization / identity
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": SCHEDULE_VERSION,
            "block_number": self.block_number,
            "producer": self.producer,
            "tx_count": self.tx_count,
            "depth": self.depth(),
            "entries": [
                {
                    "index": e.index,
                    "preds": list(e.preds),
                    "reads": [key_to_json(k) for k in e.reads],
                    "writes": [key_to_json(k) for k in e.writes],
                }
                for e in self.entries
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Schedule":
        entries = tuple(
            ScheduleEntry(
                index=e["index"],
                preds=tuple(e["preds"]),
                reads=tuple(key_from_json(k) for k in e["reads"]),
                writes=tuple(key_from_json(k) for k in e["writes"]),
            )
            for e in payload["entries"]
        )
        return cls(entries=entries,
                   block_number=payload.get("block_number", 0),
                   producer=payload.get("producer", ""))

    def digest(self) -> bytes:
        """Content identity of the artifact (canonical-JSON keccak)."""
        canonical = json.dumps(self.to_json(), sort_keys=True,
                               separators=(",", ":"))
        return keccak(canonical.encode("utf-8"))


@dataclass(frozen=True)
class BlockSidecar:
    """The schedule artifact sealed next to a block (not in its header —
    the schedule is advisory for validators, never consensus-critical:
    replaying it must produce the header's ``state_root`` or the block is
    rejected exactly as a fresh execution mismatch would be)."""

    block_hash: bytes
    schedule: Schedule

    def digest(self) -> bytes:
        return keccak(self.block_hash + self.schedule.digest())

    def to_json(self) -> dict:
        return {
            "block_hash": self.block_hash.hex(),
            "digest": self.digest().hex(),
            "schedule": self.schedule.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BlockSidecar":
        sidecar = cls(
            block_hash=bytes.fromhex(payload["block_hash"]),
            schedule=Schedule.from_json(payload["schedule"]),
        )
        want = payload.get("digest")
        if want is not None and sidecar.digest().hex() != want:
            raise ValueError("block sidecar digest mismatch")
        return sidecar
