"""Access sequences: the multi-version store at the heart of DMVCC.

An access sequence ``L_I`` (paper Definition 4) records, per state item, the
ordered accesses of a block's transactions: ``⟨T_p1:α_p1, …, T_pk:α_pk⟩``
with α ∈ {ρ, ω, θ, ω̄}.  Each entry carries the paper's "F" (finished) flag
and "Val" field; commutative entries (ω̄) store a *delta* instead of an
absolute value, merged at read time.

The sequence implements:

* **write versioning** — every transaction's write is its own version, so
  write-write pairs never conflict (Definition 3);
* **read resolution** — a read by ``T_j`` returns the value of the closest
  preceding finished non-commutative write, plus every finished delta
  between that write and ``j`` (Lemma 1's merge);
* **Version_Write** (Algorithm 3) — inserting a write (possibly one the
  analysis missed) returns the transactions to wake (*allowed*) and the
  transactions that already consumed a now-stale version (*aborted*);
* **retraction** (Algorithm 4) — nulling a transaction's write when it is
  aborted, cascading to its readers.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.errors import SchedulingError
from ..core.types import StateKey
from ..analysis.csag import AccessType

SNAPSHOT_VERSION = -1  # pseudo writer index: value came from S^{l-1}


@dataclass
class AccessEntry:
    """One transaction's slot in an access sequence."""

    tx_index: int
    declared: AccessType                     # α as predicted by the C-SAG
    # -- write side ("F" and "Val") --
    write_finished: bool = False
    write_value: Optional[int] = None        # absolute version
    write_delta: Optional[int] = None        # ω̄: increment amount
    write_skipped: bool = False              # predicted write never happened
    # -- read side --
    read_done: bool = False
    read_version_from: Optional[int] = None  # writer index the read resolved to

    @property
    def has_write_part(self) -> bool:
        return self.declared in (
            AccessType.WRITE, AccessType.READ_WRITE, AccessType.COMMUTATIVE
        ) or self.write_finished

    @property
    def has_read_part(self) -> bool:
        return self.declared in (AccessType.READ, AccessType.READ_WRITE)

    @property
    def effective_write(self) -> bool:
        """A finished, non-retracted, non-skipped write."""
        return self.write_finished and not self.write_skipped

    @property
    def is_commutative_write(self) -> bool:
        return self.write_delta is not None

    def reset_write(self) -> None:
        self.write_finished = False
        self.write_value = None
        self.write_delta = None
        self.write_skipped = False

    def reset_read(self) -> None:
        self.read_done = False
        self.read_version_from = None


@dataclass
class ReadResolution:
    """Outcome of resolving a read against an access sequence."""

    ready: bool
    value: Optional[int] = None           # None when base comes from snapshot
    from_snapshot: bool = False
    version_from: int = SNAPSHOT_VERSION  # base writer's tx index
    deltas: int = 0                       # merged commutative increments
    blockers: Tuple[int, ...] = ()        # unfinished writers blocking the read

    def resolve_with_snapshot(self, snapshot_value: int) -> int:
        base = snapshot_value if self.from_snapshot else (self.value or 0)
        return (base + self.deltas) % (1 << 256)


class AccessSequence:
    """The versioned access list of one state item.

    ``obs``/``clock`` (an event bus and a simulated-time callable) let the
    sequence emit commutative-merge events when an ω̄ delta lands as its
    own write version; both default to off at one-branch cost.
    """

    def __init__(self, key: StateKey, obs=None, clock=None) -> None:
        self.key = key
        self._indices: List[int] = []          # sorted tx indices
        self._entries: Dict[int, AccessEntry] = {}
        self._obs = obs
        self._clock = clock if clock is not None else (lambda: 0.0)

    # ------------------------------------------------------------------
    # Construction (pre-execution phase)
    # ------------------------------------------------------------------

    def insert_predicted(self, tx_index: int, declared: AccessType) -> AccessEntry:
        """Add the entry predicted by ``tx_index``'s C-SAG."""
        if tx_index in self._entries:
            raise SchedulingError(
                f"duplicate predicted entry for T{tx_index} on {self.key}"
            )
        entry = AccessEntry(tx_index, declared)
        bisect.insort(self._indices, tx_index)
        self._entries[tx_index] = entry
        return entry

    def entry(self, tx_index: int) -> Optional[AccessEntry]:
        return self._entries.get(tx_index)

    def entries(self) -> List[AccessEntry]:
        return [self._entries[i] for i in self._indices]

    def __len__(self) -> int:
        return len(self._indices)

    # ------------------------------------------------------------------
    # Read resolution
    # ------------------------------------------------------------------

    def resolve_read(self, tx_index: int) -> ReadResolution:
        """Which version would ``T_{tx_index}`` read right now?

        Walks preceding entries newest-first, accumulating finished deltas,
        until the first non-commutative finished write (the base version).
        Any unfinished preceding write blocks the read (its lock has not
        been granted yet).
        """
        deltas = 0
        blockers: List[int] = []
        position = bisect.bisect_left(self._indices, tx_index)
        for i in range(position - 1, -1, -1):
            entry = self._entries[self._indices[i]]
            if not entry.has_write_part or entry.write_skipped:
                continue
            if not entry.write_finished:
                blockers.append(entry.tx_index)
                continue
            if entry.is_commutative_write:
                deltas += entry.write_delta or 0
                continue
            # Non-commutative finished write: the base version.
            if blockers:
                return ReadResolution(ready=False, blockers=tuple(blockers))
            return ReadResolution(
                ready=True,
                value=entry.write_value,
                version_from=entry.tx_index,
                deltas=deltas,
            )
        if blockers:
            return ReadResolution(ready=False, blockers=tuple(blockers))
        return ReadResolution(ready=True, from_snapshot=True, deltas=deltas)

    def best_available_read(self, tx_index: int) -> ReadResolution:
        """Read-latest-finished: like :meth:`resolve_read` but skipping
        unfinished writers instead of blocking on them.  Used for accesses
        the analysis missed — if the skipped write later lands, Algorithm 3
        aborts us (the OCC-style fallback the paper allows)."""
        deltas = 0
        position = bisect.bisect_left(self._indices, tx_index)
        for i in range(position - 1, -1, -1):
            entry = self._entries[self._indices[i]]
            if not entry.effective_write:
                continue
            if entry.is_commutative_write:
                deltas += entry.write_delta or 0
                continue
            return ReadResolution(
                ready=True,
                value=entry.write_value,
                version_from=entry.tx_index,
                deltas=deltas,
            )
        return ReadResolution(ready=True, from_snapshot=True, deltas=deltas)

    def record_read(self, tx_index: int, version_from: int) -> None:
        """Mark ``T_{tx_index}``'s read as completed against a version.

        Inserts a ρ entry when the analysis missed this read, so later
        writes can detect the staleness (paper §IV-E)."""
        entry = self._entries.get(tx_index)
        if entry is None:
            entry = AccessEntry(tx_index, AccessType.READ)
            bisect.insort(self._indices, tx_index)
            self._entries[tx_index] = entry
        elif entry.declared is AccessType.WRITE:
            entry.declared = AccessType.READ_WRITE
        elif entry.declared is AccessType.COMMUTATIVE:
            # A real (non-blind) read demotes the commutative classification.
            entry.declared = AccessType.READ_WRITE
        entry.read_done = True
        # Keep the *oldest* dependency: merged reads depend on the base.
        if entry.read_version_from is None or version_from < entry.read_version_from:
            entry.read_version_from = version_from

    # ------------------------------------------------------------------
    # Version_Write (Algorithm 3)
    # ------------------------------------------------------------------

    def version_write(
        self,
        tx_index: int,
        value: Optional[int] = None,
        delta: Optional[int] = None,
        skipped: bool = False,
    ) -> Tuple[List[int], List[int]]:
        """Publish ``T_{tx_index}``'s write (or mark it skipped).

        Returns ``(allowed, aborted)``: transactions that may now acquire
        the lock of this item, and transactions that already read a version
        this write supersedes.
        """
        if (value is None) == (delta is None) and not skipped:
            raise SchedulingError("exactly one of value/delta required")
        entry = self._entries.get(tx_index)
        if entry is None:
            # Analysis missed this write entirely: insert ω on the fly
            # (Algorithm 3, line 9).
            declared = AccessType.COMMUTATIVE if delta is not None else AccessType.WRITE
            entry = AccessEntry(tx_index, declared)
            bisect.insort(self._indices, tx_index)
            self._entries[tx_index] = entry
        elif entry.declared is AccessType.READ and not skipped:
            # Predicted read-only but also writes: upgrade ρ → θ (line 11).
            entry.declared = AccessType.READ_WRITE

        if skipped:
            entry.write_finished = True
            entry.write_skipped = True
            entry.write_value = None
            entry.write_delta = None
        else:
            entry.write_finished = True
            entry.write_skipped = False
            entry.write_value = value
            entry.write_delta = delta
            if delta is not None and self._obs is not None:
                self._obs.commutative_merge(self._clock(), tx_index, self.key, delta)

        return self._scan_readers_after(tx_index, skipped=skipped)

    def _scan_readers_after(
        self, tx_index: int, skipped: bool
    ) -> Tuple[List[int], List[int]]:
        """Readers after ``tx_index``: finished ones whose version is older
        than this write are stale (*aborted*); unfinished ones may be
        unblocked (*allowed*)."""
        allowed: List[int] = []
        aborted: List[int] = []
        position = bisect.bisect_right(self._indices, tx_index)
        for i in range(position, len(self._indices)):
            entry = self._entries[self._indices[i]]
            if not (entry.has_read_part or entry.read_done):
                continue
            if entry.read_done:
                if (
                    not skipped
                    and entry.read_version_from is not None
                    and entry.read_version_from < tx_index
                ):
                    aborted.append(entry.tx_index)
            else:
                allowed.append(entry.tx_index)
        return allowed, aborted

    # ------------------------------------------------------------------
    # Retraction (Algorithm 4 support)
    # ------------------------------------------------------------------

    def retract(self, tx_index: int) -> List[int]:
        """Null ``T_{tx_index}``'s write (it was aborted after publishing).

        Returns the indices of transactions that read the retracted version
        and must abort in cascade.
        """
        entry = self._entries.get(tx_index)
        if entry is None or not entry.write_finished:
            return []
        entry.reset_write()
        victims: List[int] = []
        position = bisect.bisect_right(self._indices, tx_index)
        for i in range(position, len(self._indices)):
            later = self._entries[self._indices[i]]
            if later.read_done and later.read_version_from is not None:
                # Readers at or past this version may have merged the
                # retracted value (as base or as one of the deltas).
                if later.read_version_from <= tx_index:
                    victims.append(later.tx_index)
        return victims

    def rollback_write(
        self,
        tx_index: int,
        value: Optional[int] = None,
        delta: Optional[int] = None,
    ) -> Tuple[List[int], List[int], List[int]]:
        """Replace ``T_{tx_index}``'s published version with an earlier one
        from the same attempt (the incremental-abort path: a resume keeps
        the checkpoint-time value of a key it had already re-published).

        Equivalent to :meth:`retract` followed by :meth:`version_write`;
        returns ``(victims, allowed, aborted)`` — the retraction's cascade
        victims plus the re-publication's wake/abort sets.
        """
        victims = self.retract(tx_index)
        allowed, aborted = self.version_write(tx_index, value=value, delta=delta)
        return victims, allowed, aborted

    def current_read_view(
        self, tx_index: int, snapshot_value: int
    ) -> Optional[Tuple[int, int]]:
        """Re-resolve ``T_{tx_index}``'s read against the sequence as it
        stands *now*: ``(value, version_from)``, or ``None`` when the read
        is not resolvable without blocking.  The revalidation fast path
        compares this against the value an aborted attempt recorded."""
        resolution = self.resolve_read(tx_index)
        if not resolution.ready:
            return None
        return (
            resolution.resolve_with_snapshot(snapshot_value),
            resolution.version_from,
        )

    def reset_for_retry(self, tx_index: int) -> None:
        """Clear the read/write state of an aborted transaction's entry so
        its re-execution starts from a clean slate (the declared α of the
        original prediction is kept)."""
        entry = self._entries.get(tx_index)
        if entry is not None:
            entry.reset_read()
            entry.reset_write()

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def final_value(self, snapshot_reader: Callable[[StateKey], int]) -> Optional[int]:
        """The value to flush to the StateDB: the last effective absolute
        write folded with every trailing delta (paper: "the last write of
        every access sequence").  ``None`` when no transaction effectively
        wrote the item."""
        deltas = 0
        saw_delta = False
        for index in reversed(self._indices):
            entry = self._entries[index]
            if not entry.effective_write:
                continue
            if entry.is_commutative_write:
                deltas += entry.write_delta or 0
                saw_delta = True
                continue
            return ((entry.write_value or 0) + deltas) % (1 << 256)
        if saw_delta:
            return (snapshot_reader(self.key) + deltas) % (1 << 256)
        return None

    def __repr__(self) -> str:
        parts = []
        for index in self._indices:
            entry = self._entries[index]
            flag = "F" if entry.write_finished else "N"
            parts.append(f"T{index}:{entry.declared.value}[{flag}]")
        return f"L({self.key}) = ⟨{', '.join(parts)}⟩"


class AccessSequenceSet:
    """``M_l``: the access sequences of every state item touched by a block."""

    def __init__(self, obs=None, clock=None) -> None:
        self._sequences: Dict[StateKey, AccessSequence] = {}
        self._obs = obs
        self._clock = clock

    def sequence(self, key: StateKey) -> AccessSequence:
        seq = self._sequences.get(key)
        if seq is None:
            seq = AccessSequence(key, obs=self._obs, clock=self._clock)
            self._sequences[key] = seq
        return seq

    def get(self, key: StateKey) -> Optional[AccessSequence]:
        return self._sequences.get(key)

    def keys(self) -> Set[StateKey]:
        return set(self._sequences)

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self):
        return iter(self._sequences.values())

    def final_writes(
        self, snapshot_reader: Callable[[StateKey], int]
    ) -> Dict[StateKey, int]:
        """Commit-phase flush: last effective write per item."""
        writes: Dict[StateKey, int] = {}
        for key, seq in self._sequences.items():
            value = seq.final_value(snapshot_reader)
            if value is not None:
                writes[key] = value
        return writes
