"""Conflict-aware lane planning for block execution order.

The miner is free to choose the order its block's transactions execute
(and seal) in — the packed order travels in the block, so validators
replay whatever the miner chose.  This planner exploits that freedom:

1. **Lane partition** — transactions are grouped into *lanes* (conflict
   components): two transactions share a lane iff they touch a common
   *contested* key (one predicted by static P-SAG/C-SAG analysis to be
   written in this block, or one the learned
   :class:`~repro.scheduling.profile.ConflictProfileStore` marks hot from
   past abort attribution), or come from the same sender (nonce order is
   inviolable).  Lanes are interleaved round-robin into the final order,
   so any window of ~`threads` consecutive transactions — the set a
   scheduler dispatches concurrently — is conflict-disjoint: DMVCC's
   version waits and OCC's validation failures both collapse to the
   intra-lane chains.

2. **Within-lane order** — stable by packed position, which keeps fee
   ordering intact inside the lane and writers ahead of the dependent
   readers that were packed behind them.

3. **Prediction repair** — the real killer of abort cascades: a C-SAG
   pre-executed against the pre-block snapshot is stale the moment an
   earlier in-block transaction writes a key it branches on (the
   abort-maximizer's ``setA``/``UpdateB`` pairs).  Walking each lane in
   planned order with an overlay of the predicted write values, the
   planner re-refines exactly those transactions whose predicted reads
   hit a changed key — so DMVCC executes them with accurate access
   sequences instead of discovering the misprediction by aborting.

Planning is deterministic (a pure function of the inputs) and preserves
per-sender nonce order by construction — `tests/chain/test_mempool.py`
holds the regression line for the fee-ordering interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.types import StateKey
from .profile import ConflictProfileStore


class _OverlaySnapshot:
    """A snapshot view with predicted in-block writes layered on top.

    Quacks enough like :class:`repro.state.statedb.Snapshot` for C-SAG
    refinement (``get`` plus delegated metadata); never used for
    execution proper.
    """

    def __init__(self, base, overlay: Dict[StateKey, int]) -> None:
        self._base = base
        self._overlay = overlay

    def get(self, key: StateKey) -> int:
        if key in self._overlay:
            return self._overlay[key]
        return self._base.get(key)

    def __getattr__(self, name):
        return getattr(self._base, name)


@dataclass
class LanePlan:
    """The planner's verdict for one block."""

    order: List[int]                 # planned position -> packed index
    lanes: List[List[int]]           # lane -> packed indices, in lane order
    contested_keys: Set[StateKey] = field(default_factory=set)
    profile_promotions: int = 0      # keys contested only by learned heat
    repairs: int = 0                 # C-SAGs re-refined against the overlay

    @property
    def moved(self) -> bool:
        return self.order != sorted(self.order)

    @property
    def lane_count(self) -> int:
        return len(self.lanes)

    def apply(self, items: Sequence) -> List:
        """Reorder any per-transaction sequence into the planned order."""
        return [items[i] for i in self.order]

    def as_dict(self) -> dict:
        return {
            "lanes": self.lane_count,
            "moved": self.moved,
            "contested_keys": len(self.contested_keys),
            "profile_promotions": self.profile_promotions,
            "repairs": self.repairs,
        }


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Lower root wins: component identity is its earliest member.
            if ra > rb:
                ra, rb = rb, ra
            self.parent[rb] = ra


class LanePlanner:
    """Partition a packed block into low-conflict lanes and repair stale
    predictions along each lane."""

    def __init__(
        self,
        profiles: Optional[ConflictProfileStore] = None,
        repair: bool = True,
        max_repairs: int = 256,
        shards: int = 0,
    ) -> None:
        self.profiles = profiles if profiles is not None else ConflictProfileStore()
        self.repair = repair
        self.max_repairs = max_repairs
        # Shard-aware interleave (repro.shard): with a shard count set, the
        # round-robin cycles across lanes homed on *different* shards first,
        # so the sharded executor's per-shard local streams fill evenly and
        # a dispatch window spreads over partitions as well as lanes.
        self.shards = max(0, shards)

    # ------------------------------------------------------------------
    # Feedback (the learning half of the loop)
    # ------------------------------------------------------------------

    def observe(self, attribution, block_number: int = -1) -> None:
        """Fold one executed block's abort attribution into the profiles."""
        self.profiles.observe_block(attribution, block_number)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @staticmethod
    def _touched(csag) -> Set[StateKey]:
        return (csag.read_keys | csag.write_keys
                | csag.static_read_keys | csag.static_write_keys)

    @staticmethod
    def _written(csag) -> Set[StateKey]:
        return csag.write_keys | csag.static_write_keys

    def plan(self, txs: Sequence, csags: Sequence, snapshot=None,
             builder=None) -> LanePlan:
        """Compute the lane plan for one packed block.

        ``snapshot``/``builder`` enable prediction repair; without them the
        planner only partitions and interleaves.
        """
        count = len(txs)
        if count != len(csags):
            raise ValueError("txs and csags must align")
        if count <= 1:
            return LanePlan(order=list(range(count)),
                            lanes=[[i] for i in range(count)])

        touched = [self._touched(c) for c in csags]
        written: Dict[StateKey, int] = {}
        for keys in (self._written(c) for c in csags):
            for key in keys:
                written[key] = written.get(key, 0) + 1

        # A key is contested when this block predicts a write to it, or
        # when the learned profile says history keeps fighting over it
        # (covering writes the static analysis missed).
        contested: Set[StateKey] = set()
        promotions = 0
        for keys in touched:
            for key in keys:
                if key in contested:
                    continue
                if key in written:
                    contested.add(key)
                elif self.profiles.is_hot(key):
                    contested.add(key)
                    promotions += 1

        uf = _UnionFind(count)
        by_key: Dict[StateKey, int] = {}
        for index in range(count):
            for key in touched[index]:
                if key not in contested:
                    continue
                first = by_key.setdefault(key, index)
                if first != index:
                    uf.union(first, index)
        # Sender chains: nonce order must survive any reorder, so a
        # sender's transactions always share a lane.
        by_sender: Dict[object, int] = {}
        for index, tx in enumerate(txs):
            first = by_sender.setdefault(tx.sender, index)
            if first != index:
                uf.union(first, index)
        # Unanalysable transactions could touch anything; serialize them
        # against each other in one opaque lane rather than guessing.
        opaque = [i for i in range(count)
                  if csags[i].missing or not touched[i]]
        for index in opaque[1:]:
            uf.union(opaque[0], index)

        lanes_by_root: Dict[int, List[int]] = {}
        for index in range(count):
            lanes_by_root.setdefault(uf.find(index), []).append(index)
        # Lane identity = earliest packed member; within-lane order stays
        # stable by packed position (fee order intact, writers first).
        lanes = [lanes_by_root[root] for root in sorted(lanes_by_root)]
        if self.shards > 1:
            lanes = self._shard_interleave(lanes, touched)

        # Round-robin interleave: consecutive planned positions come from
        # different lanes, so a dispatch window of ~threads transactions
        # is conflict-disjoint until lanes run dry.
        order: List[int] = []
        cursors = [0] * len(lanes)
        while len(order) < count:
            for lane_id, lane in enumerate(lanes):
                if cursors[lane_id] < len(lane):
                    order.append(lane[cursors[lane_id]])
                    cursors[lane_id] += 1

        plan = LanePlan(order=order, lanes=lanes, contested_keys=contested,
                        profile_promotions=promotions)
        if self.repair and snapshot is not None and builder is not None:
            self._repair_lanes(plan, txs, csags, snapshot, builder)
        return plan

    def _shard_interleave(self, lanes: List[List[int]],
                          touched: List[Set[StateKey]]) -> List[List[int]]:
        """Reorder lanes so the round-robin cycles across home shards.

        Each lane is homed on the shard of its smallest touched key (the
        same deterministic anchor the shard classifier uses); lanes are
        then emitted by rotating over the shard groups.  Pure reordering —
        lane membership and within-lane order are untouched, so every
        correctness property of the plan survives verbatim.
        """
        from ..shard.partition import shard_of  # lazy: scheduling <- shard

        groups: Dict[int, List[List[int]]] = {}
        for lane in lanes:
            keys = set()
            for index in lane:
                keys |= touched[index]
            if keys:
                anchor = min(keys, key=lambda k: (k.address.value, k.slot))
                home = shard_of(anchor.address, self.shards)
            else:
                home = 0
            groups.setdefault(home, []).append(lane)
        ordered_groups = [groups[s] for s in sorted(groups)]
        result: List[List[int]] = []
        cursors = [0] * len(ordered_groups)
        while len(result) < len(lanes):
            for gid, group in enumerate(ordered_groups):
                if cursors[gid] < len(group):
                    result.append(group[cursors[gid]])
                    cursors[gid] += 1
        return result

    def _repair_lanes(self, plan: LanePlan, txs, csags, snapshot,
                      builder) -> None:
        """Re-refine C-SAGs invalidated by earlier in-lane predicted
        writes (mutates ``csags`` in place; counts land in the plan)."""
        # Repairs are refined against a block-local overlay the cache key
        # cannot see (it hashes the underlying snapshot identity), so the
        # content-addressed C-SAG cache must sit out this pass.
        saved_cache = getattr(builder, "_csag_cache", None)
        if saved_cache is not None:
            builder._csag_cache = None
        try:
            self._repair_lanes_uncached(plan, txs, csags, snapshot, builder)
        finally:
            if saved_cache is not None:
                builder._csag_cache = saved_cache

    def _repair_lanes_uncached(self, plan: LanePlan, txs, csags, snapshot,
                               builder) -> None:
        for lane in plan.lanes:
            overlay: Dict[StateKey, int] = {}
            for index in lane:
                csag = csags[index]
                if plan.repairs < self.max_repairs and not csag.missing:
                    stale = {
                        key for key in (csag.read_keys | csag.static_read_keys)
                        if key in overlay and overlay[key] != snapshot.get(key)
                    }
                    if stale:
                        csag = builder.build(
                            txs[index], _OverlaySnapshot(snapshot, overlay))
                        csags[index] = csag
                        plan.repairs += 1
                # Fold this transaction's predicted writes into the
                # overlay, in predicted program order.
                for access in csag.accesses:
                    if access.kind != "write":
                        continue
                    if access.commutative:
                        base = overlay.get(access.key)
                        if base is None:
                            base = snapshot.get(access.key)
                        overlay[access.key] = (base + access.delta) % (1 << 256)
                    else:
                        overlay[access.key] = access.value
