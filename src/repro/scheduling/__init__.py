"""DMVCC concurrency-control primitives, conflict-aware lane planning,
and the deterministic fork-join schedule artifact."""

from .access_sequence import (
    SNAPSHOT_VERSION,
    AccessEntry,
    AccessSequence,
    AccessSequenceSet,
    ReadResolution,
)
from .locks import LockState, LockTable, ReadyQueue
from .planner import LanePlan, LanePlanner
from .profile import ConflictProfileStore, ContractHeat, KeyHeat
from .schedule import BlockSidecar, Schedule, ScheduleEntry

__all__ = [
    "AccessEntry",
    "AccessSequence",
    "AccessSequenceSet",
    "BlockSidecar",
    "ConflictProfileStore",
    "ContractHeat",
    "KeyHeat",
    "LanePlan",
    "LanePlanner",
    "LockState",
    "LockTable",
    "ReadResolution",
    "ReadyQueue",
    "SNAPSHOT_VERSION",
    "Schedule",
    "ScheduleEntry",
]
