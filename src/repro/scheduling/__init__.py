"""DMVCC concurrency-control primitives: access sequences, locks, queues."""

from .access_sequence import (
    SNAPSHOT_VERSION,
    AccessEntry,
    AccessSequence,
    AccessSequenceSet,
    ReadResolution,
)
from .locks import LockState, LockTable, ReadyQueue

__all__ = [
    "AccessEntry",
    "AccessSequence",
    "AccessSequenceSet",
    "LockState",
    "LockTable",
    "ReadResolution",
    "ReadyQueue",
    "SNAPSHOT_VERSION",
]
