"""Learned per-key conflict profiles (EWMA-decayed contention history).

The obs subsystem attributes every abort to a (reader, writer, key) triple
and every version-wait to the key that blocked it.  This module folds that
per-block :class:`~repro.obs.attribution.AbortAttribution` into a store of
per-key *heat* values that decay exponentially across blocks — a learned
refinement of the static P-SAG: keys the analysis thinks are cold but the
execution keeps fighting over surface here, and the lane planner treats
them as contested even when no in-block write is predicted.

The store consumes the same machine-readable artifact
(:meth:`AbortAttribution.to_json`) the CLI exports, so an offline profile
dump can seed a fresh validator's scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.types import Address, StateKey

# One abort is worth this many version-waits when scoring heat: an abort
# costs a re-execution, a wait merely delays a thread.
ABORT_WEIGHT = 4.0
WAIT_WEIGHT = 1.0


def key_to_json(key: StateKey) -> dict:
    return {"address": str(key.address), "slot": key.slot}


def key_from_json(payload: dict) -> StateKey:
    return StateKey(Address.from_hex(payload["address"]), payload["slot"])


@dataclass
class KeyHeat:
    """Decayed contention state of one key."""

    key: StateKey
    heat: float = 0.0
    aborts: int = 0          # lifetime totals (undecayed, for reporting)
    waits: int = 0
    last_block: int = -1

    def as_json(self) -> dict:
        return {
            "key": key_to_json(self.key),
            "heat": self.heat,
            "aborts": self.aborts,
            "waits": self.waits,
            "last_block": self.last_block,
        }


@dataclass
class ContractHeat:
    """Aggregate heat of one contract (all its keys folded together)."""

    address: Address
    heat: float = 0.0
    aborts: int = 0


class ConflictProfileStore:
    """Per-key and per-contract contention history, EWMA-decayed.

    ``decay`` is the per-block survival factor: after each observed block,
    every key's heat is multiplied by ``decay`` before the block's fresh
    contention is added.  ``floor`` drops keys whose heat decayed below it
    (bounds the store on long streams).
    """

    def __init__(self, decay: float = 0.7, floor: float = 0.05,
                 hot_threshold: float = 1.0) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1): {decay}")
        self.decay = decay
        self.floor = floor
        self.hot_threshold = hot_threshold
        self.keys: Dict[StateKey, KeyHeat] = {}
        self.blocks_observed = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _decay_all(self) -> None:
        dead: List[StateKey] = []
        for key, entry in self.keys.items():
            entry.heat *= self.decay
            if entry.heat < self.floor:
                dead.append(key)
        for key in dead:
            del self.keys[key]

    def _bump(self, key: StateKey, aborts: int, waits: int,
              block_number: int) -> None:
        entry = self.keys.get(key)
        if entry is None:
            entry = KeyHeat(key=key)
            self.keys[key] = entry
        entry.heat += ABORT_WEIGHT * aborts + WAIT_WEIGHT * waits
        entry.aborts += aborts
        entry.waits += waits
        entry.last_block = block_number

    def observe_block(self, attribution, block_number: int = -1) -> None:
        """Fold one block's :class:`AbortAttribution` into the store."""
        self._decay_all()
        self.blocks_observed += 1
        for key, stats in attribution.contention.items():
            if stats.aborts or stats.wait_count:
                self._bump(key, stats.aborts, stats.wait_count, block_number)

    def observe_json(self, payload: dict, block_number: int = -1) -> None:
        """Fold an exported ``AbortAttribution.to_json()`` artifact."""
        self._decay_all()
        self.blocks_observed += 1
        for entry in payload.get("contention", ()):
            aborts = int(entry.get("aborts", 0))
            waits = int(entry.get("waits", 0))
            if aborts or waits:
                self._bump(key_from_json(entry["key"]), aborts, waits,
                           block_number)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    def heat(self, key: StateKey) -> float:
        entry = self.keys.get(key)
        return entry.heat if entry is not None else 0.0

    def is_hot(self, key: StateKey) -> bool:
        return self.heat(key) >= self.hot_threshold

    def hot_keys(self, top: Optional[int] = None) -> List[KeyHeat]:
        """Keys at or above the hot threshold, hottest first."""
        ranked = sorted(
            (e for e in self.keys.values() if e.heat >= self.hot_threshold),
            key=lambda e: (-e.heat, str(e.key)),
        )
        return ranked if top is None else ranked[:top]

    def contract_heat(self) -> List[ContractHeat]:
        """Per-contract aggregate, hottest first."""
        folded: Dict[Address, ContractHeat] = {}
        for entry in self.keys.values():
            agg = folded.get(entry.key.address)
            if agg is None:
                agg = ContractHeat(address=entry.key.address)
                folded[entry.key.address] = agg
            agg.heat += entry.heat
            agg.aborts += entry.aborts
        return sorted(folded.values(), key=lambda c: (-c.heat, str(c.address)))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "decay": self.decay,
            "floor": self.floor,
            "hot_threshold": self.hot_threshold,
            "blocks_observed": self.blocks_observed,
            "keys": [e.as_json() for e in sorted(
                self.keys.values(), key=lambda e: (-e.heat, str(e.key)))],
        }

    def save(self, path) -> None:
        """Atomically persist the store as JSON (restart continuity: a
        validator reloading this file resumes planning with the heat it
        had learned, instead of re-paying the warm-up aborts)."""
        import json
        import os

        payload = json.dumps(self.to_json(), indent=2, sort_keys=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "ConflictProfileStore":
        """Inverse of :meth:`save`; raises ``OSError`` when absent."""
        import json

        with open(path, encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    @classmethod
    def from_json(cls, payload: dict) -> "ConflictProfileStore":
        store = cls(
            decay=payload.get("decay", 0.7),
            floor=payload.get("floor", 0.05),
            hot_threshold=payload.get("hot_threshold", 1.0),
        )
        store.blocks_observed = payload.get("blocks_observed", 0)
        for entry in payload.get("keys", ()):
            key = key_from_json(entry["key"])
            store.keys[key] = KeyHeat(
                key=key,
                heat=float(entry.get("heat", 0.0)),
                aborts=int(entry.get("aborts", 0)),
                waits=int(entry.get("waits", 0)),
                last_block=int(entry.get("last_block", -1)),
            )
        return store
