"""Lock table and ready queue for DMVCC schedule generation.

The paper speaks of transactions "gaining the lock of a state item": the
lock of item ``I`` for transaction ``T_j`` is granted when the version
``T_j`` must read is available — i.e. every preceding write to ``I`` is
finished.  A transaction becomes *ready* (joins ``Q_ready``) once it holds
the locks of all items its C-SAG predicts it will read.  Commutative writes
and pure writes need no locks: write versioning gives every write its own
slot unconditionally.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..core.types import StateKey
from .access_sequence import AccessSequenceSet


@dataclass
class LockState:
    """Per-transaction lock bookkeeping."""

    tx_index: int
    needed: Set[StateKey] = field(default_factory=set)
    granted: Set[StateKey] = field(default_factory=set)

    @property
    def ready(self) -> bool:
        return self.needed <= self.granted

    def missing(self) -> Set[StateKey]:
        return self.needed - self.granted


class LockTable:
    """Tracks which read-locks each transaction holds.

    ``obs``/``clock`` enable structured lock events: ``obs`` is a
    :class:`repro.obs.events.EventBus` and ``clock`` a zero-argument
    callable returning the current simulated time (the lock table itself
    has no notion of time).  Both default to off at one-branch cost.
    """

    def __init__(self, obs=None, clock=None) -> None:
        self._states: Dict[int, LockState] = {}
        self._obs = obs
        self._clock = clock if clock is not None else (lambda: 0.0)

    def register(self, tx_index: int, read_keys: Iterable[StateKey]) -> LockState:
        state = LockState(tx_index, needed=set(read_keys))
        self._states[tx_index] = state
        return state

    def state(self, tx_index: int) -> LockState:
        return self._states[tx_index]

    def grant(self, tx_index: int, key: StateKey) -> bool:
        """Grant the lock of ``key``; returns True when the transaction has
        just become fully ready (Algorithm 2, lines 8-10)."""
        state = self._states.get(tx_index)
        if state is None:
            return False
        if key in state.granted:
            return False
        was_ready = state.ready
        state.granted.add(key)
        if self._obs is not None:
            self._obs.lock_acquire(self._clock(), tx_index, key)
        return state.ready and not was_ready

    def release(self, tx_index: int, key: StateKey) -> None:
        """Take the lock of ``key`` back (Algorithm 4, line 7)."""
        state = self._states.get(tx_index)
        if state is not None and key in state.granted:
            state.granted.discard(key)
            if self._obs is not None:
                self._obs.lock_release(self._clock(), tx_index, key)

    def release_all(self, tx_index: int) -> None:
        state = self._states.get(tx_index)
        if state is not None:
            if self._obs is not None and state.granted:
                now = self._clock()
                for key in sorted(state.granted):
                    self._obs.lock_release(now, tx_index, key)
            state.granted.clear()

    def holds(self, tx_index: int, key: StateKey) -> bool:
        state = self._states.get(tx_index)
        return state is not None and key in state.granted

    def is_ready(self, tx_index: int) -> bool:
        state = self._states.get(tx_index)
        return state is not None and state.ready

    def refresh(self, tx_index: int, sequences: AccessSequenceSet) -> bool:
        """Re-derive grants from the current access-sequence state; returns
        readiness.  Used after aborts, when earlier grants may have become
        invalid (a writer was retracted) or new grants possible."""
        state = self._states.get(tx_index)
        if state is None:
            return False
        previously = set(state.granted)
        state.granted.clear()
        for key in state.needed:
            seq = sequences.get(key)
            if seq is None or seq.resolve_read(tx_index).ready:
                state.granted.add(key)
                if self._obs is not None and key not in previously:
                    self._obs.lock_acquire(self._clock(), tx_index, key)
        return state.ready


class ReadyQueue:
    """``Q_ready`` ordered by transaction (block) index.

    Popping the lowest ready index keeps threads working on the earliest
    transactions first, which both advances conflict chains promptly (they
    are ordered by index) and minimises stale reads — later transactions
    executed early are the ones at risk of aborting.  Membership tests are
    O(1); removal is lazy.
    """

    def __init__(self) -> None:
        self._heap: List[int] = []
        self._members: Set[int] = set()

    def push(self, tx_index: int) -> bool:
        if tx_index in self._members:
            return False
        self._members.add(tx_index)
        heapq.heappush(self._heap, tx_index)
        return True

    def pop(self) -> Optional[int]:
        while self._heap:
            tx_index = heapq.heappop(self._heap)
            if tx_index in self._members:
                self._members.discard(tx_index)
                return tx_index
        return None

    def remove(self, tx_index: int) -> bool:
        """Lazy removal (Algorithm 4, line 4)."""
        if tx_index in self._members:
            self._members.discard(tx_index)
            return True
        return False

    def __contains__(self, tx_index: int) -> bool:
        return tx_index in self._members

    def __len__(self) -> int:
        return len(self._members)
