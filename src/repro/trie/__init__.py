"""Merkle Patricia Trie: authenticated key-value storage with O(1) snapshots."""

from .mpt import EMPTY_ROOT, NodeStore, Trie, verify_consistency
from .nodes import BranchNode, ExtensionNode, LeafNode, decode_node, node_hash
from .overlay import CommitStats, Overlay, apply_batch
from .proof import MerkleProof, generate_proof, verify_proof

__all__ = [
    "BranchNode",
    "CommitStats",
    "EMPTY_ROOT",
    "ExtensionNode",
    "LeafNode",
    "MerkleProof",
    "NodeStore",
    "Overlay",
    "Trie",
    "apply_batch",
    "decode_node",
    "generate_proof",
    "node_hash",
    "verify_consistency",
    "verify_proof",
]
