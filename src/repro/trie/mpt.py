"""A from-scratch Merkle Patricia Trie.

The trie maps byte keys to byte values and authenticates its whole contents
with a single 32-byte *root hash*: two tries hold identical data if and only
if their roots are equal (up to hash collisions).  This is exactly the
property the paper's RQ1 uses to check that DMVCC's parallel execution
produced the same state as serial execution.

Nodes live in a content-addressed :class:`NodeStore` keyed by node hash.
The store is append-only, so past roots remain readable forever — that gives
free, O(1) snapshots with structural sharing, mirroring how Geth keeps one
state trie per block.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..core.errors import MissingNodeError, TrieError
from ..core.hashing import keccak
from ..db.backend import MemoryBackend
from .nibbles import bytes_to_nibbles, common_prefix_length, nibbles_to_bytes
from .nodes import (
    BRANCH_WIDTH,
    BranchNode,
    ExtensionNode,
    LeafNode,
    TrieNode,
    decode_node,
    node_hash,
)

EMPTY_ROOT = node_hash(LeafNode((), b""))  # sentinel; never stored

# The put-side dedup memo (node → digest) is cleared wholesale once it
# reaches this size, bounding the extra memory without LRU bookkeeping on
# the hot path.
MEMO_MAX = 1 << 15


class NodeStore:
    """Content-addressed storage for encoded trie nodes.

    Bytes live in a pluggable :class:`~repro.db.backend.NodeBackend`: the
    in-memory dict by default (append-only, process lifetime) or the
    durable log-structured engine (:class:`~repro.db.engine.DurableBackend`)
    when the StateDB was opened on a path.

    ``hash_count`` counts node-hash invocations; the commit pipeline and
    the state-commit benchmarks read deltas of it to compare the batched
    overlay path against the legacy per-key path.  :meth:`put` keeps a
    value-keyed memo of nodes it has already hashed, so repeated puts of an
    identical node are a dict hit — no re-encode, no re-hash, no re-store —
    and ``dedup_hits`` counts them.
    """

    def __init__(self, backend=None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.hash_count = 0
        self.dedup_hits = 0
        self._memo: Dict[TrieNode, bytes] = {}

    def put(self, node: TrieNode) -> bytes:
        memo = self._memo
        digest = memo.get(node)
        if digest is not None:
            self.dedup_hits += 1
            return digest
        encoded = node.encode()
        digest = keccak(encoded)
        self.hash_count += 1
        self.backend.put(digest, encoded)
        if len(memo) >= MEMO_MAX:
            memo.clear()
        memo[node] = digest
        return digest

    def get(self, digest: bytes) -> TrieNode:
        encoded = self.backend.get(digest)
        if encoded is None:
            raise MissingNodeError(f"missing trie node {digest.hex()}")
        return decode_node(encoded)

    def commit_root(self, root: Optional[bytes], height: int):
        """Record a durability boundary (no-op and ``None`` in-memory);
        returns the backend's :class:`~repro.db.backend.CommitIO`."""
        return self.backend.commit_root(root, height)

    def compact(self, retention: Optional[int] = None):
        """Prune the backend (durable only) and drop the put memo — memoised
        digests may now point at nodes compaction reclaimed."""
        report = self.backend.compact(retention)
        self._memo.clear()
        return report

    def close(self) -> None:
        self.backend.close()

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self.backend


class Trie:
    """Merkle Patricia Trie over a shared :class:`NodeStore`.

    Mutations update :attr:`root` in place; call :meth:`copy` to fork a
    logically independent trie sharing the same store (O(1)).
    """

    def __init__(self, store: Optional[NodeStore] = None, root: Optional[bytes] = None) -> None:
        self.store = store if store is not None else NodeStore()
        self.root: Optional[bytes] = root  # None encodes the empty trie
        # Key count, maintained incrementally so ``len()`` never walks the
        # trie.  ``None`` means unknown (a root adopted from elsewhere);
        # it is derived lazily on first ``__len__`` and kept fresh after.
        self._count: Optional[int] = 0 if root is None else None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def root_hash(self) -> bytes:
        """Root hash; the empty trie hashes to a fixed sentinel."""
        return self.root if self.root is not None else EMPTY_ROOT

    def copy(self) -> "Trie":
        """Cheap fork sharing the node store (copy-on-write semantics)."""
        fork = Trie(self.store, self.root)
        fork._count = self._count
        return fork

    def get(self, key: bytes) -> Optional[bytes]:
        """Look up ``key``; returns ``None`` when absent."""
        if self.root is None:
            return None
        return self._get(self.store.get(self.root), bytes_to_nibbles(key))

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``.  An empty value deletes the key, as in
        Ethereum (storage slots holding zero are pruned)."""
        if value == b"":
            self.delete(key)
            return
        path = bytes_to_nibbles(key)
        if self.root is None:
            self.root = self.store.put(LeafNode(path, value))
            self._bump(1)
        else:
            self.root = self._insert(self.store.get(self.root), path, value)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        if self.root is None:
            return False
        result = self._delete(self.store.get(self.root), bytes_to_nibbles(key))
        if result is _UNCHANGED:
            return False
        self.root = result
        self._bump(-1)
        return True

    def commit_batch(self, items) -> "CommitStats":
        """Apply a whole write batch through a dirty-node overlay and seal.

        ``items`` maps byte keys to byte values (empty value deletes, as in
        :meth:`set`); accepts any mapping or iterable of pairs.  Every path
        node the batch touches is expanded into an unhashed in-memory dirty
        node once, all writes mutate those dirty nodes in place (applied in
        key order so shared prefixes are visited once), and hashing happens
        exactly once per dirty node in a single post-order seal pass — the
        sealed root is byte-identical to applying the same batch through
        per-key :meth:`set`/:meth:`delete` calls, but intermediate tree
        shapes are never hashed or persisted.
        """
        from .overlay import apply_batch

        pairs = items.items() if hasattr(items, "items") else items
        self.root, stats = apply_batch(self.store, self.root, pairs)
        if self._count is not None:
            self._count += stats.inserted - stats.deleted
        return stats

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in lexicographic key order."""
        if self.root is None:
            return
        yield from self._walk(self.store.get(self.root), ())

    def __contains__(self, key: bytes) -> bool:
        if self.root is None or self._count == 0:
            return False
        return self.get(key) is not None

    def __len__(self) -> int:
        """Key count without walking: maintained incrementally by ``set``,
        ``delete``, and ``commit_batch``; derived once (then cached and kept
        fresh) for tries adopted from a pre-existing root."""
        if self._count is None:
            self._count = sum(1 for _ in self.items())
        return self._count

    def _bump(self, delta: int) -> None:
        if self._count is not None:
            self._count += delta

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _get(self, node: TrieNode, path: Tuple[int, ...]) -> Optional[bytes]:
        while True:
            if isinstance(node, LeafNode):
                return node.value if node.path == path else None
            if isinstance(node, ExtensionNode):
                prefix_len = len(node.path)
                if path[:prefix_len] != node.path:
                    return None
                node = self.store.get(node.child)
                path = path[prefix_len:]
                continue
            # BranchNode
            if not path:
                return node.value
            child = node.children[path[0]]
            if child is None:
                return None
            node = self.store.get(child)
            path = path[1:]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def _insert(self, node: TrieNode, path: Tuple[int, ...], value: bytes) -> bytes:
        if isinstance(node, LeafNode):
            return self._insert_into_leaf(node, path, value)
        if isinstance(node, ExtensionNode):
            return self._insert_into_extension(node, path, value)
        return self._insert_into_branch(node, path, value)

    def _insert_into_leaf(self, node: LeafNode, path: Tuple[int, ...], value: bytes) -> bytes:
        if node.path == path:
            return self.store.put(LeafNode(path, value))
        shared = common_prefix_length(node.path, path)
        branch = BranchNode()
        branch = self._attach_tail(branch, node.path[shared:], node.value)
        branch = self._attach_tail(branch, path[shared:], value)
        self._bump(1)
        branch_hash = self.store.put(branch)
        if shared:
            return self.store.put(ExtensionNode(path[:shared], branch_hash))
        return branch_hash

    def _insert_into_extension(
        self, node: ExtensionNode, path: Tuple[int, ...], value: bytes
    ) -> bytes:
        shared = common_prefix_length(node.path, path)
        if shared == len(node.path):
            child_hash = self._insert(self.store.get(node.child), path[shared:], value)
            return self.store.put(ExtensionNode(node.path, child_hash))
        # The extension splits: the part of its path beyond the shared prefix
        # moves below a new branch.
        branch = BranchNode()
        ext_nibble = node.path[shared]
        ext_tail = node.path[shared + 1 :]
        if ext_tail:
            tail_hash = self.store.put(ExtensionNode(ext_tail, node.child))
        else:
            tail_hash = node.child
        branch = branch.with_child(ext_nibble, tail_hash)
        branch = self._attach_tail(branch, path[shared:], value)
        self._bump(1)
        branch_hash = self.store.put(branch)
        if shared:
            return self.store.put(ExtensionNode(path[:shared], branch_hash))
        return branch_hash

    def _insert_into_branch(self, node: BranchNode, path: Tuple[int, ...], value: bytes) -> bytes:
        if not path:
            if node.value is None:
                self._bump(1)
            return self.store.put(node.with_value(value))
        nibble, rest = path[0], path[1:]
        child = node.children[nibble]
        if child is None:
            child_hash = self.store.put(LeafNode(rest, value))
            self._bump(1)
        else:
            child_hash = self._insert(self.store.get(child), rest, value)
        return self.store.put(node.with_child(nibble, child_hash))

    def _attach_tail(self, branch: BranchNode, tail: Tuple[int, ...], value: bytes) -> BranchNode:
        """Attach a key tail (possibly empty) with its value under a branch."""
        if not tail:
            return branch.with_value(value)
        leaf_hash = self.store.put(LeafNode(tail[1:], value))
        return branch.with_child(tail[0], leaf_hash)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def _delete(self, node: TrieNode, path: Tuple[int, ...]):
        """Returns the replacement hash, ``None`` for an emptied subtree, or
        the ``_UNCHANGED`` sentinel when the key was absent."""
        if isinstance(node, LeafNode):
            return None if node.path == path else _UNCHANGED
        if isinstance(node, ExtensionNode):
            prefix_len = len(node.path)
            if path[:prefix_len] != node.path:
                return _UNCHANGED
            result = self._delete(self.store.get(node.child), path[prefix_len:])
            if result is _UNCHANGED:
                return _UNCHANGED
            if result is None:
                return None
            return self._normalise_extension(node.path, result)
        # BranchNode
        if not path:
            if node.value is None:
                return _UNCHANGED
            return self._normalise_branch(node.with_value(None))
        child = node.children[path[0]]
        if child is None:
            return _UNCHANGED
        result = self._delete(self.store.get(child), path[1:])
        if result is _UNCHANGED:
            return _UNCHANGED
        return self._normalise_branch(node.with_child(path[0], result))

    def _normalise_extension(self, path: Tuple[int, ...], child_hash: bytes) -> bytes:
        """Collapse extension→{extension,leaf} chains after a deletion."""
        child = self.store.get(child_hash)
        if isinstance(child, LeafNode):
            return self.store.put(LeafNode(path + child.path, child.value))
        if isinstance(child, ExtensionNode):
            return self.store.put(ExtensionNode(path + child.path, child.child))
        return self.store.put(ExtensionNode(path, child_hash))

    def _normalise_branch(self, branch: BranchNode):
        """Shrink branches left with <2 references back to compact nodes."""
        live = branch.live_children()
        if branch.value is not None:
            if not live:
                return self.store.put(LeafNode((), branch.value))
            return self.store.put(branch)
        if len(live) == 0:
            return None
        if len(live) == 1:
            nibble, child_hash = live[0]
            return self._normalise_extension((nibble,), child_hash)
        return self.store.put(branch)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def _walk(self, node: TrieNode, prefix: Tuple[int, ...]) -> Iterator[Tuple[bytes, bytes]]:
        if isinstance(node, LeafNode):
            yield nibbles_to_bytes(prefix + node.path), node.value
            return
        if isinstance(node, ExtensionNode):
            yield from self._walk(self.store.get(node.child), prefix + node.path)
            return
        if node.value is not None:
            yield nibbles_to_bytes(prefix), node.value
        for nibble, child in node.live_children():
            yield from self._walk(self.store.get(child), prefix + (nibble,))


_UNCHANGED = object()


def verify_consistency(trie: Trie) -> int:
    """Walk the whole trie verifying every child hash resolves; returns the
    number of leaves.  Used by tests and failure-injection checks."""
    count = 0
    for _key, value in trie.items():
        if not isinstance(value, bytes):
            raise TrieError("non-bytes value in trie")
        count += 1
    return count
