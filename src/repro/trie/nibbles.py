"""Nibble-path utilities for the Merkle Patricia Trie.

Trie keys are traversed four bits (one *nibble*) at a time.  Leaf and
extension nodes store compressed nibble paths using Ethereum's hex-prefix
(HP) encoding, which packs two nibbles per byte and records both the parity
of the path length and whether the node is a leaf.
"""

from __future__ import annotations

from typing import Tuple

from ..core.errors import TrieError


def bytes_to_nibbles(data: bytes) -> Tuple[int, ...]:
    """Expand each byte into its high and low nibble."""
    nibbles = []
    for byte in data:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0x0F)
    return tuple(nibbles)


def nibbles_to_bytes(nibbles: Tuple[int, ...]) -> bytes:
    """Pack an even-length nibble sequence back into bytes."""
    if len(nibbles) % 2 != 0:
        raise TrieError("cannot pack an odd number of nibbles into bytes")
    return bytes((nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2))


def common_prefix_length(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    """Length of the longest common prefix of two nibble paths."""
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


def hp_encode(nibbles: Tuple[int, ...], is_leaf: bool) -> bytes:
    """Hex-prefix encode a nibble path.

    The first nibble of the output encodes flags: bit 1 = leaf, bit 0 = odd
    path length.  An even path gets a zero padding nibble after the flag.
    """
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2 == 1:
        prefixed = (flag + 1,) + nibbles
    else:
        prefixed = (flag, 0) + nibbles
    return nibbles_to_bytes(prefixed)


def hp_decode(data: bytes) -> Tuple[Tuple[int, ...], bool]:
    """Decode a hex-prefix path; returns ``(nibbles, is_leaf)``."""
    if not data:
        raise TrieError("empty hex-prefix encoding")
    nibbles = bytes_to_nibbles(data)
    flag = nibbles[0]
    if flag > 3:
        raise TrieError(f"invalid hex-prefix flag nibble: {flag}")
    is_leaf = flag >= 2
    if flag % 2 == 1:  # odd length: path starts right after the flag nibble
        return nibbles[1:], is_leaf
    if nibbles[1] != 0:
        raise TrieError("non-zero padding nibble in hex-prefix encoding")
    return nibbles[2:], is_leaf
