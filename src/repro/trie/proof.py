"""Merkle proofs over the Patricia trie.

A proof for a key is the list of encoded nodes on the path from the root to
the terminal node (or to the divergence point, for absence proofs).  A light
client holding only the root hash can verify inclusion/exclusion without the
full state — the role light nodes play in the paper's blockchain model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import TrieError
from ..core.hashing import keccak
from .mpt import Trie
from .nibbles import bytes_to_nibbles
from .nodes import BranchNode, ExtensionNode, LeafNode, decode_node


@dataclass(frozen=True)
class MerkleProof:
    """Proof that ``key`` maps to ``value`` (or is absent) under ``root``."""

    key: bytes
    value: Optional[bytes]
    nodes: Tuple[bytes, ...]  # encoded nodes, root first


def generate_proof(trie: Trie, key: bytes) -> MerkleProof:
    """Collect the node path for ``key`` from a live trie."""
    nodes: List[bytes] = []
    value: Optional[bytes] = None
    if trie.root is not None:
        node = trie.store.get(trie.root)
        path = bytes_to_nibbles(key)
        while True:
            nodes.append(node.encode())
            if isinstance(node, LeafNode):
                if node.path == path:
                    value = node.value
                break
            if isinstance(node, ExtensionNode):
                if path[: len(node.path)] != node.path:
                    break
                path = path[len(node.path):]
                node = trie.store.get(node.child)
                continue
            if not path:
                value = node.value
                break
            child = node.children[path[0]]
            if child is None:
                break
            path = path[1:]
            node = trie.store.get(child)
    return MerkleProof(key, value, tuple(nodes))


def verify_proof(root_hash: bytes, proof: MerkleProof) -> bool:
    """Check a proof against a trusted root hash.

    Returns ``True`` iff the node chain is hash-linked from ``root_hash``
    and consistently shows ``proof.value`` for ``proof.key`` (with ``None``
    meaning verified absence).
    """
    path = bytes_to_nibbles(proof.key)
    expected = root_hash
    if not proof.nodes:
        return proof.value is None
    for i, encoded in enumerate(proof.nodes):
        if keccak(encoded) != expected:
            return False
        node = decode_node(encoded)
        is_last = i == len(proof.nodes) - 1
        if isinstance(node, LeafNode):
            if not is_last:
                return False
            if node.path == path:
                return proof.value == node.value
            return proof.value is None
        if isinstance(node, ExtensionNode):
            if path[: len(node.path)] != node.path:
                return is_last and proof.value is None
            path = path[len(node.path):]
            if is_last:
                return False
            expected = node.child
            continue
        if isinstance(node, BranchNode):
            if not path:
                if not is_last:
                    return False
                return proof.value == node.value
            child = node.children[path[0]]
            if child is None:
                return is_last and proof.value is None
            path = path[1:]
            if is_last:
                return False
            expected = child
            continue
        raise TrieError("unknown node type in proof")
    return False
