"""Merkle Patricia Trie node types and their canonical encodings.

Three node shapes, as in Ethereum:

* :class:`LeafNode` — a compressed terminal path and a value.
* :class:`ExtensionNode` — a compressed shared path pointing at one child.
* :class:`BranchNode` — sixteen child references (one per nibble) plus an
  optional value for keys ending exactly at the branch.

Nodes are immutable; every mutation of the trie builds new nodes, which is
what makes snapshots free (structural sharing).  A node's identity is the
hash of its RLP encoding; children are referenced by that hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..core.encoding import rlp_decode, rlp_encode
from ..core.errors import TrieError
from ..core.hashing import keccak
from .nibbles import hp_decode, hp_encode

BRANCH_WIDTH = 16

TrieNode = Union["LeafNode", "ExtensionNode", "BranchNode"]


@dataclass(frozen=True)
class LeafNode:
    """Terminal node: remaining key path and stored value."""

    path: Tuple[int, ...]
    value: bytes

    def encode(self) -> bytes:
        return rlp_encode([hp_encode(self.path, is_leaf=True), self.value])


@dataclass(frozen=True)
class ExtensionNode:
    """Path-compression node: shared prefix and a single child hash."""

    path: Tuple[int, ...]
    child: bytes

    def __post_init__(self) -> None:
        if not self.path:
            raise TrieError("extension node requires a non-empty path")

    def encode(self) -> bytes:
        return rlp_encode([hp_encode(self.path, is_leaf=False), self.child])


@dataclass(frozen=True)
class BranchNode:
    """Sixteen-way fanout node with an optional terminal value."""

    children: Tuple[Optional[bytes], ...] = field(
        default=(None,) * BRANCH_WIDTH
    )
    value: Optional[bytes] = None

    def __post_init__(self) -> None:
        if len(self.children) != BRANCH_WIDTH:
            raise TrieError(f"branch node needs {BRANCH_WIDTH} children")

    def encode(self) -> bytes:
        items: List[bytes] = [child if child is not None else b"" for child in self.children]
        items.append(self.value if self.value is not None else b"")
        return rlp_encode(items)

    def with_child(self, nibble: int, child: Optional[bytes]) -> "BranchNode":
        children = list(self.children)
        children[nibble] = child
        return BranchNode(tuple(children), self.value)

    def with_value(self, value: Optional[bytes]) -> "BranchNode":
        return BranchNode(self.children, value)

    def live_children(self) -> List[Tuple[int, bytes]]:
        """Pairs of (nibble, child hash) for the non-empty slots."""
        return [(i, c) for i, c in enumerate(self.children) if c is not None]


def node_hash(node: TrieNode) -> bytes:
    """Canonical 32-byte identity of a node."""
    return keccak(node.encode())


def decode_node(encoded: bytes) -> TrieNode:
    """Inverse of ``node.encode()``."""
    items = rlp_decode(encoded)
    if not isinstance(items, list):
        raise TrieError("trie node must decode to an RLP list")
    if len(items) == 2:
        path_bytes, payload = items
        if not isinstance(path_bytes, bytes) or not isinstance(payload, bytes):
            raise TrieError("malformed two-item trie node")
        path, is_leaf = hp_decode(path_bytes)
        if is_leaf:
            return LeafNode(path, payload)
        return ExtensionNode(path, payload)
    if len(items) == BRANCH_WIDTH + 1:
        children = tuple(
            item if isinstance(item, bytes) and item else None
            for item in items[:BRANCH_WIDTH]
        )
        raw_value = items[BRANCH_WIDTH]
        value = raw_value if isinstance(raw_value, bytes) and raw_value else None
        return BranchNode(children, value)
    raise TrieError(f"unexpected trie node arity: {len(items)}")
