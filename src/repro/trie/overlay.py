"""Batched trie commits: a mutable dirty-node overlay with deferred hashing.

The plain :class:`~repro.trie.mpt.Trie` hashes and persists every node on a
key's path on *every* ``set`` — a block committing ``k`` writes of average
depth ``d`` pays ``O(k·d)`` hash invocations, and every intermediate root it
passes through leaves orphaned nodes in the :class:`NodeStore` forever.

The overlay amortises both costs across the batch.  During a commit, the
nodes a write touches are expanded exactly once into mutable, *unhashed*
in-memory **dirty nodes**; every write of the block mutates those dirty
nodes in place (shared prefixes are expanded a single time when writes are
applied in nibble-path order); and hashing/serialisation happens exactly
once per dirty node in a single post-order :meth:`Overlay.seal` pass.
Intermediate tree shapes that never make it into a sealed root are never
hashed and never persisted, so the node store stops accumulating garbage.

The sealed root is byte-identical to the root the per-key path produces for
the same contents — ``repro verify`` re-asserts this on every fuzz block,
and the property tests in ``tests/trie/test_overlay.py`` drive both paths
over random batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from .mpt import NodeStore
from .nibbles import bytes_to_nibbles, common_prefix_length
from .nodes import (
    BRANCH_WIDTH,
    BranchNode,
    ExtensionNode,
    LeafNode,
    TrieNode,
)

Nibbles = Tuple[int, ...]


@dataclass
class CommitStats:
    """Accounting for one batched commit.

    ``inserted``/``deleted`` are *net key-count* deltas (an overwrite of an
    existing key counts as neither), which is how :meth:`Trie.commit_batch`
    maintains ``len(trie)`` without walking.  ``nodes_sealed`` and
    ``hashes_computed`` are identical for the overlay (one hash per sealed
    node) but are tracked separately so the legacy per-key path can report
    through the same struct.
    """

    writes: int = 0            # non-empty values applied
    deletes: int = 0           # empty values applied (slot prunes)
    inserted: int = 0          # keys that did not exist before
    deleted: int = 0           # keys that existed and were removed
    nodes_sealed: int = 0      # dirty nodes persisted by seal()
    hashes_computed: int = 0   # node-hash invocations


class _DirtyLeaf:
    __slots__ = ("path", "value")

    def __init__(self, path: Nibbles, value: bytes) -> None:
        self.path = path
        self.value = value


class _DirtyExtension:
    __slots__ = ("path", "child")

    def __init__(self, path: Nibbles, child: "_Ref") -> None:
        self.path = path
        self.child = child


class _DirtyBranch:
    __slots__ = ("children", "value")

    def __init__(self) -> None:
        self.children: List[Optional[_Ref]] = [None] * BRANCH_WIDTH
        self.value: Optional[bytes] = None


_Dirty = Union[_DirtyLeaf, _DirtyExtension, _DirtyBranch]
# A child reference inside the overlay: either a clean node's 32-byte hash
# (still living only in the store) or an expanded dirty node.
_Ref = Union[bytes, _Dirty]

_UNCHANGED = object()


def _to_dirty(node: TrieNode) -> _Dirty:
    """Shallow-expand one clean node; children stay as hash references."""
    if isinstance(node, LeafNode):
        return _DirtyLeaf(node.path, node.value)
    if isinstance(node, ExtensionNode):
        return _DirtyExtension(node.path, node.child)
    branch = _DirtyBranch()
    branch.children = list(node.children)
    branch.value = node.value
    return branch


class Overlay:
    """One in-flight batched commit against a store-backed root.

    Usage: construct over ``(store, root)``, call :meth:`set` for every
    write of the batch (an empty value deletes, as in Ethereum), then call
    :meth:`seal` once to hash and persist the dirty region and obtain the
    new root.  Apply writes sorted by key so shared path prefixes are
    expanded once.
    """

    def __init__(self, store: NodeStore, root: Optional[bytes]) -> None:
        self.store = store
        self._root: Optional[_Ref] = root
        self.stats = CommitStats()
        self._sealed = False

    # ------------------------------------------------------------------
    # Applying writes
    # ------------------------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        """Stage one write; ``value == b""`` stages a deletion."""
        if self._sealed:
            raise RuntimeError("overlay already sealed")
        path = bytes_to_nibbles(key)
        if value == b"":
            self._apply_delete(path)
        else:
            self._apply_insert(path, value)

    def _apply_insert(self, path: Nibbles, value: bytes) -> None:
        self.stats.writes += 1
        if self._root is None:
            self._root = _DirtyLeaf(path, value)
            self.stats.inserted += 1
            return
        self._root = self._insert(self._expand(self._root), path, value)

    def _apply_delete(self, path: Nibbles) -> None:
        self.stats.deletes += 1
        if self._root is None:
            return
        result = self._delete(self._expand(self._root), path)
        if result is _UNCHANGED:
            return
        self.stats.deleted += 1
        self._root = result

    def _expand(self, ref: _Ref) -> _Dirty:
        if isinstance(ref, bytes):
            return _to_dirty(self.store.get(ref))
        return ref

    # ------------------------------------------------------------------
    # Insertion (mirrors Trie._insert on mutable nodes)
    # ------------------------------------------------------------------

    def _insert(self, node: _Dirty, path: Nibbles, value: bytes) -> _Dirty:
        if isinstance(node, _DirtyLeaf):
            return self._insert_into_leaf(node, path, value)
        if isinstance(node, _DirtyExtension):
            return self._insert_into_extension(node, path, value)
        return self._insert_into_branch(node, path, value)

    def _insert_into_leaf(self, node: _DirtyLeaf, path: Nibbles, value: bytes) -> _Dirty:
        if node.path == path:
            node.value = value
            return node
        shared = common_prefix_length(node.path, path)
        branch = _DirtyBranch()
        self._attach_tail(branch, node.path[shared:], node.value)
        self._attach_tail(branch, path[shared:], value)
        self.stats.inserted += 1
        if shared:
            return _DirtyExtension(path[:shared], branch)
        return branch

    def _insert_into_extension(
        self, node: _DirtyExtension, path: Nibbles, value: bytes
    ) -> _Dirty:
        shared = common_prefix_length(node.path, path)
        if shared == len(node.path):
            node.child = self._insert(self._expand(node.child), path[shared:], value)
            return node
        # The extension splits: the part of its path beyond the shared prefix
        # moves below a new branch (same shape as Trie._insert_into_extension).
        branch = _DirtyBranch()
        ext_nibble = node.path[shared]
        ext_tail = node.path[shared + 1 :]
        if ext_tail:
            branch.children[ext_nibble] = _DirtyExtension(ext_tail, node.child)
        else:
            branch.children[ext_nibble] = node.child
        self._attach_tail(branch, path[shared:], value)
        self.stats.inserted += 1
        if shared:
            return _DirtyExtension(path[:shared], branch)
        return branch

    def _insert_into_branch(self, node: _DirtyBranch, path: Nibbles, value: bytes) -> _Dirty:
        if not path:
            if node.value is None:
                self.stats.inserted += 1
            node.value = value
            return node
        nibble, rest = path[0], path[1:]
        child = node.children[nibble]
        if child is None:
            node.children[nibble] = _DirtyLeaf(rest, value)
            self.stats.inserted += 1
        else:
            node.children[nibble] = self._insert(self._expand(child), rest, value)
        return node

    @staticmethod
    def _attach_tail(branch: _DirtyBranch, tail: Nibbles, value: bytes) -> None:
        if not tail:
            branch.value = value
        else:
            branch.children[tail[0]] = _DirtyLeaf(tail[1:], value)

    # ------------------------------------------------------------------
    # Deletion (mirrors Trie._delete on mutable nodes)
    # ------------------------------------------------------------------

    def _delete(self, node: _Dirty, path: Nibbles):
        """Returns the replacement dirty node, ``None`` for an emptied
        subtree, or ``_UNCHANGED`` when the key was absent."""
        if isinstance(node, _DirtyLeaf):
            return None if node.path == path else _UNCHANGED
        if isinstance(node, _DirtyExtension):
            prefix_len = len(node.path)
            if path[:prefix_len] != node.path:
                return _UNCHANGED
            result = self._delete(self._expand(node.child), path[prefix_len:])
            if result is _UNCHANGED:
                return _UNCHANGED
            if result is None:
                return None
            return self._normalise_extension(node.path, result)
        # _DirtyBranch
        if not path:
            if node.value is None:
                return _UNCHANGED
            node.value = None
            return self._normalise_branch(node)
        child = node.children[path[0]]
        if child is None:
            return _UNCHANGED
        result = self._delete(self._expand(child), path[1:])
        if result is _UNCHANGED:
            return _UNCHANGED
        node.children[path[0]] = result
        return self._normalise_branch(node)

    def _normalise_extension(self, path: Nibbles, child: _Ref) -> _Dirty:
        """Collapse extension→{extension,leaf} chains after a deletion."""
        child = self._expand(child)
        if isinstance(child, _DirtyLeaf):
            return _DirtyLeaf(path + child.path, child.value)
        if isinstance(child, _DirtyExtension):
            return _DirtyExtension(path + child.path, child.child)
        return _DirtyExtension(path, child)

    def _normalise_branch(self, branch: _DirtyBranch):
        """Shrink branches left with <2 references back to compact nodes."""
        live = [(i, c) for i, c in enumerate(branch.children) if c is not None]
        if branch.value is not None:
            if not live:
                return _DirtyLeaf((), branch.value)
            return branch
        if len(live) == 0:
            return None
        if len(live) == 1:
            nibble, child = live[0]
            return self._normalise_extension((nibble,), child)
        return branch

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def seal(self) -> Optional[bytes]:
        """Hash and persist every dirty node exactly once, post-order;
        returns the new root hash (``None`` encodes the empty trie)."""
        if self._sealed:
            raise RuntimeError("overlay already sealed")
        self._sealed = True
        if self._root is None:
            return None
        root = self._seal_node(self._root)
        return root

    def _seal_node(self, ref: _Ref) -> bytes:
        if isinstance(ref, bytes):
            return ref  # clean subtree: already persisted under this hash
        if isinstance(ref, _DirtyLeaf):
            node: TrieNode = LeafNode(tuple(ref.path), ref.value)
        elif isinstance(ref, _DirtyExtension):
            node = ExtensionNode(tuple(ref.path), self._seal_node(ref.child))
        else:
            children = tuple(
                self._seal_node(child) if child is not None else None
                for child in ref.children
            )
            node = BranchNode(children, ref.value)
        digest = self.store.put(node)
        self.stats.nodes_sealed += 1
        self.stats.hashes_computed += 1
        return digest


def apply_batch(
    store: NodeStore,
    root: Optional[bytes],
    items: Iterable[Tuple[bytes, bytes]],
) -> Tuple[Optional[bytes], CommitStats]:
    """Convenience driver: apply ``items`` (sorted by key, so shared path
    prefixes are expanded once) through an :class:`Overlay` and seal."""
    overlay = Overlay(store, root)
    for key, value in sorted(items):
        overlay.set(key, value)
    new_root = overlay.seal()
    return new_root, overlay.stats
