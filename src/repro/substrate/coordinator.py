"""Real-parallelism coordinators: the executors' protocols over worker pools.

The discrete-event executors interleave scheduling and execution on one
simulated clock; a real backend cannot — a worker process runs a
transaction *to completion* against a shipped read view and only then
reports back.  Each coordinator here re-expresses one executor's protocol
in that shape while reusing the exact protocol machinery the simulator
runs on (access sequences, lock table, ready queue, conflict DAG), so the
committed results are byte-identical to the sim backend: every scheduler
guarantees deterministic serializability, and serializable outcomes are
unique given the block order.

* **DMVCC** — access sequences are seeded from the C-SAGs exactly as in
  the simulator; a transaction dispatches when its read locks grant, its
  view is resolved from the live sequences, and the returned read log is
  **validated at commit** against those sequences (the moral equivalent of
  the PR-3 revalidation fast path).  Valid attempts publish through
  ``version_write`` — wake/abort cascades, skip-marking, retraction all
  shared with the simulator.  Early-write visibility is a non-feature
  here: workers cannot publish mid-flight, so writes land at completion
  (results are unaffected; only overlap shape differs).
* **OCC** — deterministic execute/validate rounds: every transaction in
  the round executes against the versions committed in *previous* rounds
  (writers below its index), publishes at the round barrier, and
  re-executes while stale.  Arrival order cannot influence results.
* **DAG** — a transaction dispatches when its conflict predecessors
  completed, so its dispatch-time view already holds every value its
  reads can legally observe.
* **serial** — inherently in-process; the executor's own path runs and is
  merely stamped with the backend name.

Reads the analysis missed surface as ``need`` outcomes (the view did not
cover them); the coordinator augments the per-transaction key set and
re-dispatches — counted as ``view_misses``, not aborts.  Worker crashes
surface as ``WorkerCrashed`` obs events; their in-flight transactions are
re-dispatched as aborts.
"""

from __future__ import annotations

import heapq
import sys
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.csag import AccessType, CSAGBuilder
from ..core.errors import SchedulingError
from ..core.types import Address, StateKey
from ..executors.base import BlockExecution, Receipt
from ..evm.environment import BlockContext
from ..scheduling.access_sequence import AccessSequenceSet
from ..scheduling.locks import LockTable, ReadyQueue
from ..sim.metrics import TxMetrics
from .pools import PoolEvent, WorkerPool
from .tasks import READ_BLIND, TxOutcome, TxTask

_W = ("waiting", "ready", "running", "done")
WAITING, READY, RUNNING, DONE = _W


class _Dispatcher:
    """Ticketing, code shipping, and view-miss learning over one pool."""

    def __init__(self, pool: WorkerPool, code_resolver) -> None:
        self.pool = pool
        self.resolve_code = code_resolver
        self.tickets: List[int] = []
        self.extra_keys: List[Set[StateKey]] = []
        self.sent_codes: List[Set[Address]] = [set() for _ in range(pool.size)]
        # Learned per-entry-contract callee set: once one transaction to a
        # contract discovers a foreign callee, every later task pre-ships it.
        self.callees: Dict[Address, Set[Address]] = {}
        self.view_misses = 0
        self.worker_crashes = 0

    def size_for(self, count: int) -> None:
        self.tickets = [0] * count
        self.extra_keys = [set() for _ in range(count)]

    def worker_for(self, index: int) -> int:
        return index % self.pool.size

    def _codes_for(self, worker: int, to: Address) -> Dict[Address, bytes]:
        needed = {to} | self.callees.get(to, set())
        fresh = needed - self.sent_codes[worker]
        if not fresh:
            return {}
        self.sent_codes[worker] |= fresh
        return {a: (self.resolve_code(a) or b"") for a in fresh}

    def dispatch(self, tx, index: int, attempt: int,
                 view: Dict[StateKey, int], block,
                 commutative: bool = False,
                 blind_pcs: frozenset = frozenset(),
                 increment_sites: Optional[Dict[int, int]] = None) -> TxTask:
        self.tickets[index] += 1
        worker = self.worker_for(index)
        task = TxTask(
            index=index, attempt=attempt, ticket=self.tickets[index],
            tx=tx, view=view, block=block, commutative=commutative,
            blind_pcs=blind_pcs,
            increment_sites=increment_sites or {},
            codes=self._codes_for(worker, tx.to),
        )
        self.pool.submit(worker, task)
        return task

    def invalidate(self, index: int) -> None:
        """Make any in-flight outcome for ``index`` stale."""
        self.tickets[index] += 1

    def is_stale(self, outcome: TxOutcome) -> bool:
        return outcome.ticket != self.tickets[outcome.index]

    def learn(self, outcome: TxOutcome, to: Address) -> None:
        """Absorb a ``need`` outcome: missing keys widen the view, missing
        codes widen the contract's callee shipping set."""
        for key in outcome.missing_keys:
            self.extra_keys[outcome.index].add(key)
            self.view_misses += 1
        for address in outcome.missing_codes:
            self.callees.setdefault(to, set()).add(address)

    def on_crash(self, event: PoolEvent) -> None:
        self.worker_crashes += 1
        # The respawned worker starts with an empty code cache.
        self.sent_codes[event.worker] = set()


def _stamp(metrics, pool: WorkerPool, dispatcher: _Dispatcher,
           wall: float) -> None:
    metrics.backend = pool.kind
    metrics.workers = pool.size
    metrics.wall_time = wall
    metrics.view_misses = dispatcher.view_misses
    metrics.worker_crashes = dispatcher.worker_crashes


def _balance_keys(tx) -> Set[StateKey]:
    if tx.value > 0:
        return {StateKey.balance(tx.sender), StateKey.balance(tx.to)}
    return set()


def _raise_worker_error(event: PoolEvent) -> None:
    raise SchedulingError(
        f"substrate worker {event.worker} failed: {event.message}"
    )


# ---------------------------------------------------------------------------
# DMVCC
# ---------------------------------------------------------------------------


class _RTx:
    """Per-transaction coordinator state (the real-mode _TxState)."""

    __slots__ = (
        "index", "tx", "csag", "needed", "status", "attempts", "result",
        "published", "reads", "recorded_keys", "aborting", "blind_pcs",
        "increments",
    )

    def __init__(self, index, tx, csag, needed) -> None:
        self.index = index
        self.tx = tx
        self.csag = csag
        self.needed = needed
        self.status = WAITING
        self.attempts = 0
        self.result = None
        # Committed-attempt bookkeeping (for retraction / revalidation):
        self.published: Dict[StateKey, Tuple[str, int]] = {}
        self.reads: List[Tuple[StateKey, int, int, int]] = []  # key,base,kind,ver
        self.recorded_keys: Set[StateKey] = set()
        self.aborting = False
        self.blind_pcs: frozenset = frozenset()
        self.increments: Dict[int, int] = {}


class _DMVCCRealRun:
    """One DMVCC block over a real worker pool."""

    def __init__(self, executor, pool, txs, snapshot, code_resolver,
                 block, csags, threads: int = 0) -> None:
        self.ex = executor
        self.pool = pool
        # Logical concurrency: the caller's ``threads`` bounds how many
        # transactions may be in flight at once, independent of the pool's
        # physical worker count (a pinned pool may be larger or smaller).
        self.lanes = max(1, threads) if threads else pool.size
        self.txs = txs
        self.snapshot = snapshot
        self.resolve_code = code_resolver
        self.block = block if block is not None else BlockContext()
        self.builder = CSAGBuilder(code_resolver, executor._psag_cache,
                                   self.block, executor._csag_cache)
        if csags is None:
            csags = [self.builder.build(tx, snapshot) for tx in txs]
        self.csags = csags
        self.obs = executor.obs
        self.recorder = executor.recorder
        self._t0 = perf_counter()
        clock = self._now
        self.sequences = AccessSequenceSet(obs=self.obs, clock=clock)
        self.locks = LockTable(obs=self.obs, clock=clock)
        self.queue = ReadyQueue()
        self.dispatcher = _Dispatcher(pool, code_resolver)
        self.dispatcher.size_for(len(txs))
        self.states: List[_RTx] = []
        self.per_tx = [TxMetrics(index=i) for i in range(len(txs))]
        self.ever_written: List[Set[StateKey]] = [set() for _ in txs]
        self.rescues = 0

    def _now(self) -> float:
        return perf_counter() - self._t0

    # -- setup (mirrors _BlockRun._setup) --------------------------------

    def _declared(self, access_type: AccessType) -> AccessType:
        if access_type is AccessType.COMMUTATIVE and not self.ex.enable_commutative:
            return AccessType.READ_WRITE
        return access_type

    def _setup(self) -> None:
        for i, (tx, csag) in enumerate(zip(self.txs, self.csags)):
            needed: Set[StateKey] = set()
            per_key = dict(csag.per_key)
            if not csag.predicted_success and not csag.missing:
                for key in csag.static_write_keys:
                    if key not in per_key:
                        per_key[key] = AccessType.READ_WRITE
                for key in csag.static_read_keys:
                    if key not in per_key:
                        per_key[key] = AccessType.READ
            for key, access_type in per_key.items():
                declared = self._declared(access_type)
                self.sequences.sequence(key).insert_predicted(i, declared)
                if declared in (AccessType.READ, AccessType.READ_WRITE):
                    needed.add(key)
            state = _RTx(i, tx, csag, needed)
            code = self.resolve_code(tx.to)
            if code and self.ex.enable_commutative:
                psag = self.builder.psag_for(code)
                state.increments = dict(psag.analysis.increment_sites)
                state.blind_pcs = frozenset(state.increments.values())
            self.states.append(state)
            self.locks.register(i, needed)
        for state in self.states:
            if self.locks.refresh(state.index, self.sequences):
                state.status = READY
                self.queue.push(state.index)
                if self.obs is not None:
                    self.obs.tx_ready(0.0, state.index)

    # -- main loop --------------------------------------------------------

    def execute(self) -> BlockExecution:
        if self.obs is not None:
            self.obs.block_start(0.0, scheduler=self.ex.name,
                                 threads=self.lanes,
                                 tx_count=len(self.txs))
        self._setup()
        guard = 0
        while not all(s.status is DONE for s in self.states):
            dispatched = self._dispatch_ready()
            if self.pool.inflight_count == 0 and not dispatched:
                # Nothing running, nothing ready: recover lost wake-ups
                # exactly like the simulator's rescue pass.
                guard += 1
                if guard > 3 * len(self.states) + 10:
                    stuck = [s.index for s in self.states
                             if s.status is not DONE]
                    raise SchedulingError(
                        f"DMVCC deadlock; stuck transactions: {stuck}")
                progressed = False
                for state in self.states:
                    if state.status is WAITING:
                        self.rescues += 1
                        state.status = READY
                        self.queue.push(state.index)
                        progressed = True
                if not progressed:
                    stuck = [s.index for s in self.states
                             if s.status is not DONE]
                    raise SchedulingError(
                        f"DMVCC deadlock; stuck transactions: {stuck}")
                continue
            for event in self.pool.collect():
                if event.kind == "crash":
                    self._on_crash(event)
                elif event.kind == "error":
                    _raise_worker_error(event)
                else:
                    self._on_outcome(event.outcome)

        wall = self._now()
        if self.obs is not None:
            self.obs.block_end(wall, makespan=0.0)
        receipts = [
            Receipt(index=s.index, result=s.result,
                    attempts=max(s.attempts, 1))
            for s in self.states
        ]
        writes = self.sequences.final_writes(self.snapshot.get)
        metrics = self.ex._base_metrics(self.lanes, receipts)
        metrics.per_tx = self.per_tx
        metrics.rescues = self.rescues
        metrics.replayed_instructions = sum(
            t.replayed_instructions for t in self.per_tx)
        metrics.instructions_skipped = sum(
            t.instructions_skipped for t in self.per_tx)
        metrics.resumes = sum(t.resumes for t in self.per_tx)
        metrics.revalidation_hits = sum(
            t.revalidation_hits for t in self.per_tx)
        _stamp(metrics, self.pool, self.dispatcher, wall)
        return BlockExecution(writes=writes, receipts=receipts,
                              metrics=metrics)

    # -- dispatch ---------------------------------------------------------

    def _view_keys(self, state: _RTx) -> Set[StateKey]:
        keys = set(state.needed)
        for key, access_type in state.csag.per_key.items():
            if self._declared(access_type) is AccessType.COMMUTATIVE:
                keys.add(key)
        keys |= state.csag.static_read_keys
        keys |= _balance_keys(state.tx)
        keys |= self.dispatcher.extra_keys[state.index]
        return keys

    def _build_view(self, state: _RTx) -> Dict[StateKey, int]:
        view: Dict[StateKey, int] = {}
        for key in self._view_keys(state):
            seq = self.sequences.get(key)
            if seq is None:
                view[key] = self.snapshot.get(key)
                continue
            resolution = seq.resolve_read(state.index)
            if not resolution.ready:
                resolution = seq.best_available_read(state.index)
            view[key] = resolution.resolve_with_snapshot(self.snapshot.get(key))
        return view

    def _dispatch_ready(self) -> bool:
        dispatched = False
        running = sum(1 for s in self.states if s.status is RUNNING)
        while running < self.lanes:
            index = self.queue.pop()
            if index is None:
                return dispatched
            state = self.states[index]
            state.status = RUNNING
            state.attempts += 1
            if state.attempts == 1:
                self.per_tx[index].start_time = self._now()
            if self.obs is not None:
                now = self._now()
                if state.attempts > 1:
                    self.obs.tx_reexecute(now, index, attempt=state.attempts)
                self.obs.tx_start(now, index, attempt=state.attempts,
                                  thread=self.dispatcher.worker_for(index))
            self._send(state)
            dispatched = True
            running += 1
        return dispatched

    def _send(self, state: _RTx) -> None:
        self.dispatcher.dispatch(
            state.tx, state.index, state.attempts,
            self._build_view(state), self.block,
            commutative=self.ex.enable_commutative,
            blind_pcs=state.blind_pcs,
            increment_sites=state.increments,
        )

    # -- outcomes ---------------------------------------------------------

    def _on_outcome(self, outcome: TxOutcome) -> None:
        state = self.states[outcome.index]
        if self.dispatcher.is_stale(outcome) or state.status is not RUNNING:
            return  # aborted (or re-routed) while in flight
        if not outcome.ok:
            self.dispatcher.learn(outcome, state.tx.to)
            self._send(state)  # same attempt, widened view
            return
        validated = self._validate(state, outcome)
        if isinstance(validated, StateKey):
            self._abort_running(state, validated)
            return
        self._commit(state, outcome, validated)

    def _validate(self, state: _RTx, outcome: TxOutcome):
        """Check every versioned read against the live sequences; returns
        the per-record (version, speculative) list, or the offending key on
        mismatch (the attempt saw a view that went stale in flight)."""
        resolved: List[Optional[Tuple[int, bool]]] = []
        for key, base, kind in outcome.reads:
            if kind == READ_BLIND:
                resolved.append(None)
                continue
            seq = self.sequences.sequence(key)
            resolution = seq.resolve_read(state.index)
            speculative = False
            if not resolution.ready:
                resolution = seq.best_available_read(state.index)
                speculative = True
            if resolution.resolve_with_snapshot(self.snapshot.get(key)) != base:
                return key
            resolved.append((resolution.version_from, speculative))
        return resolved

    def _commit(self, state: _RTx, outcome: TxOutcome, validated) -> None:
        index = state.index
        now = self._now()
        state.reads = []
        for (key, base, kind), info in zip(outcome.reads, validated):
            if kind == READ_BLIND:
                state.reads.append((key, base, kind, -1))
                if self.recorder is not None:
                    self.recorder.read(index, key, -1, base,
                                       attempt=state.attempts, blind=True)
                continue
            version, speculative = info
            self.sequences.sequence(key).record_read(index, version)
            state.recorded_keys.add(key)
            state.reads.append((key, base, kind, version))
            if self.recorder is not None:
                self.recorder.read(index, key, version, base,
                                   attempt=state.attempts,
                                   speculative=speculative)

        state.status = DONE
        state.result = outcome.result
        per = self.per_tx[index]
        per.end_time = now
        per.gas_used = outcome.result.gas_used
        per.succeeded = outcome.result.success
        per.attempts = state.attempts
        per.instructions_executed += outcome.result.steps
        per.instructions_final = outcome.result.steps

        if outcome.result.success:
            for key, value in outcome.writes_abs:
                self._publish(state, key, "abs", value)
            for key, delta in outcome.writes_delta:
                self._publish(state, key, "delta", delta)
        if self.obs is not None:
            self.obs.tx_end(now, index, attempt=state.attempts,
                            success=outcome.result.success,
                            gas_used=outcome.result.gas_used)
        if self.recorder is not None:
            self.recorder.complete(index, attempt=state.attempts,
                                   success=outcome.result.success,
                                   gas_used=outcome.result.gas_used)
        self._skip_mark(state)

    def _skip_mark(self, state: _RTx) -> None:
        """Predicted (or previously published) writes that never happened
        are marked skipped so waiters unblock — same as the simulator."""
        pending = set(self.ever_written[state.index])
        for key, access_type in state.csag.per_key.items():
            if self._declared(access_type) is not AccessType.READ:
                pending.add(key)
        for key in pending:
            if key in state.published:
                continue
            seq = self.sequences.sequence(key)
            entry = seq.entry(state.index)
            if entry is not None and entry.has_write_part and not entry.write_finished:
                allowed, _ = seq.version_write(state.index, skipped=True)
                self._handle_wake_and_abort(key, allowed, [],
                                            writer=state.index)

    def _publish(self, state: _RTx, key: StateKey, kind: str,
                 value: int) -> None:
        seq = self.sequences.sequence(key)
        if self.recorder is not None:
            self.recorder.publish(state.index, key, kind, value, early=False)
        if kind == "abs":
            allowed, aborted = seq.version_write(state.index, value=value)
        else:
            allowed, aborted = seq.version_write(state.index, delta=value)
        state.published[key] = (kind, value)
        self.ever_written[state.index].add(key)
        self._handle_wake_and_abort(key, allowed, aborted,
                                    writer=state.index)

    def _handle_wake_and_abort(self, key, allowed, aborted,
                               writer: int = -1) -> None:
        for victim in aborted:
            self._abort(victim, key, writer=writer)
        seq = self.sequences.sequence(key)
        for index in sorted(set(allowed) | set(aborted)):
            target = self.states[index]
            if target.status is WAITING:
                if seq.resolve_read(index).ready:
                    became_ready = self.locks.grant(index, key)
                    if became_ready or self.locks.is_ready(index):
                        if target.status is WAITING:
                            target.status = READY
                            self.queue.push(index)
                            if self.obs is not None:
                                now = self._now()
                                self.obs.version_wait_end(
                                    now, index, key=key, granted_by=writer)
                                self.obs.tx_ready(
                                    now, index, attempt=target.attempts + 1)
            else:
                self.locks.grant(index, key)

    # -- aborts -----------------------------------------------------------

    def _abort_running(self, state: _RTx, bad_key) -> None:
        """A returned attempt failed commit validation: its view was stale."""
        if self.recorder is not None:
            self.recorder.abort(state.index, attempt=max(state.attempts, 1),
                                key=bad_key)
        if self.obs is not None:
            self.obs.tx_abort(self._now(), state.index,
                              attempt=max(state.attempts, 1), key=bad_key)
        self.per_tx[state.index].aborted_times += 1
        state.status = WAITING
        self._requeue(state)

    def _abort(self, index: int, trigger_key, writer: int = -1) -> None:
        state = self.states[index]
        if state.aborting:
            return
        if self.recorder is not None:
            self.recorder.abort(index, attempt=max(state.attempts, 1),
                                key=trigger_key)
        if self.obs is not None:
            self.obs.tx_abort(self._now(), index,
                              attempt=max(state.attempts, 1),
                              key=trigger_key, writer=writer)
        if (
            self.ex.enable_revalidation
            and state.status is DONE
            and state.result is not None
            and state.result.success
            and self._try_revalidate(state)
        ):
            return
        state.aborting = True
        try:
            if state.status is READY:
                self.queue.remove(index)
            elif state.status is RUNNING:
                # The in-flight attempt cannot be recalled; outdate it.
                self.dispatcher.invalidate(index)
            elif state.status is DONE:
                state.result = None
            state.status = WAITING
            self.per_tx[index].aborted_times += 1
            self._retract_published(state)
            self._reset_reads(state)
        finally:
            state.aborting = False
        self._requeue(state)

    def _requeue(self, state: _RTx) -> None:
        index = state.index
        self.locks.release_all(index)
        if self.locks.refresh(index, self.sequences):
            state.status = READY
            self.queue.push(index)
            if self.obs is not None:
                self.obs.tx_ready(self._now(), index,
                                  attempt=state.attempts + 1)

    def _reset_reads(self, state: _RTx) -> None:
        for key in state.recorded_keys:
            seq = self.sequences.get(key)
            if seq is not None:
                entry = seq.entry(state.index)
                if entry is not None:
                    entry.reset_read()
        state.recorded_keys = set()
        state.reads = []

    def _retract_published(self, state: _RTx) -> None:
        published = list(state.published)
        state.published = {}
        for key in published:
            seq = self.sequences.get(key)
            if seq is None:
                continue
            victims = seq.retract(state.index)
            if self.recorder is not None:
                self.recorder.retract(
                    state.index, key,
                    tuple(v for v in victims if v != state.index),
                )
            for victim in victims:
                if victim != state.index:
                    self._abort(victim, key, writer=state.index)

    def _try_revalidate(self, state: _RTx) -> bool:
        """PR-3's zero-re-execution repair, against the stored read log."""
        versions: List[int] = []
        for key, base, kind, _old in state.reads:
            if kind == READ_BLIND:
                versions.append(-1)
                continue
            seq = self.sequences.get(key)
            if seq is None:
                return False
            view = seq.current_read_view(state.index, self.snapshot.get(key))
            if view is None or view[0] != base:
                return False
            versions.append(view[1])
        state.attempts += 1
        per = self.per_tx[state.index]
        per.attempts = state.attempts
        per.aborted_times += 1
        per.revalidation_hits += 1
        per.instructions_skipped += state.result.steps
        for key in state.recorded_keys:
            seq = self.sequences.get(key)
            if seq is not None:
                entry = seq.entry(state.index)
                if entry is not None:
                    entry.reset_read()
        new_reads: List[Tuple[StateKey, int, int, int]] = []
        for (key, base, kind, _old), version in zip(state.reads, versions):
            if kind != READ_BLIND:
                self.sequences.sequence(key).record_read(state.index, version)
            new_reads.append((key, base, kind, version))
            if self.recorder is not None:
                self.recorder.read(state.index, key, version, base,
                                   attempt=state.attempts,
                                   blind=kind == READ_BLIND)
        state.reads = new_reads
        if self.obs is not None:
            self.obs.revalidation_hit(self._now(), state.index,
                                      attempt=state.attempts,
                                      instructions_skipped=state.result.steps)
        if self.recorder is not None:
            self.recorder.complete(state.index, attempt=state.attempts,
                                   success=True,
                                   gas_used=state.result.gas_used)
        return True

    # -- crashes ----------------------------------------------------------

    def _on_crash(self, event: PoolEvent) -> None:
        self.dispatcher.on_crash(event)
        if self.obs is not None:
            self.obs.worker_crashed(self._now(), worker=event.worker,
                                    lost=len(event.lost))
        for task in event.lost:
            state = self.states[task.index]
            if task.ticket != self.dispatcher.tickets[task.index]:
                continue  # already superseded
            if state.status is not RUNNING:
                continue
            # Re-dispatch as an abort: the attempt died with its worker.
            if self.recorder is not None:
                self.recorder.abort(task.index,
                                    attempt=max(state.attempts, 1))
            if self.obs is not None:
                self.obs.tx_abort(self._now(), task.index,
                                  attempt=max(state.attempts, 1))
            self.per_tx[task.index].aborted_times += 1
            self.dispatcher.invalidate(task.index)
            state.status = WAITING
            self._requeue(state)


def run_dmvcc_real(executor, pool, txs, snapshot, code_resolver,
                   block=None, csags=None, threads: int = 0) -> BlockExecution:
    run = _DMVCCRealRun(executor, pool, txs, snapshot, code_resolver,
                        block, csags, threads=threads)
    return run.execute()


# ---------------------------------------------------------------------------
# OCC: deterministic execute/validate rounds
# ---------------------------------------------------------------------------


def run_occ_real(executor, pool, txs, snapshot, code_resolver,
                 block=None, threads: int = 0) -> BlockExecution:
    """Round-based OCC over real workers.

    Each round executes its stale transactions in *waves* of at most
    ``threads`` — the caller's logical concurrency, not the pool's
    physical worker count.  A wave executes against the versions
    committed so far (restricted to writers below each reader's index),
    publishes at the wave barrier, and the round ends with a block-order
    validation sweep that marks stale readers for the next round.  The
    wave structure — unlike the simulator's thread-timing visibility —
    is independent of worker arrival order, so process-backend OCC runs
    are deterministic; at ``threads=1`` it degenerates to serial
    execution in block order, which never aborts.
    """
    t0 = perf_counter()
    lanes = max(1, threads) if threads else pool.size
    block = block if block is not None else BlockContext()
    count = len(txs)
    recorder = executor.recorder
    obs = executor.obs
    dispatcher = _Dispatcher(pool, code_resolver)
    dispatcher.size_for(count)
    # key -> {writer: value}: versions committed at round barriers.
    store: Dict[StateKey, Dict[int, int]] = {}

    def store_read(key: StateKey, index: int) -> Tuple[int, int]:
        versions = store.get(key)
        best = -1
        value = 0
        if versions:
            for writer, v in versions.items():
                if best < writer < index:
                    best, value = writer, v
        if best == -1:
            return snapshot.get(key), -1
        return value, best

    known: List[Set[StateKey]] = [
        _balance_keys(tx) | dispatcher.extra_keys[i]
        for i, tx in enumerate(txs)
    ]
    # Seed first-dispatch views from the static P-SAG key resolution
    # (cheap: symbolic evaluation, no pre-execution).  OCC carries no
    # C-SAGs by design, but shipping the *predicted* key set up front
    # collapses the view-miss → re-dispatch discovery loop that otherwise
    # costs one worker round-trip per missing key cluster.
    seeded = 0
    if getattr(executor, "seed_views", False):
        from ..analysis.csag import _static_key_sets
        psag_cache = executor.psag_cache
        for i, tx in enumerate(txs):
            code = code_resolver(tx.to)
            if not code:
                continue
            reads, writes = _static_key_sets(
                tx, snapshot, psag_cache.get(code), block)
            fresh = (reads | writes) - known[i]
            seeded += len(fresh)
            known[i] |= fresh
    results: List[Optional[object]] = [None] * count
    observed: List[Dict[StateKey, Tuple[int, int]]] = [{} for _ in range(count)]
    write_sets: List[Dict[StateKey, int]] = [{} for _ in range(count)]
    outcome_reads: List[Tuple] = [()] * count
    attempts = [0] * count
    per_tx = [TxMetrics(index=i) for i in range(count)]
    needs = list(range(count))
    rounds = 0

    if obs is not None:
        obs.block_start(0.0, scheduler=executor.name, threads=lanes,
                        tx_count=count)
        for index in range(count):
            obs.tx_ready(0.0, index)

    def dispatch(index: int) -> None:
        view = {}
        meta = {}
        for key in known[index] | dispatcher.extra_keys[index]:
            value, writer = store_read(key, index)
            view[key] = value
            meta[key] = (value, writer)
        observed[index] = meta
        dispatcher.dispatch(txs[index], index, attempts[index], view, block,
                            commutative=False)

    while needs:
        rounds += 1
        if rounds > executor.max_rounds:
            raise RuntimeError("OCC failed to converge")
        # Retract every redo version before anything in this round
        # dispatches, so no stale value leaks into a wave's view.
        for index in needs:
            if recorder is not None:
                for key in write_sets[index]:
                    recorder.retract(index, key)
            for key in write_sets[index]:
                entry = store.get(key)
                if entry is not None:
                    entry.pop(index, None)
            write_sets[index] = {}

        for start in range(0, len(needs), lanes):
            wave = needs[start:start + lanes]
            for index in wave:
                attempts[index] += 1
                if obs is not None and attempts[index] > 1:
                    obs.tx_reexecute(perf_counter() - t0, index,
                                     attempt=attempts[index])
                if obs is not None:
                    obs.tx_start(perf_counter() - t0, index,
                                 attempt=attempts[index],
                                 thread=dispatcher.worker_for(index))
                dispatch(index)

            pending = set(wave)
            while pending:
                for event in pool.collect():
                    if event.kind == "error":
                        _raise_worker_error(event)
                    if event.kind == "crash":
                        dispatcher.on_crash(event)
                        if obs is not None:
                            obs.worker_crashed(perf_counter() - t0,
                                               worker=event.worker,
                                               lost=len(event.lost))
                        for task in event.lost:
                            if task.ticket == dispatcher.tickets[task.index]:
                                per_tx[task.index].aborted_times += 1
                                dispatch(task.index)
                        continue
                    outcome = event.outcome
                    if dispatcher.is_stale(outcome):
                        continue
                    index = outcome.index
                    if not outcome.ok:
                        dispatcher.learn(outcome, txs[index].to)
                        known[index] |= set(outcome.missing_keys)
                        known[index] |= {k for k, _b, _k in outcome.reads}
                        dispatch(index)
                        continue
                    results[index] = outcome.result
                    outcome_reads[index] = outcome.reads
                    writes = dict(outcome.writes_abs)
                    writes.update(
                        (k, (store_read(k, index)[0] + d) % (1 << 256))
                        for k, d in outcome.writes_delta
                    )  # commutative=False ⇒ normally empty
                    write_sets[index] = writes
                    known[index] |= {k for k, _b, _kind in outcome.reads}
                    pending.discard(index)

            # Wave barrier: publish and trace this wave's attempts; later
            # waves (and rounds) observe them at dispatch time.
            for index in wave:
                result = results[index]
                if recorder is not None:
                    for key, base, kind in outcome_reads[index]:
                        _value, writer = observed[index].get(key, (base, -1))
                        recorder.read(index, key, writer, base,
                                      attempt=attempts[index],
                                      blind=kind != 0)
                    for key, value in write_sets[index].items():
                        recorder.write(index, key, value=value,
                                       attempt=attempts[index])
                for key, value in write_sets[index].items():
                    store.setdefault(key, {})[index] = value
                if recorder is not None:
                    for key, value in write_sets[index].items():
                        recorder.publish(index, key, "abs", value)
                    recorder.complete(index, attempt=attempts[index],
                                      success=result.success,
                                      gas_used=result.gas_used)
                if obs is not None:
                    obs.tx_end(perf_counter() - t0, index,
                               attempt=attempts[index],
                               success=result.success,
                               gas_used=result.gas_used)

        needs = []
        for index in range(count):
            for key, base, _kind in outcome_reads[index]:
                current = store_read(key, index)
                if current != observed[index].get(key, current):
                    if recorder is not None:
                        recorder.abort(index, attempt=attempts[index])
                    if obs is not None:
                        obs.tx_abort(perf_counter() - t0, index,
                                     attempt=attempts[index], key=key,
                                     writer=current[1])
                    per_tx[index].aborted_times += 1
                    needs.append(index)
                    break

    receipts = [
        Receipt(index=i, result=results[i], attempts=attempts[i])
        for i in range(count)
    ]
    for i in range(count):
        per_tx[i].attempts = attempts[i]
        per_tx[i].gas_used = results[i].gas_used
        per_tx[i].succeeded = results[i].success

    wall = perf_counter() - t0
    if obs is not None:
        obs.block_end(wall, makespan=0.0)

    final: Dict[StateKey, int] = {}
    for key, versions in store.items():
        if versions:
            final[key] = versions[max(versions)]
    metrics = executor._base_metrics(lanes, receipts)
    metrics.per_tx = per_tx
    metrics.seeded_views = seeded
    _stamp(metrics, pool, dispatcher, wall)
    return BlockExecution(writes=final, receipts=receipts, metrics=metrics)


# ---------------------------------------------------------------------------
# DAG: conflict-predecessor gating
# ---------------------------------------------------------------------------


def run_dag_real(executor, pool, txs, snapshot, code_resolver,
                 block=None, csags=None, threads: int = 0) -> BlockExecution:
    """Conflict-DAG execution over real workers.

    A transaction dispatches once every conflicting predecessor committed,
    so its dispatch-time view equals what read-time resolution would give
    the simulator (when the predicted sets are complete, which is the DAG
    baseline's stated precondition).  At most ``threads`` transactions are
    in flight at once — the caller's logical concurrency, matching the
    simulator's thread pool rather than the physical worker count."""
    from ..executors.dag import build_conflict_dag

    t0 = perf_counter()
    lanes = max(1, threads) if threads else pool.size
    block = block if block is not None else BlockContext()
    count = len(txs)
    recorder = executor.recorder
    obs = executor.obs
    if csags is None:
        builder = CSAGBuilder(code_resolver, block=block)
        csags = [builder.build(tx, snapshot) for tx in txs]
    deps = build_conflict_dag(csags, executor.granularity)
    dependents: List[List[int]] = [[] for _ in txs]
    remaining = [len(d) for d in deps]
    for j, dset in enumerate(deps):
        for i in dset:
            dependents[i].append(j)

    dispatcher = _Dispatcher(pool, code_resolver)
    dispatcher.size_for(count)
    versions: Dict[StateKey, List[Tuple[int, int]]] = {}
    receipts: List[Optional[Receipt]] = [None] * count
    per_tx = [TxMetrics(index=i) for i in range(count)]
    meta: List[Dict[StateKey, Tuple[int, int]]] = [{} for _ in range(count)]

    def resolve(key: StateKey, index: int) -> Tuple[int, int]:
        best: Optional[Tuple[int, int]] = None
        for writer, value in versions.get(key, ()):
            if writer < index and (best is None or writer > best[0]):
                best = (writer, value)
        if best is not None:
            return best[1], best[0]
        return snapshot.get(key), -1

    if obs is not None:
        obs.block_start(0.0, scheduler=executor.name, threads=lanes,
                        tx_count=count)

    def dispatch(index: int) -> None:
        keys = (csags[index].read_keys | csags[index].static_read_keys
                | _balance_keys(txs[index])
                | dispatcher.extra_keys[index])
        view = {}
        meta[index] = {}
        for key in keys:
            value, writer = resolve(key, index)
            view[key] = value
            meta[index][key] = (value, writer)
        if obs is not None:
            obs.tx_start(perf_counter() - t0, index,
                         thread=dispatcher.worker_for(index))
        dispatcher.dispatch(txs[index], index, 1, view, block,
                            commutative=False)

    outstanding = 0
    ready: List[int] = []

    def pump() -> None:
        nonlocal outstanding
        while ready and outstanding < lanes:
            dispatch(heapq.heappop(ready))
            outstanding += 1

    for index in range(count):
        if remaining[index] == 0:
            if obs is not None:
                obs.tx_ready(0.0, index)
            heapq.heappush(ready, index)
    pump()

    while outstanding:
        for event in pool.collect():
            if event.kind == "error":
                _raise_worker_error(event)
            if event.kind == "crash":
                dispatcher.on_crash(event)
                if obs is not None:
                    obs.worker_crashed(perf_counter() - t0,
                                       worker=event.worker,
                                       lost=len(event.lost))
                for task in event.lost:
                    if task.ticket == dispatcher.tickets[task.index]:
                        per_tx[task.index].aborted_times += 1
                        dispatch(task.index)
                continue
            outcome = event.outcome
            if dispatcher.is_stale(outcome):
                continue
            index = outcome.index
            if not outcome.ok:
                dispatcher.learn(outcome, txs[index].to)
                dispatch(index)
                continue
            result = outcome.result
            now = perf_counter() - t0
            if recorder is not None:
                for key, base, kind in outcome.reads:
                    _value, writer = meta[index].get(key, (base, -1))
                    recorder.read(index, key, writer, base,
                                  blind=kind != 0)
                for key, value in outcome.writes_abs:
                    recorder.write(index, key, value=value)
            if result.success:
                for key, value in outcome.writes_abs:
                    versions.setdefault(key, []).append((index, value))
                    if recorder is not None:
                        recorder.publish(index, key, "abs", value)
            if recorder is not None:
                recorder.complete(index, success=result.success,
                                  gas_used=result.gas_used)
            receipts[index] = Receipt(index=index, result=result)
            per_tx[index].end_time = now
            per_tx[index].gas_used = result.gas_used
            per_tx[index].succeeded = result.success
            if obs is not None:
                obs.tx_end(now, index, success=result.success,
                           gas_used=result.gas_used)
            outstanding -= 1
            for dep in dependents[index]:
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    if obs is not None:
                        obs.tx_ready(perf_counter() - t0, dep)
                    heapq.heappush(ready, dep)
            pump()

    final_receipts = [r for r in receipts if r is not None]
    if len(final_receipts) != count:
        missing = [i for i, r in enumerate(receipts) if r is None]
        raise RuntimeError(f"DAG executor deadlocked; unfinished: {missing}")

    wall = perf_counter() - t0
    if obs is not None:
        obs.block_end(wall, makespan=0.0)

    writes: Dict[StateKey, int] = {}
    for key, entries in versions.items():
        writes[key] = max(entries, key=lambda e: e[0])[1]
    metrics = executor._base_metrics(lanes, final_receipts)
    metrics.per_tx = per_tx
    _stamp(metrics, pool, dispatcher, wall)
    return BlockExecution(writes=writes, receipts=final_receipts,
                          metrics=metrics)


# ---------------------------------------------------------------------------
# Schedule replay: fork-join gating from a sealed artifact
# ---------------------------------------------------------------------------


def run_replay_real(executor, pool, txs, snapshot, code_resolver,
                    block, schedule, threads: int = 0) -> BlockExecution:
    """Deterministic schedule replay over real workers.

    The sealed :class:`~repro.scheduling.schedule.Schedule` supplies both
    the gating predecessors *and* each transaction's realized key set, so
    the dispatch view ships exactly the keys the committed execution
    touched — conflict discovery, validation, and view-miss learning are
    all structurally idle (``view_misses`` stays 0 on a faithful replay;
    the NeedKeys path remains as a backstop and would merely re-dispatch,
    never diverge).  Worker crashes re-dispatch the lost transactions with
    identical views, so results are byte-identical even mid-kill."""
    t0 = perf_counter()
    lanes = max(1, threads) if threads else pool.size
    block = block if block is not None else BlockContext()
    count = len(txs)
    recorder = executor.recorder
    obs = executor.obs
    deps = [set(e.preds) for e in schedule.entries]
    dependents: List[List[int]] = [[] for _ in txs]
    remaining = [len(d) for d in deps]
    for j, dset in enumerate(deps):
        for i in dset:
            dependents[i].append(j)

    dispatcher = _Dispatcher(pool, code_resolver)
    dispatcher.size_for(count)
    versions: Dict[StateKey, List[Tuple[int, int]]] = {}
    receipts: List[Optional[Receipt]] = [None] * count
    per_tx = [TxMetrics(index=i) for i in range(count)]

    def resolve(key: StateKey, index: int) -> Tuple[int, int]:
        best: Optional[Tuple[int, int]] = None
        for writer, value in versions.get(key, ()):
            if writer < index and (best is None or writer > best[0]):
                best = (writer, value)
        if best is not None:
            return best[1], best[0]
        return snapshot.get(key), -1

    if obs is not None:
        obs.block_start(0.0, scheduler=executor.name, threads=lanes,
                        tx_count=count)

    def dispatch(index: int) -> None:
        keys = (set(schedule.entries[index].reads)
                | _balance_keys(txs[index])
                | dispatcher.extra_keys[index])
        view = {key: resolve(key, index)[0] for key in keys}
        if obs is not None:
            obs.tx_start(perf_counter() - t0, index,
                         thread=dispatcher.worker_for(index))
        dispatcher.dispatch(txs[index], index, 1, view, block,
                            commutative=False)

    outstanding = 0
    ready: List[int] = []

    def pump() -> None:
        nonlocal outstanding
        while ready and outstanding < lanes:
            dispatch(heapq.heappop(ready))
            outstanding += 1

    for index in range(count):
        if remaining[index] == 0:
            if obs is not None:
                obs.tx_ready(0.0, index)
            heapq.heappush(ready, index)
    pump()

    while outstanding:
        for event in pool.collect():
            if event.kind == "error":
                _raise_worker_error(event)
            if event.kind == "crash":
                dispatcher.on_crash(event)
                if obs is not None:
                    obs.worker_crashed(perf_counter() - t0,
                                       worker=event.worker,
                                       lost=len(event.lost))
                for task in event.lost:
                    if task.ticket == dispatcher.tickets[task.index]:
                        dispatch(task.index)
                continue
            outcome = event.outcome
            if dispatcher.is_stale(outcome):
                continue
            index = outcome.index
            if not outcome.ok:
                dispatcher.learn(outcome, txs[index].to)
                dispatch(index)
                continue
            result = outcome.result
            now = perf_counter() - t0
            if recorder is not None:
                for key, base, kind in outcome.reads:
                    recorder.read(index, key, resolve(key, index)[1], base,
                                  blind=kind != 0)
                for key, value in outcome.writes_abs:
                    recorder.write(index, key, value=value)
            if result.success:
                for key, value in outcome.writes_abs:
                    versions.setdefault(key, []).append((index, value))
                    if recorder is not None:
                        recorder.publish(index, key, "abs", value)
            if recorder is not None:
                recorder.complete(index, success=result.success,
                                  gas_used=result.gas_used)
            receipts[index] = Receipt(index=index, result=result)
            per_tx[index].end_time = now
            per_tx[index].gas_used = result.gas_used
            per_tx[index].succeeded = result.success
            if obs is not None:
                obs.tx_end(now, index, success=result.success,
                           gas_used=result.gas_used)
            outstanding -= 1
            for dep in dependents[index]:
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    if obs is not None:
                        obs.tx_ready(perf_counter() - t0, dep)
                    heapq.heappush(ready, dep)
            pump()

    final_receipts = [r for r in receipts if r is not None]
    if len(final_receipts) != count:
        missing = [i for i, r in enumerate(receipts) if r is None]
        raise RuntimeError(f"schedule replay deadlocked; unfinished: {missing}")

    wall = perf_counter() - t0
    if obs is not None:
        obs.block_end(wall, makespan=0.0)

    writes: Dict[StateKey, int] = {}
    for key, entries in versions.items():
        writes[key] = max(entries, key=lambda e: e[0])[1]
    metrics = executor._base_metrics(lanes, final_receipts)
    metrics.per_tx = per_tx
    metrics.replayed = True
    _stamp(metrics, pool, dispatcher, wall)
    return BlockExecution(writes=writes, receipts=final_receipts,
                          metrics=metrics)
