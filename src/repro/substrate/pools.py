"""Worker pools: real OS threads and real processes behind one interface.

Both pools speak the same protocol: the coordinator ``submit``s
:class:`~repro.substrate.tasks.TxTask`s to a *specific* worker (assignment
is the coordinator's job — stable ``index % workers`` keeps runs
reproducible and per-worker code caches effective), then ``collect``s
:class:`PoolEvent`s.  ``submit`` only buffers; the batched send happens at
the next ``collect`` (or an explicit ``flush``), so a burst of ready
transactions costs one IPC message per worker, not one per task.

Crash handling (processes only): each worker's ``Process.sentinel`` is
waited on alongside its pipe, so a SIGKILL mid-task is detected even while
other forked children hold inherited descriptors of the dead worker's pipe.
On death the pool drains whatever outcomes the worker managed to send,
respawns a fresh worker under the same id (with an empty code cache — the
coordinator is told via the crash event so it re-ships code), and reports
the in-flight tasks as ``lost`` for the coordinator to re-dispatch.

``worker_delay`` sleeps that many seconds before each task — a test hook
that widens the in-flight window so fault-injection tests can SIGKILL a
worker *during* a block without racing it.  ``task_timeout`` bounds how
long any dispatched task may stay unanswered before its worker is killed
and treated as crashed (hung-worker recovery).

Workers seed ``random`` from ``(seed, worker_id)`` at startup: transaction
execution itself is deterministic, but any stochastic instrumentation a
worker-side component picks up must not depend on which process it landed
in beyond the stable assignment.
"""

from __future__ import annotations

import os
import queue
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import SchedulingError
from .tasks import TxOutcome, TxTask, execute_tx_task


@dataclass(frozen=True)
class PoolEvent:
    """One thing that happened on the pool.

    ``kind`` is ``"outcome"`` (a worker returned a task), ``"crash"`` (a
    worker died; ``lost`` holds its unanswered tasks), or ``"error"`` (a
    worker raised — a bug, not a protocol event).
    """

    kind: str
    worker: int
    outcome: Optional[TxOutcome] = None
    lost: Tuple[TxTask, ...] = ()
    message: str = ""


def _seed_worker(seed: int, worker_id: int) -> None:
    random.seed((seed & 0xFFFFFFFF) * 1_000_003 + worker_id)


def _run_tasks(tasks, codes, worker_id, delay, emit) -> None:
    for task in tasks:
        if delay > 0:
            time.sleep(delay)
        try:
            outcome = execute_tx_task(task, codes, worker_id)
        except BaseException as exc:  # noqa: BLE001 — reported, not swallowed
            emit(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        else:
            emit(("outcome", worker_id, outcome))


class WorkerPool:
    """Common bookkeeping: buffered submissions + in-flight tracking."""

    kind = "?"

    def __init__(self, size: int, seed: int = 0, worker_delay: float = 0.0,
                 task_timeout: Optional[float] = None) -> None:
        if size < 1:
            raise ValueError("worker pool needs at least one worker")
        self.size = size
        self.seed = seed
        self.worker_delay = worker_delay
        self.task_timeout = task_timeout
        self._pending: List[List[TxTask]] = [[] for _ in range(size)]
        # worker -> {(index, ticket): task}; removed when the outcome lands.
        self._inflight: List[Dict[Tuple[int, int], TxTask]] = [
            {} for _ in range(size)
        ]
        self._dispatched_at: List[Dict[Tuple[int, int], float]] = [
            {} for _ in range(size)
        ]
        self.crashes = 0

    @property
    def inflight_count(self) -> int:
        # Every pending (buffered, unflushed) task is already registered in
        # _inflight by submit(), so the in-flight maps alone are the count.
        return sum(len(m) for m in self._inflight)

    def submit(self, worker: int, task: TxTask) -> None:
        self._pending[worker].append(task)
        self._inflight[worker][(task.index, task.ticket)] = task

    def _settle(self, worker: int, outcome: TxOutcome) -> None:
        self._inflight[worker].pop((outcome.index, outcome.ticket), None)
        self._dispatched_at[worker].pop((outcome.index, outcome.ticket), None)

    # Subclasses implement flush/collect/close.

    def flush(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def collect(self) -> List[PoolEvent]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadWorkerPool(WorkerPool):
    """Real ``threading`` workers — the GIL-bound baseline.

    Same protocol and determinism story as the process pool, but state
    crosses no process boundary: task/outcome objects travel by reference
    through queues.  Pure-Python EVM execution holds the GIL, so this
    backend demonstrates the *cost* of real threads without the win.
    """

    kind = "threads"

    def __init__(self, size: int, seed: int = 0, worker_delay: float = 0.0,
                 task_timeout: Optional[float] = None) -> None:
        super().__init__(size, seed, worker_delay, task_timeout)
        self._outbox: "queue.Queue" = queue.Queue()
        self._inboxes: List["queue.Queue"] = []
        self._threads: List[threading.Thread] = []
        for worker_id in range(size):
            inbox: "queue.Queue" = queue.Queue()
            thread = threading.Thread(
                target=self._worker_main,
                args=(inbox, worker_id),
                name=f"substrate-worker-{worker_id}",
                daemon=True,
            )
            self._inboxes.append(inbox)
            self._threads.append(thread)
            thread.start()

    def _worker_main(self, inbox: "queue.Queue", worker_id: int) -> None:
        _seed_worker(self.seed, worker_id)
        codes: Dict[object, bytes] = {}
        while True:
            message = inbox.get()
            if message is None:
                return
            _run_tasks(message, codes, worker_id, self.worker_delay,
                       self._outbox.put)

    def flush(self) -> None:
        for worker, tasks in enumerate(self._pending):
            if tasks:
                self._inboxes[worker].put(list(tasks))
                tasks.clear()

    def collect(self) -> List[PoolEvent]:
        self.flush()
        if self.inflight_count == 0:
            return []
        events: List[PoolEvent] = []
        kind, worker, payload = self._outbox.get()
        while True:
            if kind == "outcome":
                self._settle(worker, payload)
                events.append(PoolEvent("outcome", worker, outcome=payload))
            else:
                events.append(PoolEvent("error", worker, message=payload))
            try:
                kind, worker, payload = self._outbox.get_nowait()
            except queue.Empty:
                return events

    def close(self) -> None:
        for inbox in self._inboxes:
            inbox.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []


class ProcessWorkerPool(WorkerPool):
    """Real ``multiprocessing`` workers — actual parallel EVM execution.

    One duplex pipe per worker; tasks and outcomes cross it pickled.  The
    fork start method is preferred (cheap, inherits the code registry's
    module state); crash detection rides on process sentinels, so it works
    under fork despite sibling-inherited pipe descriptors.
    """

    kind = "processes"

    def __init__(self, size: int, seed: int = 0, worker_delay: float = 0.0,
                 task_timeout: Optional[float] = None,
                 start_method: Optional[str] = None) -> None:
        super().__init__(size, seed, worker_delay, task_timeout)
        import multiprocessing as mp

        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._conns: List[object] = [None] * size
        self._procs: List[object] = [None] * size
        for worker_id in range(size):
            self._spawn(worker_id)

    def _spawn(self, worker_id: int) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_process_worker_main,
            args=(child, worker_id, self.seed, self.worker_delay),
            name=f"substrate-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns[worker_id] = parent
        self._procs[worker_id] = proc

    def pid_of(self, worker: int) -> Optional[int]:
        proc = self._procs[worker]
        return proc.pid if proc is not None else None

    def kill_worker(self, worker: int) -> None:
        """SIGKILL a worker (fault-injection hook for tests)."""
        import signal

        pid = self.pid_of(worker)
        if pid is not None:
            os.kill(pid, signal.SIGKILL)

    def flush(self) -> List[PoolEvent]:
        events: List[PoolEvent] = []
        now = time.monotonic()
        for worker, tasks in enumerate(self._pending):
            if not tasks:
                continue
            batch = list(tasks)
            tasks.clear()
            for task in batch:
                self._dispatched_at[worker][(task.index, task.ticket)] = now
            try:
                self._conns[worker].send(("tasks", batch))
            except (BrokenPipeError, OSError):
                events.append(self._crash(worker))
        return events

    def collect(self) -> List[PoolEvent]:
        events = self.flush()
        if events or self.inflight_count == 0:
            return events
        from multiprocessing.connection import wait as conn_wait

        while not events:
            waitables = list(self._conns) + [
                p.sentinel for p in self._procs if p is not None
            ]
            ready = conn_wait(waitables, timeout=0.2)
            dead: List[int] = []
            for obj in ready:
                if obj in self._conns:
                    worker = self._conns.index(obj)
                    drained, died = self._drain(worker)
                    events.extend(drained)
                    if died:
                        dead.append(worker)
                else:  # a sentinel: the worker process exited
                    for worker, proc in enumerate(self._procs):
                        if proc is not None and proc.sentinel == obj:
                            drained, _ = self._drain(worker)
                            events.extend(drained)
                            dead.append(worker)
                            break
            for worker in set(dead):
                events.append(self._crash(worker))
            events.extend(self._check_timeouts())
            if self.inflight_count == 0:
                break
        return events

    def _drain(self, worker: int) -> Tuple[List[PoolEvent], bool]:
        """Pull every buffered message off a worker's pipe; returns the
        events plus whether the pipe hit EOF (worker dead)."""
        events: List[PoolEvent] = []
        conn = self._conns[worker]
        try:
            while conn.poll():
                kind, wid, payload = conn.recv()
                if kind == "outcome":
                    self._settle(worker, payload)
                    events.append(PoolEvent("outcome", worker, outcome=payload))
                else:
                    events.append(PoolEvent("error", worker, message=payload))
        except (EOFError, OSError):
            return events, True
        proc = self._procs[worker]
        if proc is not None and not proc.is_alive():
            return events, True
        return events, False

    def _crash(self, worker: int) -> PoolEvent:
        """Respawn a dead worker and surface its unanswered tasks."""
        self.crashes += 1
        lost = tuple(self._inflight[worker].values())
        self._inflight[worker].clear()
        self._dispatched_at[worker].clear()
        # Buffered-but-unflushed tasks are in ``lost`` too (submit registers
        # them in-flight); drop the buffered copies so the respawned worker
        # is not sent soon-to-be-stale duplicates.
        self._pending[worker].clear()
        proc = self._procs[worker]
        if proc is not None:
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - already gone
            pass
        self._spawn(worker)
        return PoolEvent("crash", worker, lost=lost)

    def _check_timeouts(self) -> List[PoolEvent]:
        if self.task_timeout is None:
            return []
        now = time.monotonic()
        events: List[PoolEvent] = []
        for worker in range(self.size):
            stamps = self._dispatched_at[worker]
            if stamps and now - min(stamps.values()) > self.task_timeout:
                self.kill_worker(worker)
                self._procs[worker].join(timeout=2.0)
                events.append(self._crash(worker))
        return events

    def close(self) -> None:
        for worker in range(self.size):
            conn = self._conns[worker]
            if conn is None:
                continue
            try:
                conn.send(("exit", None))
            except (BrokenPipeError, OSError):
                pass
        for worker, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            try:
                self._conns[worker].close()
            except OSError:  # pragma: no cover
                pass
        self._procs = [None] * self.size
        self._conns = [None] * self.size


def _process_worker_main(conn, worker_id: int, seed: int, delay: float) -> None:
    """Entry point of one worker process: recv task batches, send outcomes."""
    _seed_worker(seed, worker_id)
    codes: Dict[object, bytes] = {}
    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            return
        if kind == "exit":
            return
        if kind == "tasks":
            _run_tasks(payload, codes, worker_id, delay, conn.send)
        else:  # pragma: no cover - protocol violation
            conn.send(("error", worker_id,
                       f"unknown message kind {kind!r}"))
            return


def make_pool(kind: str, size: int, **options) -> WorkerPool:
    if kind == "threads":
        return ThreadWorkerPool(size, **options)
    if kind == "processes":
        return ProcessWorkerPool(size, **options)
    raise SchedulingError(f"unknown worker pool kind {kind!r}")
