"""Pluggable execution substrates (see docs/SUBSTRATES.md).

``sim`` (default) runs the discrete-event simulator; ``threads`` and
``processes`` run transactions on real workers, coordinated by
:mod:`repro.substrate.coordinator` through the same protocol machinery.
"""

from .base import (
    ENV_SUBSTRATE,
    ENV_WORKERS,
    SUBSTRATE_KINDS,
    ProcessesSubstrate,
    SimSubstrate,
    Substrate,
    ThreadsSubstrate,
    default_substrate,
    get_substrate,
)
from .pools import PoolEvent, ProcessWorkerPool, ThreadWorkerPool, WorkerPool, make_pool
from .tasks import (
    READ_BLIND,
    READ_LOWERED,
    READ_REGISTERED,
    TxOutcome,
    TxTask,
    execute_tx_task,
)

__all__ = [
    "ENV_SUBSTRATE",
    "ENV_WORKERS",
    "READ_BLIND",
    "READ_LOWERED",
    "READ_REGISTERED",
    "SUBSTRATE_KINDS",
    "PoolEvent",
    "ProcessWorkerPool",
    "ProcessesSubstrate",
    "SimSubstrate",
    "Substrate",
    "ThreadWorkerPool",
    "ThreadsSubstrate",
    "TxOutcome",
    "TxTask",
    "WorkerPool",
    "default_substrate",
    "execute_tx_task",
    "get_substrate",
    "make_pool",
]
