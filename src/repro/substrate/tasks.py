"""Picklable task protocol between a coordinator and its workers.

A :class:`TxTask` carries everything a worker needs to run one transaction
attempt *to completion* without talking back mid-flight: the transaction
itself, a **read view** (the resolved value of every state key the
coordinator predicts the attempt will read), the contract analysis lookups
that drive blind-increment classification, and any contract code the worker
has not cached yet.  The worker returns a :class:`TxOutcome`: the ordered
read log (key, observed base, read kind), the buffered absolute and delta
write sets, and the :class:`~repro.executors.txprogram.TxResult`.

The worker-side driver (:func:`execute_tx_task`) mirrors the DMVCC
simulator's read/write/increment/frame semantics exactly — own-write
short-circuits, blind-increment pairing into commutative deltas, own-delta
folding on registered reads, frame checkpoint/revert over the buffered
write sets — so that validating the returned read log against the live
access sequences is sufficient for deterministic serializability.  With
``commutative=False`` the same driver serves the OCC/DAG/serial semantics
(increments lowered to read-modify-write, no blind classification).

A read outside the view cannot be answered locally; the worker stops and
returns a ``need`` outcome naming the missing keys/codes, and the
coordinator re-dispatches with an augmented view (the *NeedKeys* loop).
This is how accesses the analysis missed are discovered across a process
boundary — the in-process executors resolve them on the fly instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.types import Address, StateKey
from ..core.words import WORD_MOD
from ..evm.events import (
    EmittedLog,
    FrameCheckpoint,
    FrameCommit,
    FrameRevert,
    StorageRead,
    StorageWrite,
    Watchpoint,
)
from ..executors.txprogram import StorageIncrement, TxResult, transaction_program

# Read kinds in TxOutcome.reads — what the coordinator must do with each
# record when the outcome comes back:
READ_REGISTERED = 0   # versioned read: validate against the live sequences
READ_BLIND = 1        # commutative blind-increment read: value-insensitive
READ_LOWERED = 2      # increment lowered to read-modify-write: validate


@dataclass(frozen=True)
class TxTask:
    """One transaction attempt shipped to a worker."""

    index: int
    attempt: int
    ticket: int                      # per-tx dispatch counter (staleness guard)
    tx: object                       # repro.chain.transaction.Transaction
    view: Dict[StateKey, int]        # resolved values of the predicted reads
    block: object                    # repro.evm.environment.BlockContext
    commutative: bool = True
    blind_pcs: frozenset = frozenset()       # pcs of blind increment reads (tx.to)
    increment_sites: Dict[int, int] = field(default_factory=dict)  # write pc -> read pc
    codes: Dict[Address, bytes] = field(default_factory=dict)      # cache warm-up


@dataclass(frozen=True)
class TxOutcome:
    """What a worker sends back for one dispatched task."""

    index: int
    attempt: int
    ticket: int
    ok: bool
    # ok=True:
    result: Optional[TxResult] = None
    reads: Tuple[Tuple[StateKey, int, int], ...] = ()   # (key, base, kind)
    writes_abs: Tuple[Tuple[StateKey, int], ...] = ()
    writes_delta: Tuple[Tuple[StateKey, int], ...] = ()
    # ok=False (need): what was missing from the view / code cache.
    missing_keys: Tuple[StateKey, ...] = ()
    missing_codes: Tuple[Address, ...] = ()
    worker: int = -1


class MissingKey(Exception):
    """A read fell outside the shipped view."""

    def __init__(self, key: StateKey) -> None:
        super().__init__(f"view miss: {key}")
        self.key = key


class MissingCode(Exception):
    """A contract's code is not in the worker's cache yet."""

    def __init__(self, address: Address) -> None:
        super().__init__(f"code miss: {address}")
        self.address = address


def execute_tx_task(
    task: TxTask, code_cache: Dict[Address, bytes], worker: int = -1
) -> TxOutcome:
    """Run one task against its view; the pure function workers execute.

    ``code_cache`` is the worker's persistent address→code map (contract
    code is immutable here, so entries never go stale); ``task.codes`` is
    merged into it first.  Missing keys/codes produce a ``need`` outcome
    instead of raising — the coordinator owns the retry.
    """
    code_cache.update(task.codes)

    def resolve_code(address: Address) -> bytes:
        try:
            return code_cache[address]
        except KeyError:
            raise MissingCode(address) from None

    view = task.view

    def view_get(key: StateKey) -> int:
        try:
            return view[key]
        except KeyError:
            raise MissingKey(key) from None

    w_abs: Dict[StateKey, int] = {}
    w_delta: Dict[StateKey, int] = {}
    registered: Dict[StateKey, int] = {}
    pending_blind: Dict[StateKey, Tuple[int, int]] = {}
    frames: List[Tuple[Dict, Dict, Dict]] = []
    reads: List[Tuple[StateKey, int, int]] = []

    program = transaction_program(task.tx, resolve_code, block=task.block)
    to_send: object = None
    try:
        while True:
            try:
                event = program.send(to_send)
            except StopIteration as stop:
                result: TxResult = stop.value
                break
            to_send = None
            if isinstance(event, StorageRead):
                key = event.key
                if key in w_abs:
                    to_send = w_abs[key]
                    continue
                if (
                    task.commutative
                    and event.pc in task.blind_pcs
                    and key not in registered
                ):
                    # Blind increment read: value feeds only the paired +=.
                    if key in w_delta:
                        answer = 0  # own pending delta: any base cancels out
                    else:
                        answer = view_get(key)
                    pending_blind[key] = (answer, event.pc)
                    reads.append((key, answer, READ_BLIND))
                    to_send = answer
                    continue
                base = view_get(key)
                if key in w_delta:
                    # Own pending increments fold in; the write goes absolute.
                    value = (base + w_delta.pop(key)) % WORD_MOD
                    w_abs[key] = value
                else:
                    value = base
                registered[key] = value
                reads.append((key, base, READ_REGISTERED))
                to_send = value
            elif isinstance(event, StorageWrite):
                key = event.key
                pending = pending_blind.pop(key, None)
                if (
                    pending is not None
                    and task.commutative
                    and key not in w_abs
                    and task.increment_sites.get(event.pc) == pending[1]
                ):
                    delta = (event.value - pending[0]) % WORD_MOD
                    w_delta[key] = (w_delta.get(key, 0) + delta) % WORD_MOD
                    continue
                w_abs[key] = event.value
                w_delta.pop(key, None)
            elif isinstance(event, StorageIncrement):
                key = event.key
                if key in w_abs:
                    w_abs[key] = (w_abs[key] + event.delta) % WORD_MOD
                elif task.commutative:
                    w_delta[key] = (w_delta.get(key, 0) + event.delta) % WORD_MOD
                else:
                    base = view_get(key)
                    registered[key] = base
                    reads.append((key, base, READ_LOWERED))
                    w_abs[key] = (base + event.delta) % WORD_MOD
            elif isinstance(event, FrameCheckpoint):
                frames.append((dict(w_abs), dict(w_delta), dict(registered)))
                to_send = len(frames)
            elif isinstance(event, FrameCommit):
                frames.pop()
            elif isinstance(event, FrameRevert):
                w_abs, w_delta, registered = frames.pop()
            elif isinstance(event, (Watchpoint, EmittedLog)):
                pass
    except MissingKey as miss:
        program.close()
        return TxOutcome(
            index=task.index, attempt=task.attempt, ticket=task.ticket,
            ok=False, reads=tuple(reads), missing_keys=(miss.key,),
            worker=worker,
        )
    except MissingCode as miss:
        program.close()
        return TxOutcome(
            index=task.index, attempt=task.attempt, ticket=task.ticket,
            ok=False, reads=tuple(reads), missing_codes=(miss.address,),
            worker=worker,
        )

    if not result.success:
        w_abs, w_delta = {}, {}
    return TxOutcome(
        index=task.index, attempt=task.attempt, ticket=task.ticket,
        ok=True, result=result, reads=tuple(reads),
        writes_abs=tuple(sorted(w_abs.items())),
        writes_delta=tuple(sorted(w_delta.items())),
        worker=worker,
    )
