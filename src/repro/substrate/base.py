"""Pluggable execution substrates: where a block's transactions *actually* run.

Every executor talks to its workers through a seam — DMVCC through access
sequences and the lock table, OCC through versioned rounds, DAG through the
conflict graph.  A :class:`Substrate` decides what sits behind that seam:

* ``sim``        — the discrete-event simulator (`repro.sim`): parallelism
  in *gas time*, byte-identical to every release since the seed.  Default.
* ``threads``    — real ``threading`` workers: true concurrency, GIL-bound
  throughput.  The honest baseline real parallelism must beat.
* ``processes``  — a ``multiprocessing`` worker pool: real parallel EVM
  execution on real cores, coordinated through the same protocol machinery.

Executors call :meth:`Substrate.acquire` with the requested parallelism;
``sim`` returns ``None`` (run the simulator path), the real substrates
return a cached :class:`~repro.substrate.pools.WorkerPool`.  Pools persist
across blocks — spawning processes per block would drown the win — and are
closed by :meth:`close` (or atexit for the environment-selected default).

``REPRO_SUBSTRATE`` / ``REPRO_SUBSTRATE_WORKERS`` select a process-wide
default substrate without touching call sites: every executor constructed
without an explicit ``substrate=`` picks it up, which is how CI runs the
ordinary differential-fuzz suites on the processes backend.
"""

from __future__ import annotations

import atexit
import os
from typing import Dict, Optional

from .pools import WorkerPool, make_pool

SUBSTRATE_KINDS = ("sim", "threads", "processes")

ENV_SUBSTRATE = "REPRO_SUBSTRATE"
ENV_WORKERS = "REPRO_SUBSTRATE_WORKERS"


class Substrate:
    """One execution backend; owns its worker pools.

    ``workers`` pins the worker count regardless of the ``threads``
    argument executors receive (CI uses this to smoke-test with 2 process
    workers while the suites keep asking for their usual thread counts);
    ``None`` sizes pools to the requested parallelism.
    """

    kind = "sim"

    def __init__(self, workers: Optional[int] = None, seed: int = 0,
                 worker_delay: float = 0.0,
                 task_timeout: Optional[float] = None) -> None:
        self.workers = workers
        self.seed = seed
        self.worker_delay = worker_delay
        self.task_timeout = task_timeout
        self._pools: Dict[int, WorkerPool] = {}

    def worker_count(self, threads: int) -> int:
        return self.workers if self.workers else max(int(threads), 1)

    def acquire(self, threads: int) -> Optional[WorkerPool]:
        """The pool to run on, or ``None`` for the simulator path."""
        if self.kind == "sim":
            return None
        size = self.worker_count(threads)
        pool = self._pools.get(size)
        if pool is None:
            pool = make_pool(self.kind, size, seed=self.seed,
                             worker_delay=self.worker_delay,
                             task_timeout=self.task_timeout)
            self._pools[size] = pool
        return pool

    def close(self) -> None:
        pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    def __enter__(self) -> "Substrate":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Substrate {self.kind} workers={self.workers}>"


class SimSubstrate(Substrate):
    kind = "sim"


class ThreadsSubstrate(Substrate):
    kind = "threads"


class ProcessesSubstrate(Substrate):
    kind = "processes"


_REGISTRY = {
    "sim": SimSubstrate,
    "threads": ThreadsSubstrate,
    "processes": ProcessesSubstrate,
}


def get_substrate(name: str, workers: Optional[int] = None,
                  **options) -> Substrate:
    """Construct a substrate by name (``sim`` / ``threads`` / ``processes``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown substrate {name!r}; expected one of {SUBSTRATE_KINDS}"
        ) from None
    return cls(workers=workers, **options)


_default: Optional[Substrate] = None
_default_key: Optional[str] = None


def default_substrate() -> Optional[Substrate]:
    """The environment-selected substrate, or ``None`` (≡ sim).

    The instance is cached process-wide so every executor shares one set of
    worker pools; it is torn down atexit.
    """
    global _default, _default_key
    name = os.environ.get(ENV_SUBSTRATE, "").strip().lower()
    if not name or name == "sim":
        return None
    workers_env = os.environ.get(ENV_WORKERS, "").strip()
    workers = int(workers_env) if workers_env else None
    key = f"{name}:{workers}"
    if _default is None or _default_key != key:
        if _default is not None:
            _default.close()
        _default = get_substrate(name, workers=workers)
        _default_key = key
        atexit.register(_default.close)
    return _default
