"""Abort attribution and hot-key contention ranking.

Every abort the schedulers emit names its trigger: the state key whose
conflicting version was observed, the writer transaction that produced the
version, and the reader transaction that was killed.  This module folds
those triples — together with version-wait occurrences, early reads, and
commutative merges — into a per-key contention profile, answering "which
state item caused that abort storm?" with an actual storage slot, not a
speedup number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.types import Address, StateKey
from .events import (
    CheckpointTaken,
    CommutativeMerge,
    EarlyReadServed,
    ObsEvent,
    RevalidationHit,
    TxAbort,
    TxResume,
    VersionWaitBegin,
    VersionWaitEnd,
)

Namer = Callable[[Address], Optional[str]]


@dataclass(frozen=True)
class AbortRecord:
    """One attributed abort: ``writer``'s version of ``key`` killed
    ``reader``'s ``attempt``."""

    ts: float
    reader: int
    writer: int
    key: Optional[StateKey]
    attempt: int


@dataclass
class KeyContention:
    """Aggregate contention profile of one state item."""

    key: StateKey
    aborts: int = 0
    wait_count: int = 0          # version-waits that named this key
    wait_time: float = 0.0       # total duration of those waits
    early_reads: int = 0
    merges: int = 0
    writers: Set[int] = field(default_factory=set)
    readers: Set[int] = field(default_factory=set)

    @property
    def score(self) -> Tuple[int, float, int]:
        return (self.aborts, self.wait_time, self.wait_count)


def contract_namer(db) -> Namer:
    """A :class:`Namer` backed by a StateDB's code registry (contracts get
    the human name they were deployed under)."""

    def name_of(address: Address) -> Optional[str]:
        meta = db.codes.get(address)
        if meta is not None and meta.name:
            return meta.name
        return None

    return name_of


def format_key(key: StateKey, name_of: Optional[Namer] = None) -> str:
    """Short, human-readable identity of a state item."""
    name = name_of(key.address) if name_of is not None else None
    if name is None:
        text = str(key.address)
        name = text[:8] + "…" + text[-4:]
    if key.is_balance:
        return f"{name}.balance"
    if key.is_nonce:
        return f"{name}.nonce"
    return f"{name}[{key.slot:#x}]"


class AbortAttribution:
    """Fold an event stream into abort records and per-key contention."""

    def __init__(self) -> None:
        self.aborts: List[AbortRecord] = []
        self.contention: Dict[StateKey, KeyContention] = {}
        self._open_waits: Dict[int, Tuple[float, Tuple[StateKey, ...]]] = {}
        # Incremental re-execution savings (checkpoint/resume features):
        self.resumes: int = 0
        self.revalidation_hits: int = 0
        self.instructions_skipped: int = 0
        self.checkpoints_taken: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[ObsEvent]) -> "AbortAttribution":
        attribution = cls()
        for event in events:
            attribution.feed(event)
        attribution.finish()
        return attribution

    def _key_stats(self, key: StateKey) -> KeyContention:
        stats = self.contention.get(key)
        if stats is None:
            stats = KeyContention(key=key)
            self.contention[key] = stats
        return stats

    def feed(self, event: ObsEvent) -> None:
        if isinstance(event, TxAbort):
            self.aborts.append(AbortRecord(
                ts=event.ts, reader=event.tx, writer=event.writer,
                key=event.key, attempt=event.attempt,
            ))
            if event.key is not None:
                stats = self._key_stats(event.key)
                stats.aborts += 1
                stats.readers.add(event.tx)
                if event.writer >= 0:
                    stats.writers.add(event.writer)
        elif isinstance(event, VersionWaitBegin):
            self._open_waits[event.tx] = (event.ts, event.keys)
            for key in event.keys:
                stats = self._key_stats(key)
                stats.wait_count += 1
                stats.readers.add(event.tx)
                for blocker in event.blockers:
                    if blocker >= 0:
                        stats.writers.add(blocker)
        elif isinstance(event, VersionWaitEnd):
            opened = self._open_waits.pop(event.tx, None)
            if opened is not None:
                since, keys = opened
                duration = max(event.ts - since, 0.0)
                for key in keys:
                    self._key_stats(key).wait_time += duration
        elif isinstance(event, EarlyReadServed) and event.key is not None:
            self._key_stats(event.key).early_reads += 1
        elif isinstance(event, CommutativeMerge) and event.key is not None:
            self._key_stats(event.key).merges += 1
        elif isinstance(event, TxResume):
            self.resumes += 1
            self.instructions_skipped += event.instructions_skipped
        elif isinstance(event, RevalidationHit):
            self.revalidation_hits += 1
            self.instructions_skipped += event.instructions_skipped
        elif isinstance(event, CheckpointTaken):
            self.checkpoints_taken += 1

    def finish(self, end_of_stream: Optional[float] = None) -> None:
        """Close version-waits still open when the stream ended (an abort
        may terminate a wait without a matching end marker)."""
        if end_of_stream is None:
            end_of_stream = max(
                (r.ts for r in self.aborts), default=0.0
            )
        for since, keys in self._open_waits.values():
            duration = max(end_of_stream - since, 0.0)
            for key in keys:
                self._key_stats(key).wait_time += duration
        self._open_waits.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def abort_count(self) -> int:
        return len(self.aborts)

    def hot_keys(self, top: int = 10) -> List[KeyContention]:
        """Most contended keys, ranked by aborts then wait time."""
        ranked = sorted(
            self.contention.values(),
            key=lambda s: (s.score, str(s.key)),
            reverse=True,
        )
        interesting = [
            s for s in ranked
            if s.aborts or s.wait_count or s.early_reads or s.merges
        ]
        return interesting[:top]

    def pairs(self) -> List[Tuple[int, int, Optional[StateKey], int]]:
        """Distinct (writer, reader, key, count) abort edges."""
        counts: Dict[Tuple[int, int, Optional[StateKey]], int] = {}
        for record in self.aborts:
            edge = (record.writer, record.reader, record.key)
            counts[edge] = counts.get(edge, 0) + 1
        return sorted(
            ((w, r, k, n) for (w, r, k), n in counts.items()),
            key=lambda e: (-e[3], e[0], e[1]),
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """Machine-readable export of the full attribution.

        The shape is what
        :meth:`repro.scheduling.profile.ConflictProfileStore.observe_json`
        consumes, so a dumped artifact can seed a fresh validator's lane
        planner offline (``repro profile --attribution-json``).
        """
        from ..scheduling.profile import key_to_json

        return {
            "abort_count": self.abort_count,
            "aborts": [
                {
                    "ts": record.ts,
                    "reader": record.reader,
                    "writer": record.writer,
                    "key": key_to_json(record.key)
                    if record.key is not None else None,
                    "attempt": record.attempt,
                }
                for record in self.aborts
            ],
            "contention": [
                {
                    "key": key_to_json(stats.key),
                    "aborts": stats.aborts,
                    "waits": stats.wait_count,
                    "wait_time": stats.wait_time,
                    "early_reads": stats.early_reads,
                    "merges": stats.merges,
                    "writers": sorted(stats.writers),
                    "readers": sorted(stats.readers),
                }
                for stats in sorted(
                    self.contention.values(),
                    key=lambda s: (s.score, str(s.key)), reverse=True,
                )
            ],
            "savings": {
                "resumes": self.resumes,
                "revalidation_hits": self.revalidation_hits,
                "instructions_skipped": self.instructions_skipped,
                "checkpoints_taken": self.checkpoints_taken,
            },
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_table(
        self,
        name_of: Optional[Namer] = None,
        top: int = 10,
        title: str = "abort attribution",
    ) -> str:
        hot = self.hot_keys(top)
        lines = [
            f"{title}: {self.abort_count} abort(s) across "
            f"{sum(1 for s in self.contention.values() if s.aborts)} key(s)"
        ]
        if self.resumes or self.revalidation_hits or self.checkpoints_taken:
            lines.append(
                f"  re-execution savings: {self.resumes} resume(s), "
                f"{self.revalidation_hits} revalidation hit(s), "
                f"{self.instructions_skipped} instruction(s) skipped "
                f"({self.checkpoints_taken} checkpoint(s) taken)"
            )
        if not hot:
            lines.append("  (no contention recorded)")
            return "\n".join(lines)
        header = (
            f"  {'key':<38} {'aborts':>6} {'waits':>6} {'wait-time':>10} "
            f"{'early':>6} {'merges':>7}  writers→readers"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for stats in hot:
            writers = ",".join(f"T{w}" for w in sorted(stats.writers)[:4]) or "-"
            readers = ",".join(f"T{r}" for r in sorted(stats.readers)[:4]) or "-"
            lines.append(
                f"  {format_key(stats.key, name_of):<38} {stats.aborts:>6} "
                f"{stats.wait_count:>6} {stats.wait_time:>10,.0f} "
                f"{stats.early_reads:>6} {stats.merges:>7}  {writers}→{readers}"
            )
        return "\n".join(lines)
