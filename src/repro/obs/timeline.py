"""Timeline reconstruction: from an event stream to spans and waits.

``build_timeline`` pairs the begin/end markers an executor emitted into
per-transaction *spans*, each labelled with one of four categories:

* ``exec``         — occupying a simulated thread (start → end/abort);
* ``queue-wait``   — ready to run but no idle thread (ready → start);
* ``version-wait`` — stalled because a version it must read has not been
  published yet (DMVCC lock-table waits, OCC round-barrier waits after a
  stale validation);
* ``lock-wait``    — stalled behind conflict locks with no versioning to
  relax them (the DAG executor's dependency waits).

The resulting :class:`Timeline` offers the wait-time decomposition
(:meth:`Timeline.breakdown`), a ``ThreadPool.gantt()``-shaped per-thread
chart (:meth:`Timeline.gantt`), and critical-path extraction
(:meth:`Timeline.critical_path`): the chain of transactions whose waits and
executions bound the block's makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.types import StateKey
from .events import (
    BlockEnd,
    BlockStart,
    EventBus,
    LockWaitBegin,
    LockWaitEnd,
    ObsEvent,
    SNAPSHOT_WRITER,
    TxAbort,
    TxEnd,
    TxReady,
    TxStart,
    VersionWaitBegin,
    VersionWaitEnd,
)

EXEC = "exec"
QUEUE_WAIT = "queue-wait"
VERSION_WAIT = "version-wait"
LOCK_WAIT = "lock-wait"
CATEGORIES = (EXEC, QUEUE_WAIT, VERSION_WAIT, LOCK_WAIT)


@dataclass
class Span:
    """One contiguous phase of one transaction's life."""

    tx: int
    category: str
    start: float
    end: float
    attempt: int = 1
    thread: Optional[int] = None       # exec spans only
    note: str = ""                     # e.g. "aborted"
    keys: Tuple[StateKey, ...] = ()    # waited-on items (version-wait)
    cause: Optional[int] = None        # tx that ended the wait / holders' max

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TxTimeline:
    """All spans of one transaction, in start order."""

    index: int
    spans: List[Span] = field(default_factory=list)
    attempts: int = 1
    aborts: int = 0
    success: bool = True

    def total(self, category: str) -> float:
        return sum(s.duration for s in self.spans if s.category == category)

    @property
    def first_event(self) -> float:
        return min((s.start for s in self.spans), default=0.0)

    @property
    def completed_at(self) -> float:
        return max((s.end for s in self.spans), default=0.0)


@dataclass
class CriticalStep:
    """One link of the critical path: ``tx`` was on the block's longest
    dependency chain from ``start`` to ``end``; ``via`` says what tied it
    to the previous link (the transaction that enabled it)."""

    tx: int
    start: float
    end: float
    via: str = "block start"
    via_tx: Optional[int] = None


@dataclass
class Timeline:
    """A reconstructed block execution."""

    scheduler: str = "?"
    threads: int = 1
    tx_count: int = 0
    makespan: float = 0.0
    txs: Dict[int, TxTimeline] = field(default_factory=dict)
    events: List[ObsEvent] = field(default_factory=list)

    @property
    def spans(self) -> List[Span]:
        out: List[Span] = []
        for tl in self.txs.values():
            out.extend(tl.spans)
        out.sort(key=lambda s: (s.start, s.tx))
        return out

    def breakdown(self) -> Dict[str, float]:
        """Total simulated time per category, summed over transactions."""
        totals = {category: 0.0 for category in CATEGORIES}
        for tl in self.txs.values():
            for category in CATEGORIES:
                totals[category] += tl.total(category)
        return totals

    def gantt(self) -> Dict[int, List[Tuple[float, float, str]]]:
        """Per-thread ``(start, end, label)`` chart — the same shape as
        :meth:`repro.sim.threadpool.ThreadPool.gantt`."""
        chart: Dict[int, List[Tuple[float, float, str]]] = {
            t: [] for t in range(self.threads)
        }
        for span in self.spans:
            if span.category != EXEC or span.thread is None:
                continue
            label = f"T{span.tx}"
            if span.note == "aborted":
                label += "!"
            chart.setdefault(span.thread, []).append(
                (span.start, span.end, label))
        for lane in chart.values():
            lane.sort()
        return chart

    # ------------------------------------------------------------------
    # Critical path
    # ------------------------------------------------------------------

    def critical_path(self, max_steps: int = 64) -> List[CriticalStep]:
        """Walk backwards from the last-finishing transaction, at each hop
        following the wait that delayed it: a version-wait leads to the
        writer that granted the version, a lock-wait to its last-finishing
        holder, a queue-wait to the transaction whose completion freed the
        thread.  Deterministic, heuristic (documented in
        docs/OBSERVABILITY.md), and bounded by ``max_steps``."""
        if not self.txs:
            return []
        current: Optional[int] = max(
            self.txs, key=lambda i: (self.txs[i].completed_at, i)
        )
        steps: List[CriticalStep] = []
        visited = set()
        while current is not None and current not in visited and len(steps) < max_steps:
            visited.add(current)
            tl = self.txs[current]
            via, via_tx = self._enabler_of(tl)
            steps.append(CriticalStep(
                tx=current, start=tl.first_event, end=tl.completed_at,
                via=via, via_tx=via_tx,
            ))
            current = via_tx
        steps.reverse()
        return steps

    def _enabler_of(self, tl: TxTimeline) -> Tuple[str, Optional[int]]:
        """What released this transaction into its final execution?"""
        final_exec: Optional[Span] = None
        for span in tl.spans:
            if span.category == EXEC:
                if final_exec is None or span.start > final_exec.start:
                    final_exec = span
        if final_exec is None:
            return "block start", None
        # The latest wait ending at or before the final exec start.
        best: Optional[Span] = None
        for span in tl.spans:
            if span.category == EXEC or span.end > final_exec.start + 1e-9:
                continue
            if best is None or span.end > best.end or (
                span.end == best.end and span.start < best.start
            ):
                best = span
        if best is None or best.duration <= 1e-9:
            return "block start", None
        if best.category == VERSION_WAIT:
            cause = best.cause
            keys = ", ".join(str(k) for k in best.keys[:2])
            if cause is not None and cause >= 0:
                return f"version-wait on {keys or '?'} granted by T{cause}", cause
            return f"version-wait on {keys or '?'}", None
        if best.category == LOCK_WAIT:
            cause = best.cause
            if cause is not None and cause >= 0:
                return f"lock-wait behind T{cause}", cause
            return "lock-wait", None
        if best.category == QUEUE_WAIT:
            blocker = self._freed_thread_at(final_exec.thread, final_exec.start, tl.index)
            if blocker is not None:
                return f"queue-wait behind T{blocker}", blocker
            return "queue-wait", None
        return "block start", None

    def _freed_thread_at(self, thread: Optional[int], when: float,
                         exclude: int) -> Optional[int]:
        """Which transaction's exec span ended on ``thread`` at ``when``?"""
        if thread is None:
            return None
        for tx_index, tl in self.txs.items():
            if tx_index == exclude:
                continue
            for span in tl.spans:
                if (span.category == EXEC and span.thread == thread
                        and abs(span.end - when) <= 1e-9):
                    return tx_index
        return None


class _OpenMark:
    """Builder bookkeeping: one open (unclosed) span."""

    __slots__ = ("since", "attempt", "thread", "keys", "blockers")

    def __init__(self, since, attempt=1, thread=None, keys=(), blockers=()):
        self.since = since
        self.attempt = attempt
        self.thread = thread
        self.keys = keys
        self.blockers = blockers


def build_timeline(bus: EventBus) -> Timeline:
    """Reconstruct a :class:`Timeline` from one block's event stream.

    Tolerant by construction: an end marker without a begin is ignored, and
    spans still open when the stream ends are closed at the final
    timestamp.
    """
    timeline = Timeline(events=list(bus.events))
    open_queue: Dict[int, _OpenMark] = {}
    open_exec: Dict[int, _OpenMark] = {}
    open_vwait: Dict[int, _OpenMark] = {}
    open_lwait: Dict[int, _OpenMark] = {}
    max_ts = 0.0

    def tx_timeline(index: int) -> TxTimeline:
        tl = timeline.txs.get(index)
        if tl is None:
            tl = TxTimeline(index=index)
            timeline.txs[index] = tl
        return tl

    def close(index: int, marks: Dict[int, _OpenMark], category: str,
              end: float, note: str = "", cause: Optional[int] = None) -> None:
        mark = marks.pop(index, None)
        if mark is None:
            return
        tx_timeline(index).spans.append(Span(
            tx=index, category=category, start=mark.since,
            end=max(end, mark.since), attempt=mark.attempt,
            thread=mark.thread, note=note, keys=mark.keys, cause=cause,
        ))

    for event in bus.events:
        max_ts = max(max_ts, event.ts)
        if isinstance(event, BlockStart):
            timeline.scheduler = event.scheduler
            timeline.threads = event.threads
            timeline.tx_count = event.tx_count
        elif isinstance(event, BlockEnd):
            timeline.makespan = max(timeline.makespan, event.makespan)
        elif isinstance(event, TxReady):
            open_queue[event.tx] = _OpenMark(event.ts, event.attempt)
        elif isinstance(event, TxStart):
            close(event.tx, open_queue, QUEUE_WAIT, event.ts)
            open_exec[event.tx] = _OpenMark(
                event.ts, event.attempt, thread=event.thread)
            tl = tx_timeline(event.tx)
            tl.attempts = max(tl.attempts, event.attempt)
        elif isinstance(event, TxEnd):
            close(event.tx, open_exec, EXEC, event.ts)
            tx_timeline(event.tx).success = event.success
        elif isinstance(event, TxAbort):
            close(event.tx, open_exec, EXEC, event.ts, note="aborted")
            close(event.tx, open_queue, QUEUE_WAIT, event.ts, note="aborted")
            close(event.tx, open_vwait, VERSION_WAIT, event.ts,
                  note="aborted", cause=event.writer)
            tx_timeline(event.tx).aborts += 1
        elif isinstance(event, VersionWaitBegin):
            open_vwait[event.tx] = _OpenMark(
                event.ts, keys=event.keys, blockers=event.blockers)
        elif isinstance(event, VersionWaitEnd):
            cause = event.granted_by
            close(event.tx, open_vwait, VERSION_WAIT, event.ts,
                  cause=cause if cause != SNAPSHOT_WRITER else None)
        elif isinstance(event, LockWaitBegin):
            open_lwait[event.tx] = _OpenMark(event.ts, keys=(),
                                             blockers=event.holders)
        elif isinstance(event, LockWaitEnd):
            mark = open_lwait.get(event.tx)
            cause = max(mark.blockers) if mark and mark.blockers else None
            close(event.tx, open_lwait, LOCK_WAIT, event.ts, cause=cause)

    end_of_stream = max(max_ts, timeline.makespan)
    for index in list(open_exec):
        close(index, open_exec, EXEC, end_of_stream, note="unterminated")
    for index in list(open_queue):
        close(index, open_queue, QUEUE_WAIT, end_of_stream, note="unterminated")
    for index in list(open_vwait):
        close(index, open_vwait, VERSION_WAIT, end_of_stream, note="unterminated")
    for index in list(open_lwait):
        close(index, open_lwait, LOCK_WAIT, end_of_stream, note="unterminated")

    if timeline.makespan <= 0.0:
        timeline.makespan = end_of_stream
    if timeline.tx_count == 0:
        timeline.tx_count = len(timeline.txs)
    for tl in timeline.txs.values():
        tl.spans.sort(key=lambda s: (s.start, s.end))
    return timeline


def format_breakdown(timeline: Timeline) -> str:
    """One-line wait decomposition, normalised by total transaction time."""
    totals = timeline.breakdown()
    grand = sum(totals.values()) or 1.0
    parts = [
        f"{category}={totals[category]:,.0f} ({totals[category] / grand:.1%})"
        for category in CATEGORIES
    ]
    return (
        f"[{timeline.scheduler}] threads={timeline.threads} "
        f"makespan={timeline.makespan:,.0f}  " + "  ".join(parts)
    )
