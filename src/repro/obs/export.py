"""Trace export: Chrome trace-event JSON and ASCII Gantt rendering.

``build_chrome_trace`` turns reconstructed :class:`~repro.obs.timeline.Timeline`
objects into the Trace Event Format that ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev) load directly: one *process* per profiled
section (scheduler × run), one *thread* row per simulated thread for the
execution spans, and one extra row per transaction for its wait spans, so
the four wait categories are visible as coloured blocks alongside the
schedule.  One simulated gas unit maps to one microsecond of trace time.

``render_gantt_ascii`` draws the same schedule in the terminal; it accepts
exactly the chart shape :meth:`repro.sim.threadpool.ThreadPool.gantt` and
:meth:`repro.obs.timeline.Timeline.gantt` produce.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .events import (
    CommutativeMerge,
    EarlyReadServed,
    LockAcquire,
    ReleasePointReached,
    TxAbort,
)
from .timeline import EXEC, Timeline

# tid layout inside one trace process: simulated threads use their own
# index; per-transaction wait lanes start here (tx index is added).
WAIT_LANE_BASE = 1_000


def _meta(pid: int, name: str, tid: Optional[int] = None) -> dict:
    event = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def chrome_trace_events(
    timeline: Timeline,
    pid: int = 0,
    label: str = "",
    ts_offset: float = 0.0,
) -> List[dict]:
    """Flatten one timeline into trace-event dicts under process ``pid``.

    ``ts_offset`` shifts every timestamp, so consecutive blocks of one
    scheduler can be laid out back-to-back on a shared time axis.
    """
    name = label or timeline.scheduler
    out: List[dict] = [_meta(pid, name)]
    for thread in range(timeline.threads):
        out.append(_meta(pid, f"cpu {thread}", tid=thread))

    wait_lanes = set()
    for span in timeline.spans:
        if span.category == EXEC:
            tid = span.thread if span.thread is not None and span.thread >= 0 else 0
        else:
            tid = WAIT_LANE_BASE + span.tx
            wait_lanes.add(span.tx)
        args = {"tx": span.tx, "attempt": span.attempt}
        if span.note:
            args["note"] = span.note
        if span.keys:
            args["keys"] = [str(k) for k in span.keys]
        if span.cause is not None:
            args["cause_tx"] = span.cause
        out.append({
            "name": f"T{span.tx} {span.category}",
            "cat": span.category,
            "ph": "X",
            "ts": ts_offset + span.start,
            "dur": max(span.duration, 0.0),
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    for event in timeline.events:
        marker = _instant_marker(event)
        if marker is None:
            continue
        marker_name, category, args = marker
        tid = WAIT_LANE_BASE + event.tx if event.tx >= 0 else 0
        wait_lanes.add(event.tx if event.tx >= 0 else -1)
        out.append({
            "name": marker_name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": ts_offset + event.ts,
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    for tx in sorted(lane for lane in wait_lanes if lane >= 0):
        out.append(_meta(pid, f"T{tx} waits", tid=WAIT_LANE_BASE + tx))
    return out


def _instant_marker(event) -> Optional[Tuple[str, str, dict]]:
    """Map protocol moments to instant markers (name, category, args)."""
    if isinstance(event, TxAbort):
        args = {"attempt": event.attempt, "writer": event.writer}
        if event.key is not None:
            args["key"] = str(event.key)
        return f"abort T{event.tx}", "abort", args
    if isinstance(event, ReleasePointReached):
        return (
            f"release-point pc={event.pc}",
            "release-point",
            {"released": event.released, "gas_remaining": event.gas_remaining},
        )
    if isinstance(event, EarlyReadServed):
        return (
            f"early-read T{event.writer}→T{event.tx}",
            "early-read",
            {"key": str(event.key), "writer": event.writer},
        )
    if isinstance(event, CommutativeMerge):
        return (
            f"ω̄ merge T{event.tx}",
            "commutative-merge",
            {"key": str(event.key), "delta": event.delta},
        )
    if isinstance(event, LockAcquire):
        return (
            f"lock T{event.tx}",
            "lock-acquire",
            {"key": str(event.key)},
        )
    return None


def build_chrome_trace(
    sections: Sequence[Tuple[str, Timeline, float]],
    metadata: Optional[dict] = None,
) -> dict:
    """Assemble a complete Chrome trace document.

    ``sections`` is a list of ``(label, timeline, ts_offset)``; each becomes
    one process in the trace viewer.
    """
    trace_events: List[dict] = []
    for pid, (label, timeline, offset) in enumerate(sections):
        trace_events.extend(
            chrome_trace_events(timeline, pid=pid, label=label, ts_offset=offset)
        )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated gas units (1 gas = 1 µs)"},
    }
    if metadata:
        document["otherData"].update(metadata)
    return document


def write_chrome_trace(path: str, document: dict) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)


def render_gantt_ascii(
    chart: Dict[int, List[Tuple[float, float, str]]],
    makespan: float,
    width: int = 72,
    max_threads: int = 16,
    title: str = "",
) -> str:
    """ASCII Gantt chart from a ``ThreadPool.gantt()``-shaped chart."""
    lines = [title] if title else []
    if makespan <= 0 or not any(chart.values()):
        lines.append("(empty schedule)")
        return "\n".join(lines)
    scale = width / makespan
    shown = 0
    for thread in sorted(chart):
        if shown >= max_threads:
            lines.append(f"  … {len(chart) - max_threads} more threads")
            break
        shown += 1
        row = [" "] * width
        for start, end, label in chart[thread]:
            left = min(int(start * scale), width - 1)
            right = min(max(int(end * scale), left + 1), width)
            span = right - left
            body = (label + "─" * span)[: span - 1] if span > 1 else ""
            row[left:right] = list(("[" + body)[:span])
            if span > 1:
                row[right - 1] = "]"
        lines.append(f"  t{thread:<2d} |{''.join(row)}|")
    return "\n".join(lines)
