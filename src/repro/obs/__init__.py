"""repro.obs — execution observability.

Structured event tracing (:mod:`.events`), per-block timeline
reconstruction with wait-time decomposition (:mod:`.timeline`), Chrome
trace / ASCII Gantt export (:mod:`.export`), abort attribution and hot-key
contention ranking (:mod:`.attribution`), and the ``repro profile`` driver
(:mod:`.profile`).  See docs/OBSERVABILITY.md for the event taxonomy.
"""

from .attribution import AbortAttribution, AbortRecord, KeyContention, contract_namer, format_key
from .events import (
    BackpressureChanged,
    CommitPersisted,
    CommitSealed,
    CommitStarted,
    EventBus,
    MempoolEvicted,
    MempoolRejected,
    NullSink,
    NULL_BUS,
    ObsEvent,
    SNAPSHOT_WRITER,
    SoakCheckpoint,
    StageCompleted,
    UNKNOWN_WRITER,
    WorkloadChunkCommitted,
)
from .export import build_chrome_trace, chrome_trace_events, render_gantt_ascii, write_chrome_trace
from .timeline import (
    CATEGORIES,
    EXEC,
    LOCK_WAIT,
    QUEUE_WAIT,
    VERSION_WAIT,
    Span,
    Timeline,
    TxTimeline,
    build_timeline,
    format_breakdown,
)
from .profile import ProfileReport, ProfileSection, profile_to_file, run_profile

__all__ = [
    "AbortAttribution", "AbortRecord", "KeyContention", "contract_namer",
    "format_key", "BackpressureChanged", "CommitPersisted", "CommitSealed",
    "CommitStarted", "EventBus", "MempoolEvicted", "MempoolRejected",
    "NullSink", "NULL_BUS", "ObsEvent",
    "SNAPSHOT_WRITER", "SoakCheckpoint", "StageCompleted", "UNKNOWN_WRITER",
    "WorkloadChunkCommitted", "build_chrome_trace",
    "chrome_trace_events", "render_gantt_ascii", "write_chrome_trace",
    "CATEGORIES", "EXEC", "LOCK_WAIT", "QUEUE_WAIT", "VERSION_WAIT",
    "Span", "Timeline", "TxTimeline", "build_timeline", "format_breakdown",
    "ProfileReport", "ProfileSection", "profile_to_file", "run_profile",
]
