"""The ``python -m repro profile`` driver.

Runs a seeded workload through the schedulers with an
:class:`~repro.obs.events.EventBus` attached, reconstructs per-block
timelines, and produces:

* a Chrome trace-event JSON (``trace.json``) loadable in Perfetto or
  ``chrome://tracing``, one process per (scheduler, block) section;
* a terminal report: wait-time decomposition per section, an ASCII Gantt
  of the last DMVCC block, the DMVCC critical path, and per-scheduler
  abort attribution naming the hot state keys.

Correctness is never sacrificed for observability: every parallel
execution is checked against the serial reference write set, exactly as
the benchmark harness does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..executors.base import Executor
from ..executors.dag import DAGExecutor
from ..executors.dmvcc import DMVCCExecutor
from ..executors.occ import OCCExecutor
from ..executors.serial import SerialExecutor
from ..workload.generator import (
    Workload,
    high_contention_config,
    low_contention_config,
)
from .attribution import AbortAttribution, contract_namer
from .events import EventBus
from .export import build_chrome_trace, render_gantt_ascii, write_chrome_trace
from .timeline import Timeline, build_timeline, format_breakdown

PROFILE_SCHEDULERS = ("serial", "dag", "occ", "dmvcc")


def _factories() -> Dict[str, Callable[[], Executor]]:
    return {
        "serial": SerialExecutor,
        "dag": DAGExecutor,
        "occ": OCCExecutor,
        "dmvcc": DMVCCExecutor,
    }


@dataclass
class ProfileSection:
    """One (scheduler, block) execution with its reconstructed timeline."""

    scheduler: str
    block: int
    timeline: Timeline
    aborts: int = 0
    matches_serial: bool = True
    # Incremental re-execution savings (DMVCC checkpoint/resume):
    resumes: int = 0
    revalidation_hits: int = 0
    instructions_skipped: int = 0
    replayed_instructions: int = 0
    # Execution substrate: gas-clock (simulated makespan) next to the real
    # seconds the block took on the selected backend.
    backend: str = "sim"
    workers: int = 0
    wall_time: float = 0.0
    view_misses: int = 0

    @property
    def label(self) -> str:
        return f"{self.scheduler} block {self.block}"


@dataclass
class ProfileReport:
    """Everything one profiling run produced."""

    sections: List[ProfileSection] = field(default_factory=list)
    attributions: Dict[str, AbortAttribution] = field(default_factory=dict)
    trace: dict = field(default_factory=dict)
    namer: Optional[Callable] = None
    correctness_ok: bool = True
    commits: List = field(default_factory=list)  # per-block CommitReport
    pipeline: Optional[object] = None  # PipelineReport, when profiled

    def render(self, top: int = 10) -> str:
        lines = ["== wait-time decomposition =="]
        for section in self.sections:
            lines.append(f"  block {section.block}  "
                         + format_breakdown(section.timeline))
            if section.resumes or section.revalidation_hits:
                lines.append(
                    f"    └ re-exec savings: {section.resumes} resume(s), "
                    f"{section.revalidation_hits} revalidation hit(s), "
                    f"{section.instructions_skipped} instr skipped, "
                    f"{section.replayed_instructions} instr replayed")

        if self.sections:
            lines.append("")
            lines.append("== wall-clock vs gas-clock (per executor) ==")
            for section in self.sections:
                gas_clock = section.timeline.makespan
                extra = ""
                if section.backend != "sim":
                    extra = (f"  backend={section.backend} "
                             f"workers={section.workers} "
                             f"view_misses={section.view_misses}")
                if gas_clock > 0:
                    rate = (gas_clock / section.wall_time
                            if section.wall_time else 0.0)
                    clock = (f"gas-clock {gas_clock:>12,.0f}  "
                             f"wall {section.wall_time * 1e3:8.2f}ms  "
                             f"({rate:,.0f} gas-units/s)")
                else:
                    # Real backends schedule in physical time only; there
                    # is no simulated makespan to report.
                    clock = (f"gas-clock {'—':>12s}  "
                             f"wall {section.wall_time * 1e3:8.2f}ms")
                lines.append(
                    f"  {section.scheduler:7s} block {section.block}: "
                    f"{clock}{extra}")

        dmvcc_sections = [s for s in self.sections if s.scheduler == "dmvcc"]
        if dmvcc_sections:
            last = dmvcc_sections[-1]
            lines.append("")
            lines.append(render_gantt_ascii(
                last.timeline.gantt(), last.timeline.makespan,
                title=f"== {last.label}: thread schedule =="))
            path = last.timeline.critical_path()
            if path:
                lines.append("")
                lines.append(f"== {last.label}: critical path ==")
                for step in path:
                    lines.append(
                        f"  T{step.tx:<4} [{step.start:>10,.0f} → "
                        f"{step.end:>10,.0f}]  via {step.via}")

        if self.commits:
            lines.append("")
            lines.append("== state commit (batched overlay) ==")
            for commit in self.commits:
                reads = commit.flat_hits + commit.flat_misses
                rate = commit.flat_hits / reads if reads else 0.0
                lines.append(
                    f"  block {commit.height}: writes={commit.writes} "
                    f"prunes={commit.deletes} sealed={commit.nodes_sealed} "
                    f"hashes={commit.hashes_computed} "
                    f"wall={commit.wall_time * 1e3:7.2f}ms  "
                    f"flat-cache={rate:6.2%} of {reads} reads")
                if commit.durable:
                    db_reads = commit.db_cache_hits + commit.db_cache_misses
                    db_rate = commit.db_cache_hits / db_reads if db_reads else 0.0
                    lines.append(
                        f"    └ durable: appended={commit.bytes_appended}B "
                        f"fsync={commit.fsync_time * 1e3:6.2f}ms "
                        f"node-cache={db_rate:6.2%} of {db_reads} reads "
                        f"pruned={commit.pruned_nodes}")

        if self.pipeline is not None:
            lines.append("")
            lines.append("== streaming pipeline (stage occupancy/latency) ==")
            for line in self.pipeline.render().splitlines():
                lines.append(f"  {line}")

        for scheduler, attribution in self.attributions.items():
            lines.append("")
            lines.append(attribution.format_table(
                name_of=self.namer, top=top,
                title=f"[{scheduler}] abort attribution"))
        lines.append("")
        lines.append("correctness (write-set match vs serial): "
                     + ("OK" if self.correctness_ok else "FAILED"))
        return "\n".join(lines)


def run_profile(
    blocks: int = 2,
    txs_per_block: int = 64,
    threads: int = 8,
    schedulers: Sequence[str] = PROFILE_SCHEDULERS,
    contention: str = "high",
    config_overrides: Optional[dict] = None,
    durable_dir: Optional[str] = None,
    pipeline_blocks: int = 6,
    substrate: str = "sim",
    substrate_workers: Optional[int] = None,
) -> ProfileReport:
    """Execute ``blocks`` seeded blocks under every requested scheduler with
    event tracing on; returns the assembled :class:`ProfileReport` (the
    Chrome trace document is in ``report.trace``).

    ``pipeline_blocks`` additionally streams that many blocks through the
    :mod:`repro.pipeline` driver (DMVCC, in-memory) and surfaces per-stage
    occupancy/latency in the report; 0 skips the section.

    ``substrate`` selects the execution backend ("sim", "threads", or
    "processes"); the wall-clock section then shows real parallel seconds
    next to the simulated gas-clock, and the serial write-set check keeps
    guarding correctness on the real backend too.
    """
    overrides = dict(config_overrides or {})
    if contention == "high":
        config = high_contention_config(**overrides)
    else:
        config = low_contention_config(**overrides)
    factories = _factories()
    unknown = [s for s in schedulers if s not in factories]
    if unknown:
        raise ValueError(f"unknown scheduler(s): {', '.join(unknown)}")

    substrate_obj = None
    if substrate != "sim":
        from ..substrate import get_substrate

        substrate_obj = get_substrate(substrate, workers=substrate_workers)

    workload = Workload(config)
    # With --durable, every block's write batch is also committed to an
    # on-disk mirror of the workload state, so the state-commit section can
    # report real fsync/append/cache costs alongside the in-memory seal.
    mirror = workload.db.mirror_durable(durable_dir) if durable_dir else None
    report = ProfileReport(namer=contract_namer(workload.db))
    attributions = {s: AbortAttribution() for s in schedulers if s != "serial"}
    serial = SerialExecutor()
    trace_sections: List[Tuple[str, Timeline, float]] = []

    for block_index in range(blocks):
        txs = workload.transactions(txs_per_block)
        snapshot = workload.db.snapshot(workload.db.height)
        reference = serial.execute_block(
            txs, snapshot, workload.db.codes.code_of)

        for name in schedulers:
            bus = EventBus()
            executor = factories[name]().attach_obs(bus)
            if substrate_obj is not None:
                executor.attach_substrate(substrate_obj)
            execution = executor.execute_block(
                txs, snapshot, workload.db.codes.code_of, threads=threads)
            matches = execution.writes == reference.writes
            if name == "serial":
                matches = True
            elif not matches:
                report.correctness_ok = False
            timeline = build_timeline(bus)
            section = ProfileSection(
                scheduler=name, block=block_index, timeline=timeline,
                aborts=execution.metrics.aborts, matches_serial=matches,
                resumes=execution.metrics.resumes,
                revalidation_hits=execution.metrics.revalidation_hits,
                instructions_skipped=execution.metrics.instructions_skipped,
                replayed_instructions=execution.metrics.replayed_instructions,
                backend=execution.metrics.backend,
                workers=execution.metrics.workers,
                wall_time=execution.metrics.wall_time,
                view_misses=execution.metrics.view_misses)
            report.sections.append(section)
            trace_sections.append((section.label, timeline, 0.0))
            if name in attributions:
                for event in bus.events:
                    attributions[name].feed(event)

        workload.db.commit(reference.writes)
        if mirror is not None:
            mirror.commit(reference.writes)
            if mirror.latest.root_hash != workload.db.latest.root_hash:
                report.correctness_ok = False
            report.commits.append(mirror.last_commit)
        else:
            report.commits.append(workload.db.last_commit)

    if mirror is not None:
        mirror.close()
    if substrate_obj is not None:
        substrate_obj.close()
    if pipeline_blocks:
        # Lazy import: repro.obs is imported by nearly everything, and the
        # pipeline package sits above it in the layering.
        from ..chain.txpool import Packer, TransactionPool
        from ..pipeline import PipelinedValidator, WorkloadStream

        stream_workload = Workload(config)
        driver = PipelinedValidator(
            "profile",
            stream_workload.db.fork(),
            factories["dmvcc"](),
            threads=threads,
            pool=TransactionPool(
                max_size=txs_per_block * 6, nonce_tracking=True,
                low_watermark=0.5,
            ),
            packer=Packer(max_txs=txs_per_block, order="fee"),
            max_inflight=2,
            ingest_rate=txs_per_block * 2,
        )
        source = WorkloadStream(
            stream_workload, limit=pipeline_blocks * txs_per_block,
        )
        try:
            report.pipeline = driver.run(source, pipeline_blocks)
        finally:
            driver.close()
    for name, attribution in attributions.items():
        attribution.finish()
    report.attributions = attributions
    report.trace = build_chrome_trace(
        trace_sections,
        metadata={
            "workload": "high-contention" if contention == "high"
                        else "low-contention",
            "blocks": blocks,
            "txs_per_block": txs_per_block,
            "threads": threads,
        },
    )
    return report


def profile_to_file(path: str, **kwargs) -> ProfileReport:
    """Convenience wrapper: run a profile and write its trace to ``path``."""
    report = run_profile(**kwargs)
    write_chrome_trace(path, report.trace)
    return report
