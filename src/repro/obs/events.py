"""Structured execution-event bus: the raw material of observability.

Every scheduler-relevant moment of a block execution — a transaction
binding to a thread, a version wait beginning, a lock being granted, a
release point publishing early writes — is emitted as one typed, timestamped
event onto an :class:`EventBus`.  Timestamps are *simulated* time (gas
units, the same clock :mod:`repro.sim.clock` runs on), so traces line up
exactly with the makespans and speedups the benchmarks report.

The bus is deliberately passive: an append-only list plus a monotonically
increasing sequence number.  All interpretation (span pairing, wait-time
decomposition, abort attribution) lives in :mod:`repro.obs.timeline` and
:mod:`repro.obs.attribution`.

Disabled-path cost
------------------
Executors keep ``self.obs = None`` by default and guard every hook with a
single ``is not None`` branch, exactly like the ``repro.verify`` trace
recorder.  Components that prefer an unconditional attribute (the thread
pool, the lock table) may hold :data:`NULL_BUS` instead — a
:class:`NullSink` whose emit methods are all no-ops — so either way the
hot path pays about one branch when observability is off.

Version identifiers follow the access-sequence convention: a writer is the
block index of the transaction that produced the version, ``-1`` is the
pre-block snapshot, and ``-2`` means "unknown writer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Type, TypeVar

from ..core.types import StateKey

SNAPSHOT_WRITER = -1
UNKNOWN_WRITER = -2

E = TypeVar("E", bound="ObsEvent")


@dataclass(frozen=True)
class ObsEvent:
    """Base event: ``seq`` totally orders the stream within one bus,
    ``ts`` is the simulated time, ``tx`` the block index of the transaction
    the event belongs to (``-1`` for block/thread-level events)."""

    seq: int
    ts: float
    tx: int


# ---------------------------------------------------------------------------
# Block / thread lifecycle
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockStart(ObsEvent):
    scheduler: str = ""
    threads: int = 1
    tx_count: int = 0


@dataclass(frozen=True)
class BlockEnd(ObsEvent):
    makespan: float = 0.0


@dataclass(frozen=True)
class ThreadOccupied(ObsEvent):
    """A simulated thread was claimed (``tx`` is -1; ``thread`` identifies
    the slot, ``label`` whatever the occupier passed to the pool)."""

    thread: int = -1
    label: str = ""


@dataclass(frozen=True)
class ThreadReleased(ObsEvent):
    thread: int = -1


# ---------------------------------------------------------------------------
# Transaction lifecycle
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TxReady(ObsEvent):
    """The transaction joined the ready queue: queue-wait begins."""

    attempt: int = 1


@dataclass(frozen=True)
class TxStart(ObsEvent):
    """The transaction bound to a simulated thread: execution begins."""

    attempt: int = 1
    thread: int = -1


@dataclass(frozen=True)
class TxEnd(ObsEvent):
    """An attempt ran to completion (only the last TxEnd per transaction
    describes the committed outcome)."""

    attempt: int = 1
    success: bool = True
    gas_used: int = 0


@dataclass(frozen=True)
class TxAbort(ObsEvent):
    """The scheduler killed attempt ``attempt``.  ``key`` is the state item
    whose conflicting version triggered the abort and ``writer`` the
    transaction that produced that version (the attribution triple)."""

    attempt: int = 1
    key: Optional[StateKey] = None
    writer: int = UNKNOWN_WRITER


@dataclass(frozen=True)
class TxReexecute(ObsEvent):
    """An aborted transaction re-entered the scheduler for ``attempt``."""

    attempt: int = 2


# ---------------------------------------------------------------------------
# Waits
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VersionWaitBegin(ObsEvent):
    """The transaction is stalled because the versions it must read do not
    exist yet; ``keys`` are the unresolvable items, ``blockers`` the
    unfinished writers they wait on."""

    keys: Tuple[StateKey, ...] = ()
    blockers: Tuple[int, ...] = ()


@dataclass(frozen=True)
class VersionWaitEnd(ObsEvent):
    """The last missing version became available; ``granted_by`` is the
    writer whose publish unblocked the transaction (``key`` the item)."""

    key: Optional[StateKey] = None
    granted_by: int = SNAPSHOT_WRITER


@dataclass(frozen=True)
class LockWaitBegin(ObsEvent):
    """The transaction is stalled behind conflict locks (a DAG-style
    dependency wait); ``holders`` are the predecessors it waits for."""

    holders: Tuple[int, ...] = ()


@dataclass(frozen=True)
class LockWaitEnd(ObsEvent):
    pass


@dataclass(frozen=True)
class LockAcquire(ObsEvent):
    """The transaction gained the lock of ``key`` (the version it must
    read became available — the paper's lock-table grant)."""

    key: Optional[StateKey] = None


@dataclass(frozen=True)
class LockRelease(ObsEvent):
    key: Optional[StateKey] = None


# ---------------------------------------------------------------------------
# DMVCC protocol moments
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReleasePointReached(ObsEvent):
    """Execution crossed a release point; ``released`` says whether the gas
    check allowed early publication from here on."""

    pc: int = 0
    released: bool = False
    gas_remaining: int = 0


@dataclass(frozen=True)
class EarlyReadServed(ObsEvent):
    """A read was served a version whose writer had not completed yet —
    early-write visibility doing its job."""

    key: Optional[StateKey] = None
    writer: int = UNKNOWN_WRITER


@dataclass(frozen=True)
class CommutativeMerge(ObsEvent):
    """A commutative delta was merged into an access sequence as its own
    write version (ω̄)."""

    key: Optional[StateKey] = None
    delta: int = 0


@dataclass(frozen=True)
class MergeTolerated(ObsEvent):
    """An abort on a declared merge key was skipped because every guard the
    reader ran on the key keeps its verdict under the drifted base (the
    declared-operation algebra, repro.state.merge)."""

    key: Optional[StateKey] = None


# ---------------------------------------------------------------------------
# Sharded execution (repro.shard)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlanned(ObsEvent):
    """The shard classifier split a block (``tx`` is -1): ``locals_per_shard``
    counts phase-1 transactions per shard, ``cross`` the phase-2 handoffs."""

    shards: int = 0
    locals_per_shard: Tuple[int, ...] = ()
    cross: int = 0


@dataclass(frozen=True)
class HandoffCommitted(ObsEvent):
    """A cross-shard transaction's phase-2 handoff validated against the
    merged overlay and committed in global order."""

    requeued: bool = False


@dataclass(frozen=True)
class HandoffRequeued(ObsEvent):
    """A cross-shard transaction's speculative phase-1 run read values the
    merged overlay contradicts; it was deterministically re-executed against
    the overlay.  ``key`` is the first conflicting item."""

    key: Optional[StateKey] = None


@dataclass(frozen=True)
class ShardFallback(ObsEvent):
    """The sharded executor detected a footprint escape it cannot commit
    soundly and re-ran the whole block on the unsharded reference path
    (``tx`` is -1); ``reason`` names the violated invariant."""

    reason: str = ""


# ---------------------------------------------------------------------------
# Incremental re-execution (checkpoint / resume / revalidate)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CheckpointTaken(ObsEvent):
    """The driver snapshotted the VM at a storage-read boundary.
    ``read_index`` counts the reads already baked into the checkpoint;
    ``retained`` is how many checkpoints the attempt holds after pruning."""

    read_index: int = 0
    retained: int = 0


@dataclass(frozen=True)
class TxResume(ObsEvent):
    """An aborted transaction restarted from a checkpoint instead of from
    scratch; ``instructions_skipped`` is the prefix it did not replay."""

    attempt: int = 2
    read_index: int = 0
    instructions_skipped: int = 0


@dataclass(frozen=True)
class RevalidationHit(ObsEvent):
    """An aborted transaction's whole read set re-resolved to identical
    values: its completed result was reinstated with zero re-execution."""

    attempt: int = 2
    instructions_skipped: int = 0


# ---------------------------------------------------------------------------
# State commit (the batched overlay pipeline sealing snapshot S^l)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CommitStarted(ObsEvent):
    """The commit phase began flushing a block's final write batch into the
    state trie (``tx`` is -1; ``height`` is the snapshot being sealed)."""

    height: int = 0
    writes: int = 0


@dataclass(frozen=True)
class CommitSealed(ObsEvent):
    """The new snapshot's root was sealed.  ``nodes_sealed`` and
    ``hashes_computed`` account the overlay's single post-order seal pass;
    ``wall_time`` is real seconds (commits run outside simulated time);
    ``flat_hits``/``flat_misses`` are the parent snapshot's read-cache
    counters accumulated while the block executed against it."""

    height: int = 0
    writes: int = 0
    nodes_sealed: int = 0
    hashes_computed: int = 0
    wall_time: float = 0.0
    flat_hits: int = 0
    flat_misses: int = 0


@dataclass(frozen=True)
class CommitPersisted(ObsEvent):
    """The durable backend made the sealed snapshot crash-safe: the commit
    marker hit the log and was fsynced.  ``bytes_appended`` covers the
    block's node records plus the marker; ``cache_hits``/``cache_misses``
    are the node-cache traffic since the previous marker; ``pruned_nodes``
    is non-zero when this commit triggered auto-compaction.  Only emitted
    when the StateDB runs on the durable backend."""

    height: int = 0
    bytes_appended: int = 0
    fsync_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    pruned_nodes: int = 0


@dataclass(frozen=True)
class WorkloadChunkCommitted(ObsEvent):
    """One chunk of a serially-committed workload stream was sealed
    (``tx`` is -1).  Emitted by :meth:`Workload.commit_serially` so long
    setup phases report progress instead of silently looping."""

    height: int = 0
    txs_committed: int = 0
    txs_total: int = 0
    root: bytes = b""


# ---------------------------------------------------------------------------
# Mempool & streaming pipeline (repro.chain.txpool / repro.pipeline)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MempoolEvicted(ObsEvent):
    """A full mempool displaced an entry to admit a newcomer (``tx`` is
    -1).  ``analysed`` says whether a built C-SAG was thrown away with it —
    the waste the fee-priority victim choice exists to minimise."""

    fee: int = 0
    analysed: bool = False
    reason: str = "capacity"
    pool_size: int = 0


@dataclass(frozen=True)
class MempoolRejected(ObsEvent):
    """Admission control refused a transaction (``tx`` is -1); ``reason``
    is one of the :mod:`repro.chain.txpool` rejection codes."""

    reason: str = ""
    fee: int = 0


@dataclass(frozen=True)
class BackpressureChanged(ObsEvent):
    """The pipeline's ingest throttle flipped (``tx`` is -1): ``engaged``
    means the mempool crossed its high watermark and the stream is being
    held back; disengaged means occupancy drained below the low
    watermark."""

    engaged: bool = False
    pool_size: int = 0
    capacity: int = 0


@dataclass(frozen=True)
class StageCompleted(ObsEvent):
    """One pipeline stage finished its work for one block (``tx`` is -1).
    ``latency`` is wall seconds the stage spent on the block; ``items`` is
    stage-specific (transactions ingested/analysed/packed/executed, writes
    sealed/persisted)."""

    stage: str = ""
    block: int = 0
    latency: float = 0.0
    items: int = 0


@dataclass(frozen=True)
class WorkerCrashed(ObsEvent):
    """A real-substrate worker process died mid-block (``tx`` is -1) and was
    respawned; ``lost`` counts the in-flight transactions whose attempts died
    with it (each is re-dispatched as an abort)."""

    worker: int = -1
    lost: int = 0


@dataclass(frozen=True)
class SoakCheckpoint(ObsEvent):
    """Periodic heartbeat of the soak harness (``tx`` is -1): sustained
    throughput, the abort-rate trend, db growth versus reclaim, and the
    cost of the online serializability oracle, sampled every reporting
    interval.  ``crashes`` counts the injected crashes recovered so far."""

    block: int = 0
    blocks_per_sec: float = 0.0
    abort_rate: float = 0.0
    db_bytes: int = 0
    bytes_reclaimed: int = 0
    oracle_time: float = 0.0
    crashes: int = 0


class EventBus:
    """Append-only, sequence-numbered sink of :class:`ObsEvent`."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []
        self._seq = 0

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self._seq = 0

    def of_type(self, kind: Type[E]) -> List[E]:
        return [e for e in self.events if isinstance(e, kind)]

    def of_tx(self, tx: int) -> List[ObsEvent]:
        return [e for e in self.events if e.tx == tx]

    def _next(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # -- emit methods (one per event type) ----------------------------------

    def block_start(self, ts: float, scheduler: str, threads: int,
                    tx_count: int) -> None:
        self.events.append(
            BlockStart(self._next(), ts, -1, scheduler, threads, tx_count))

    def block_end(self, ts: float, makespan: float) -> None:
        self.events.append(BlockEnd(self._next(), ts, -1, makespan))

    def thread_occupied(self, ts: float, thread: int, label: str = "") -> None:
        self.events.append(ThreadOccupied(self._next(), ts, -1, thread, label))

    def thread_released(self, ts: float, thread: int) -> None:
        self.events.append(ThreadReleased(self._next(), ts, -1, thread))

    def tx_ready(self, ts: float, tx: int, attempt: int = 1) -> None:
        self.events.append(TxReady(self._next(), ts, tx, attempt))

    def tx_start(self, ts: float, tx: int, attempt: int = 1,
                 thread: int = -1) -> None:
        self.events.append(TxStart(self._next(), ts, tx, attempt, thread))

    def tx_end(self, ts: float, tx: int, attempt: int = 1,
               success: bool = True, gas_used: int = 0) -> None:
        self.events.append(
            TxEnd(self._next(), ts, tx, attempt, success, gas_used))

    def tx_abort(self, ts: float, tx: int, attempt: int = 1,
                 key: Optional[StateKey] = None,
                 writer: int = UNKNOWN_WRITER) -> None:
        self.events.append(TxAbort(self._next(), ts, tx, attempt, key, writer))

    def tx_reexecute(self, ts: float, tx: int, attempt: int = 2) -> None:
        self.events.append(TxReexecute(self._next(), ts, tx, attempt))

    def version_wait_begin(self, ts: float, tx: int,
                           keys: Tuple[StateKey, ...] = (),
                           blockers: Tuple[int, ...] = ()) -> None:
        self.events.append(
            VersionWaitBegin(self._next(), ts, tx, keys, blockers))

    def version_wait_end(self, ts: float, tx: int,
                         key: Optional[StateKey] = None,
                         granted_by: int = SNAPSHOT_WRITER) -> None:
        self.events.append(
            VersionWaitEnd(self._next(), ts, tx, key, granted_by))

    def lock_wait_begin(self, ts: float, tx: int,
                        holders: Tuple[int, ...] = ()) -> None:
        self.events.append(LockWaitBegin(self._next(), ts, tx, holders))

    def lock_wait_end(self, ts: float, tx: int) -> None:
        self.events.append(LockWaitEnd(self._next(), ts, tx))

    def lock_acquire(self, ts: float, tx: int, key: StateKey) -> None:
        self.events.append(LockAcquire(self._next(), ts, tx, key))

    def lock_release(self, ts: float, tx: int, key: StateKey) -> None:
        self.events.append(LockRelease(self._next(), ts, tx, key))

    def release_point(self, ts: float, tx: int, pc: int, released: bool,
                      gas_remaining: int = 0) -> None:
        self.events.append(ReleasePointReached(
            self._next(), ts, tx, pc, released, gas_remaining))

    def early_read(self, ts: float, tx: int, key: StateKey,
                   writer: int) -> None:
        self.events.append(EarlyReadServed(self._next(), ts, tx, key, writer))

    def commutative_merge(self, ts: float, tx: int, key: StateKey,
                          delta: int) -> None:
        self.events.append(CommutativeMerge(self._next(), ts, tx, key, delta))

    def merge_tolerated(self, ts: float, tx: int, key: StateKey) -> None:
        self.events.append(MergeTolerated(self._next(), ts, tx, key))

    def shard_planned(self, ts: float, shards: int,
                      locals_per_shard: Tuple[int, ...] = (),
                      cross: int = 0) -> None:
        self.events.append(ShardPlanned(
            self._next(), ts, -1, shards, locals_per_shard, cross))

    def handoff_committed(self, ts: float, tx: int,
                          requeued: bool = False) -> None:
        self.events.append(HandoffCommitted(self._next(), ts, tx, requeued))

    def handoff_requeued(self, ts: float, tx: int,
                         key: Optional[StateKey] = None) -> None:
        self.events.append(HandoffRequeued(self._next(), ts, tx, key))

    def shard_fallback(self, ts: float, reason: str = "") -> None:
        self.events.append(ShardFallback(self._next(), ts, -1, reason))

    def checkpoint_taken(self, ts: float, tx: int, read_index: int,
                         retained: int) -> None:
        self.events.append(
            CheckpointTaken(self._next(), ts, tx, read_index, retained))

    def tx_resume(self, ts: float, tx: int, attempt: int = 2,
                  read_index: int = 0,
                  instructions_skipped: int = 0) -> None:
        self.events.append(TxResume(
            self._next(), ts, tx, attempt, read_index, instructions_skipped))

    def revalidation_hit(self, ts: float, tx: int, attempt: int = 2,
                         instructions_skipped: int = 0) -> None:
        self.events.append(RevalidationHit(
            self._next(), ts, tx, attempt, instructions_skipped))

    def commit_started(self, ts: float, height: int, writes: int) -> None:
        self.events.append(CommitStarted(self._next(), ts, -1, height, writes))

    def commit_sealed(self, ts: float, height: int, writes: int,
                      nodes_sealed: int = 0, hashes_computed: int = 0,
                      wall_time: float = 0.0, flat_hits: int = 0,
                      flat_misses: int = 0) -> None:
        self.events.append(CommitSealed(
            self._next(), ts, -1, height, writes, nodes_sealed,
            hashes_computed, wall_time, flat_hits, flat_misses))

    def commit_persisted(self, ts: float, height: int,
                         bytes_appended: int = 0, fsync_time: float = 0.0,
                         cache_hits: int = 0, cache_misses: int = 0,
                         pruned_nodes: int = 0) -> None:
        self.events.append(CommitPersisted(
            self._next(), ts, -1, height, bytes_appended, fsync_time,
            cache_hits, cache_misses, pruned_nodes))

    def workload_chunk(self, ts: float, height: int, txs_committed: int,
                       txs_total: int, root: bytes = b"") -> None:
        self.events.append(WorkloadChunkCommitted(
            self._next(), ts, -1, height, txs_committed, txs_total, root))

    def mempool_evicted(self, ts: float, fee: int = 0, analysed: bool = False,
                        reason: str = "capacity", pool_size: int = 0) -> None:
        self.events.append(MempoolEvicted(
            self._next(), ts, -1, fee, analysed, reason, pool_size))

    def mempool_rejected(self, ts: float, reason: str = "",
                         fee: int = 0) -> None:
        self.events.append(MempoolRejected(self._next(), ts, -1, reason, fee))

    def backpressure_changed(self, ts: float, engaged: bool,
                             pool_size: int = 0, capacity: int = 0) -> None:
        self.events.append(BackpressureChanged(
            self._next(), ts, -1, engaged, pool_size, capacity))

    def stage_completed(self, ts: float, stage: str, block: int,
                        latency: float = 0.0, items: int = 0) -> None:
        self.events.append(StageCompleted(
            self._next(), ts, -1, stage, block, latency, items))

    def worker_crashed(self, ts: float, worker: int, lost: int = 0) -> None:
        self.events.append(WorkerCrashed(self._next(), ts, -1, worker, lost))

    def soak_checkpoint(self, ts: float, block: int,
                        blocks_per_sec: float = 0.0, abort_rate: float = 0.0,
                        db_bytes: int = 0, bytes_reclaimed: int = 0,
                        oracle_time: float = 0.0, crashes: int = 0) -> None:
        self.events.append(SoakCheckpoint(
            self._next(), ts, -1, block, blocks_per_sec, abort_rate,
            db_bytes, bytes_reclaimed, oracle_time, crashes))

    def summary(self) -> str:
        counts = {}
        for event in self.events:
            name = type(event).__name__
            counts[name] = counts.get(name, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"EventBus({len(self.events)} events: {inner})"


class NullSink(EventBus):
    """The disabled bus: every emit is a no-op and nothing is stored."""

    enabled = False

    def block_start(self, *args, **kwargs) -> None: pass
    def block_end(self, *args, **kwargs) -> None: pass
    def thread_occupied(self, *args, **kwargs) -> None: pass
    def thread_released(self, *args, **kwargs) -> None: pass
    def tx_ready(self, *args, **kwargs) -> None: pass
    def tx_start(self, *args, **kwargs) -> None: pass
    def tx_end(self, *args, **kwargs) -> None: pass
    def tx_abort(self, *args, **kwargs) -> None: pass
    def tx_reexecute(self, *args, **kwargs) -> None: pass
    def version_wait_begin(self, *args, **kwargs) -> None: pass
    def version_wait_end(self, *args, **kwargs) -> None: pass
    def lock_wait_begin(self, *args, **kwargs) -> None: pass
    def lock_wait_end(self, *args, **kwargs) -> None: pass
    def lock_acquire(self, *args, **kwargs) -> None: pass
    def lock_release(self, *args, **kwargs) -> None: pass
    def release_point(self, *args, **kwargs) -> None: pass
    def early_read(self, *args, **kwargs) -> None: pass
    def commutative_merge(self, *args, **kwargs) -> None: pass
    def merge_tolerated(self, *args, **kwargs) -> None: pass
    def shard_planned(self, *args, **kwargs) -> None: pass
    def handoff_committed(self, *args, **kwargs) -> None: pass
    def handoff_requeued(self, *args, **kwargs) -> None: pass
    def shard_fallback(self, *args, **kwargs) -> None: pass
    def checkpoint_taken(self, *args, **kwargs) -> None: pass
    def tx_resume(self, *args, **kwargs) -> None: pass
    def revalidation_hit(self, *args, **kwargs) -> None: pass
    def commit_started(self, *args, **kwargs) -> None: pass
    def commit_sealed(self, *args, **kwargs) -> None: pass
    def commit_persisted(self, *args, **kwargs) -> None: pass
    def workload_chunk(self, *args, **kwargs) -> None: pass
    def mempool_evicted(self, *args, **kwargs) -> None: pass
    def mempool_rejected(self, *args, **kwargs) -> None: pass
    def backpressure_changed(self, *args, **kwargs) -> None: pass
    def stage_completed(self, *args, **kwargs) -> None: pass
    def worker_crashed(self, *args, **kwargs) -> None: pass
    def soak_checkpoint(self, *args, **kwargs) -> None: pass


NULL_BUS = NullSink()
